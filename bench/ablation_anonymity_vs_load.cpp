// Ablation: anonymity and delay degradation under offered load.
//
// The paper measures anonymity with a handful of messages in flight and
// unlimited contact capacity. This sweep pushes a sustained open-loop
// Poisson workload (odtn::traffic) through networks with finite contact
// bandwidth and finite buffers, and reports — per offered rate — the
// sustained throughput (msgs per time unit), the delivery rate, the p99
// delivery delay, and the measured path anonymity of the onion protocol,
// next to the utility-aware forwarder (routing::UtilityForwarder) and its
// congestion-blind spray control. The x axis is monotone offered load;
// the result the paper never measured is the anonymity column: how the
// anonymity set erodes as congestion forces copies through fewer relays.
//
// --json appends an odtn.bench.v1 record carrying the whole sweep
// (offered, throughput, p99, anonymity arrays) so perf tracking can pin
// the load path run over run.
#include <iostream>
#include <sstream>

#include "common/bench_common.hpp"
#include "metrics/writer.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  if (!args.has("runs")) base.runs = 20;  // whole-workload runs, not messages
  base.copies = 4;  // spray regime: utility vs blind needs tickets to split
  bench::print_header(
      "Ablation", "Anonymity and p99 delay vs offered load",
      "n=100, K=3, g=5, L=4, T=1800, horizon=600, bandwidth=2/contact, "
      "buffer=8; x = offered msgs/time-unit",
      base);

  const std::vector<double> offered = {0.05, 0.1, 0.2, 0.4, 0.8};
  std::vector<double> tput_col, p99_col, anon_col;

  bench::Sweep sweep({"offered", "onion_tput", "onion_delivery", "onion_p99",
                      "onion_anonymity", "util_tput", "util_p99",
                      "spray_tput", "spray_p99"},
                     offered, bench::Sweep::XFormat::kFixed2);
  sweep.run([&](double rate, util::Table& table) {
    core::ExperimentConfig cfg = base;
    traffic::FlowConfig flow;
    flow.rate = rate;
    flow.ttl = cfg.ttl;
    flow.num_relays = cfg.num_relays;
    flow.copies = cfg.copies;
    cfg.traffic.flows.push_back(flow);
    cfg.traffic.horizon = 600.0;
    cfg.bandwidth.messages_per_contact = 2;
    cfg.buffer_capacity = 8;
    cfg.buffer_policy = sim::BufferPolicy::kDropOldest;

    cfg.load_forwarder = core::LoadForwarder::kOnion;
    auto onion = bench::run_experiment(cfg, core::RandomGraphScenario{});
    cfg.load_forwarder = core::LoadForwarder::kUtility;
    auto util_r = bench::run_experiment(cfg, core::RandomGraphScenario{});
    cfg.load_forwarder = core::LoadForwarder::kSprayBlind;
    auto spray = bench::run_experiment(cfg, core::RandomGraphScenario{});

    table.cell(onion.sim_throughput.mean(), 2);
    table.cell(onion.sim_delivered.mean());
    table.cell(onion.sim_p99_delay.mean(), 1);
    table.cell(onion.sim_anonymity.mean());
    table.cell(util_r.sim_throughput.mean(), 2);
    table.cell(util_r.sim_p99_delay.mean(), 1);
    table.cell(spray.sim_throughput.mean(), 2);
    table.cell(spray.sim_p99_delay.mean(), 1);

    tput_col.push_back(onion.sim_throughput.mean());
    p99_col.push_back(onion.sim_p99_delay.mean());
    anon_col.push_back(onion.sim_anonymity.mean());
  });
  sweep.print(std::cout);
  std::cout << "# onion anonymity erodes as load saturates contacts; the "
               "utility forwarder sustains\n# throughput longer than the "
               "congestion-blind spray control at equal offered load.\n";

  auto join = [](const std::vector<double>& v) {
    std::ostringstream os;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ",";
      os << metrics::format_double(v[i]);
    }
    return os.str();
  };
  std::ostringstream extra;
  extra << "\"offered\":[" << join(offered) << "],\"throughput\":["
        << join(tput_col) << "],\"p99_delay\":[" << join(p99_col)
        << "],\"anonymity\":[" << join(anon_col) << "]";
  bench::finish(base, args, timer, extra.str());
  return 0;
}
