// Ablation: finite relay buffers under load.
//
// Every closed form in the paper assumes one message and infinite buffers.
// The whole-network simulator (sim/network_sim.hpp) drops both
// assumptions: this bench injects an increasing number of concurrent
// messages into a random DTN and sweeps per-node buffer capacity,
// reporting delivery rate and buffer rejections — the regime in which the
// analytical model stops being a safe capacity-planning tool.
//
// Injection comes from the odtn::traffic generator: each point offers an
// open-loop Poisson workload whose expected count is the x value.
// --legacy-injection restores the historical hand-rolled uniform-start
// injection loop, byte-identical to the pre-traffic output.
#include <iostream>

#include "common/bench_common.hpp"
#include "sim/network_sim.hpp"
#include "trace/synthetic.hpp"
#include "traffic/traffic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bool legacy = args.get_bool("legacy-injection", false);
  std::size_t repeats = std::max<std::size_t>(1, base.runs / 20);
  bench::print_header("Ablation", "Delivery under buffer contention",
                      "n=100, K=3, g=5, T=1800; x = concurrent messages",
                      base);

  bench::Sweep sweep({"messages", "buf_unlimited", "buf_4", "buf_1",
                      "rejections_buf_1"},
                     {25, 50, 100, 200, 400}, bench::Sweep::XFormat::kInt);
  sweep.run([&](double load_x, util::Table& table) {
    std::size_t load = static_cast<std::size_t>(load_x);
    util::RunningStats d_inf, d_4, d_1, rej_1;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      // odtn-lint: allow(rng) — bench-local stream: seeded directly from
      // --seed so published figure/ablation tables stay pinned to their
      // historical sequences
      util::Rng rng(base.seed + rep * 1000);
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      auto trace = trace::sample_poisson_trace(graph, 3600.0, rng);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);

      std::vector<sim::InjectedMessage> messages;
      if (legacy) {
        for (std::size_t i = 0; i < load; ++i) {
          sim::InjectedMessage m;
          m.src = static_cast<NodeId>(rng.below(base.nodes));
          m.dst = static_cast<NodeId>(rng.below(base.nodes - 1));
          if (m.dst >= m.src) ++m.dst;
          m.start = rng.uniform(0.0, 600.0);
          m.ttl = 1800.0;
          m.num_relays = base.num_relays;
          messages.push_back(m);
        }
      } else {
        // Open-loop Poisson offered load: E[count] = x over [0, 600).
        traffic::FlowConfig flow;
        flow.rate = static_cast<double>(load) / 600.0;
        flow.ttl = 1800.0;
        flow.num_relays = base.num_relays;
        traffic::TrafficConfig workload;
        workload.flows.push_back(flow);
        workload.horizon = 600.0;
        messages = traffic::TrafficPlan(workload, base.nodes, rng.next())
                       .specs();
      }

      for (std::size_t cap : {0u, 4u, 1u}) {
        sim::NetworkSimConfig cfg;
        cfg.buffer_capacity = cap;
        if (base.collect_metrics) cfg.metrics = &bench::bench_metrics();
        // odtn-lint: allow(rng) — bench-local stream: seeded directly from
        // --seed so published figure/ablation tables stay pinned to their
        // historical sequences
        util::Rng run_rng(base.seed + rep);  // same groups per capacity
        auto report = sim::run_network_sim(trace, dir, messages, cfg,
                                           run_rng);
        if (cap == 0) d_inf.add(report.delivery_rate());
        if (cap == 4) d_4.add(report.delivery_rate());
        if (cap == 1) {
          d_1.add(report.delivery_rate());
          rej_1.add(static_cast<double>(report.total_buffer_rejections));
        }
      }
    }
    table.cell(d_inf.mean());
    table.cell(d_4.mean());
    table.cell(d_1.mean());
    table.cell(rej_1.mean(), 1);
  });
  sweep.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
