// Ablation: delay *distribution*, not just delivery probability.
//
// The paper validates Eq. 6 through delivery-rate means. The
// hypoexponential model predicts the whole delay law; this bench compares
// its quantiles (via hypoexp_quantile) against simulated delay percentiles
// on fixed realizations — the planning view: "what deadline covers 90% of
// messages?".
#include <algorithm>
#include <iostream>

#include "analysis/delivery.hpp"
#include "analysis/hypoexp.hpp"
#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation", "Delay quantiles: model vs simulation",
                      "n=100, K=3, g=5, L=1; one graph realization, many "
                      "messages per row",
                      base);

  util::Table table({"realization", "q50_model", "q50_sim", "q90_model",
                     "q90_sim", "q99_model", "q99_sim"});
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(base.seed);
  for (int realization = 0; realization < 5; ++realization) {
    auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                             base.max_ict);
    sim::PoissonContactModel contacts(graph, rng);
    groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
    groups::KeyManager keys(dir, rng.next());
    onion::OnionCodec codec;
    routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
    routing::SingleCopyOnionRouting protocol(ctx);

    NodeId src = static_cast<NodeId>(rng.below(base.nodes));
    NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
    if (dst >= src) ++dst;
    auto groups = dir.select_relay_groups(src, dst, base.num_relays, rng);
    auto rates =
        analysis::opportunistic_onion_rates(graph, src, dst, dir, groups);

    std::vector<double> delays;
    routing::MessageSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.ttl = 1e9;
    spec.num_relays = base.num_relays;
    std::size_t samples = std::max<std::size_t>(200, base.runs * 5);
    for (std::size_t i = 0; i < samples; ++i) {
      auto r = protocol.route(contacts, spec, rng, &groups);
      delays.push_back(r.delay);
    }
    std::sort(delays.begin(), delays.end());
    auto sim_q = [&](double q) {
      return delays[static_cast<std::size_t>(q * (delays.size() - 1))];
    };

    table.new_row();
    table.cell(static_cast<std::int64_t>(realization));
    for (double q : {0.5, 0.9, 0.99}) {
      table.cell(analysis::hypoexp_quantile(rates, q), 1);
      table.cell(sim_q(q), 1);
    }
  }
  table.print(std::cout);
  std::cout << "# Finding: the model's *median* tracks simulation, but its "
               "tail quantiles\n# underestimate, sometimes by 2-3x at q99. "
               "Eq. 4 replaces the holder-specific\n# inter-group rate with "
               "the sender average; the realized delay is a *mixture* over\n"
               "# holders, and mixtures of exponentials are heavier-tailed "
               "than the exponential at\n# the mean rate. Consequence: "
               "inverting Eq. 6 for deadline planning is safe near the\n"
               "# median but needs a healthy margin at high percentiles — a "
               "limitation the paper's\n# mean-delivery comparisons cannot "
               "surface.\n";
  bench::finish(base, args, timer);
  return 0;
}
