// Ablation: ARDEN's destination-anonymity option ("the last hop forms an
// onion group", mentioned in Secs. III and V of the paper as an
// implementation difference between the abstract model and ARDEN).
//
// Direct delivery reveals dst to the last relay; group delivery hides dst
// among its g group members at the price of an intra-group walk. This
// bench measures the delivery/delay/cost impact per group size.
#include <iostream>

#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1800.0;
  bench::print_header("Ablation", "Destination-group delivery on/off",
                      "n=100, K=3, L=1, T=1800; x = group size", base);

  util::Table table({"group_size", "direct_delivery", "group_delivery",
                     "direct_delay", "group_delay", "direct_tx", "group_tx",
                     "dst_hidden_among"});
  for (std::size_t g : {2u, 5u, 10u}) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats d_dir, d_grp, t_dir, t_grp, tx_dir, tx_grp;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      sim::PoissonContactModel contacts(graph, rng);
      groups::GroupDirectory dir(base.nodes, g, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::SingleCopyOnionRouting protocol(ctx);

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;

      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = base.ttl;
      spec.num_relays = base.num_relays;
      auto rd = protocol.route(contacts, spec, rng);
      d_dir.add(rd.delivered);
      if (rd.delivered) {
        t_dir.add(rd.delay);
        tx_dir.add(static_cast<double>(rd.transmissions));
      }
      spec.destination_group_delivery = true;
      auto rg = protocol.route(contacts, spec, rng);
      d_grp.add(rg.delivered);
      if (rg.delivered) {
        t_grp.add(rg.delay);
        tx_grp.add(static_cast<double>(rg.transmissions));
      }
    }
    table.new_row();
    table.cell(static_cast<std::int64_t>(g));
    table.cell(d_dir.mean());
    table.cell(d_grp.mean());
    table.cell(t_dir.mean(), 1);
    table.cell(t_grp.mean(), 1);
    table.cell(tx_dir.mean(), 2);
    table.cell(tx_grp.mean(), 2);
    table.cell(static_cast<std::int64_t>(g));
  }
  table.print(std::cout);
  std::cout << "# Group delivery hides the destination among g group "
               "members from the last relay;\n# the anycast entry into the "
               "group offsets much of the intra-group walk's delay.\n";
  bench::finish(base, args, timer);
  return 0;
}
