// Ablation: fault resilience — simulated delivery under node churn,
// mid-contact transfer loss, and blackhole relays, against the fault-free
// analytical curve (Eq. 7).
//
// The paper's delivery model assumes every contact completes its transfer
// and every relay stays up. The odtn::faults layer breaks each assumption
// in turn; the analysis column is evaluated on the *same* realizations but
// stays fault-blind, so (analysis - simulation) is exactly the delivery
// the analytical model over-promises at each fault level. The first row of
// every sweep is the zero-knob baseline: there the gap is the ordinary
// model-vs-simulation error, and the fault columns must read zero.
#include <iostream>

#include "common/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation", "Fault resilience vs the Eq. 7 curve",
                      "n=100, K=3, g=5, T=1800; analysis is fault-free",
                      base);

  auto sweep_row = [](util::Table& table, double knob,
                      const core::ExperimentResult& r) {
    table.new_row();
    table.cell(knob);
    table.cell(r.ana_delivery.mean());
    table.cell(r.sim_delivered.mean());
    table.cell(r.ana_delivery.mean() - r.sim_delivered.mean());
  };

  std::cout << "# sweep 1: iid transfer failure probability\n";
  util::Table p_fail_table(
      {"p_fail", "analysis_eq7", "simulation", "model_gap"});
  for (double p_fail : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    auto cfg = base;
    cfg.faults.p_fail = p_fail;
    sweep_row(p_fail_table, p_fail,
              bench::run_experiment(cfg, core::RandomGraphScenario{}));
  }
  p_fail_table.print(std::cout);

  std::cout << "# sweep 2: churn (mean uptime 360; x = mean downtime;\n"
            << "#          crash-reboots flush buffered copies)\n";
  util::Table churn_table(
      {"mean_downtime", "analysis_eq7", "simulation", "model_gap"});
  for (double mean_downtime : {0.0, 30.0, 90.0, 180.0, 360.0}) {
    auto cfg = base;
    if (mean_downtime > 0.0) {
      cfg.faults.mean_uptime = 360.0;
      cfg.faults.mean_downtime = mean_downtime;
    }
    sweep_row(churn_table, mean_downtime,
              bench::run_experiment(cfg, core::RandomGraphScenario{}));
  }
  churn_table.print(std::cout);

  std::cout << "# sweep 3: blackhole relay fraction (endpoints exempt)\n";
  util::Table blackhole_table(
      {"blackhole_fraction", "analysis_eq7", "simulation", "model_gap"});
  for (double fraction : {0.0, 0.1, 0.2, 0.3}) {
    auto cfg = base;
    cfg.faults.blackhole_fraction = fraction;
    sweep_row(blackhole_table, fraction,
              bench::run_experiment(cfg, core::RandomGraphScenario{}));
  }
  blackhole_table.print(std::cout);

  bench::finish(base, args, timer);
  return 0;
}
