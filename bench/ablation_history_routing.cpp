// Ablation: how the non-anonymous baselines stack up on structured
// contact graphs — the claim behind the paper's related-work Sec. VI-A
// ("the use of past contact history significantly improves the delivery
// rate for a given forwarding cost").
//
// Community-structured networks (where history is informative) are the
// regime where PRoPHET earns its keep: epidemic-level delivery at a
// fraction of the copies. Onion routing is included to show what the
// anonymity property costs relative to each.
#include <iostream>

#include "common/bench_common.hpp"
#include "routing/baselines.hpp"
#include "routing/onion_routing.hpp"
#include "routing/prophet.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation", "History-based routing on community graphs",
                      "n=60, 3 communities (10x slowdown), K=3, g=5; "
                      "message starts after 1000 min of history",
                      base);

  // PRoPHET maintains an n^2 predictability table per event; a fifth of
  // the default runs already gives tight means.
  std::size_t runs = std::max<std::size_t>(20, base.runs / 5);
  util::Table table({"deadline_min", "prophet", "epidemic", "spray3",
                     "direct", "onion_K3", "prophet_carriers", "epi_tx"});
  for (double deadline : {120.0, 240.0, 480.0, 960.0, 1800.0}) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats d_pro, d_epi, d_sw, d_dir, d_on, pro_car, epi_tx;
    for (std::size_t run = 0; run < runs; ++run) {
      auto graph = graph::community_contact_graph(60, 3, 10.0, rng, 10.0,
                                                  120.0);
      auto trace = trace::sample_poisson_trace(graph, 1000.0 + deadline, rng);
      sim::TraceContactModel contacts(trace);
      groups::GroupDirectory dir(60, 5, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};

      NodeId src = static_cast<NodeId>(rng.below(60));
      NodeId dst = static_cast<NodeId>(rng.below(59));
      if (dst >= src) ++dst;

      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.start = 1000.0;  // history available before the message exists
      spec.ttl = deadline;
      spec.num_relays = 3;

      routing::ProphetRouting prophet;
      auto rp = prophet.route(trace, spec);
      d_pro.add(rp.delivered);
      pro_car.add(static_cast<double>(rp.carriers));

      routing::EpidemicRouting epidemic;
      auto re = epidemic.route(contacts, spec);
      d_epi.add(re.delivered);
      epi_tx.add(static_cast<double>(re.transmissions));

      routing::SprayAndWaitRouting spray;
      auto spray_spec = spec;
      spray_spec.copies = 3;
      d_sw.add(spray.route(contacts, spray_spec).delivered);

      routing::DirectDelivery direct;
      d_dir.add(direct.route(contacts, spec).delivered);

      routing::SingleCopyOnionRouting onion_p(ctx);
      d_on.add(onion_p.route(contacts, spec, rng).delivered);
    }
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    table.cell(d_pro.mean());
    table.cell(d_epi.mean());
    table.cell(d_sw.mean());
    table.cell(d_dir.mean());
    table.cell(d_on.mean());
    table.cell(pro_car.mean(), 1);
    table.cell(epi_tx.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "# PRoPHET approaches epidemic delivery with a fraction of "
               "the carriers; direct\n# delivery suffers across communities; "
               "onion routing pays its anonymity toll on top.\n";
  bench::finish(base, args, timer);
  return 0;
}
