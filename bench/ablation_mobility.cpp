// Ablation: does the paper's exponential inter-contact assumption survive
// geometric mobility?
//
// Table II *postulates* exponential inter-contact times. Here contact
// traces come from first principles — random-waypoint movement in a plane
// — and the opportunistic-onion-path model is trained on estimated rates
// and compared against protocol simulation on the same trace. The residual
// gap is the price of the exponential assumption itself (plus rate-
// estimation noise), separated from all other modeling error.
#include <cmath>
#include <iostream>

#include "common/bench_common.hpp"
#include "mobility/random_waypoint.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation",
                      "Exponential-ICT assumption under random-waypoint mobility",
                      "40 nodes, 1km^2, 50m range, K=3, g=5; x = deadline (s)",
                      base);

  mobility::RandomWaypointParams p;
  p.nodes = 40;
  p.duration = 90000.0;
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng mob_rng(base.seed);
  auto trace = mobility::random_waypoint_trace(p, mob_rng);
  std::cout << "# mobility trace: " << trace.event_count() << " contacts in "
            << p.duration << " s\n";

  util::Table table({"deadline_sec", "ana_trained", "sim", "abs_gap"});
  for (double deadline : {600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0}) {
    auto cfg = base;
    cfg.group_size = 5;
    cfg.num_relays = 3;
    cfg.ttl = deadline;
    cfg.trace_training_gap = 0.0;  // RWP has no diurnal gaps
    auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    table.cell(r.ana_delivery.mean());
    table.cell(r.sim_delivered.mean());
    table.cell(std::abs(r.ana_delivery.mean() - r.sim_delivered.mean()));
  }
  table.print(std::cout);
  std::cout << "# Random-waypoint inter-contact times are only "
               "approximately exponential; the\n# model built on that "
               "assumption still tracks simulated delivery on mobility-"
               "generated\n# traces, supporting the paper's use of Table II "
               "contact dynamics.\n";
  bench::finish(base, args, timer);
  return 0;
}
