// Ablation: end-to-end recovery — delivery under faults and offered load
// with the odtn::recovery layer off vs on, against the fault-blind Eq. 7
// curve.
//
// The paper's delivery analysis (Eq. 7) assumes relays neither fail nor
// drop copies, and it has no notion of a send being retried: once the
// copies are out, the message either makes it by T or it does not. The
// recovery layer gives the sender another move — delivery ACKs spread as
// anti-packets, undelivered messages re-onion through freshly sampled
// relay groups after a backed-off timeout, suspicion biases those retries
// away from groups that keep eating copies, and overload shedding refuses
// work the network cannot carry. The analysis column is the fault-free
// closed form at the same (K, g, L, T); it is constant down each sweep —
// that flatness is the point, since every fault level violates its
// assumptions equally. The recovery_on − recovery_off gap is the delivery
// the layer buys back at each fault level and offered load.
#include <iostream>
#include <sstream>

#include "common/bench_common.hpp"
#include "metrics/writer.hpp"
#include "util/stats.hpp"

namespace {

// The recovery stack under test. Timeout below the TTL so every message
// has room for all three retries; suspicion sharp enough to converge
// within one run's workload; shedding engages only near saturation.
odtn::recovery::RecoveryConfig recovery_on() {
  odtn::recovery::RecoveryConfig rc;
  rc.acks = true;
  rc.retx_timeout = 300.0;
  rc.retx_max = 3;
  rc.retx_backoff = 2.0;
  rc.retx_jitter = 0.1;
  rc.suspicion_alpha = 0.3;
  rc.suspicion_threshold = 0.75;
  rc.shed_occupancy = 0.95;
  rc.shed_saturation = 0.8;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  if (!args.has("runs")) base.runs = 10;  // whole-workload runs, not messages
  base.copies = 4;
  bench::print_header(
      "Ablation", "Recovery layer vs faults and offered load",
      "n=100, K=3, g=5, L=4, T=1800, horizon=600, bandwidth=2/contact, "
      "buffer=8; analysis is fault-free Eq. 7",
      base);

  // Fault-blind Eq. 7 at the same (K, g, L, T): the unloaded fault-free
  // closed form, evaluated over this seed's realizations.
  const double eq7 =
      bench::run_experiment(base, core::RandomGraphScenario{})
          .ana_delivery.mean();

  auto loaded_config = [&](double rate) {
    core::ExperimentConfig cfg = base;
    traffic::FlowConfig flow;
    flow.rate = rate;
    flow.ttl = cfg.ttl;
    flow.num_relays = cfg.num_relays;
    flow.copies = cfg.copies;
    cfg.traffic.flows.push_back(flow);
    cfg.traffic.horizon = 600.0;
    cfg.bandwidth.messages_per_contact = 2;
    cfg.buffer_capacity = 8;
    cfg.buffer_policy = sim::BufferPolicy::kDropOldest;
    return cfg;
  };

  std::vector<double> off_col, on_col;
  auto off_on_cells = [&](core::ExperimentConfig cfg, util::Table& table) {
    auto off = bench::run_experiment(cfg, core::RandomGraphScenario{});
    cfg.recovery = recovery_on();
    auto on = bench::run_experiment(cfg, core::RandomGraphScenario{});
    table.cell(eq7);
    table.cell(off.sim_delivered.mean());
    table.cell(on.sim_delivered.mean());
    table.cell(on.sim_delivered.mean() - off.sim_delivered.mean());
    table.cell(off.sim_p99_delay.mean(), 1);
    table.cell(on.sim_p99_delay.mean(), 1);
    off_col.push_back(off.sim_delivered.mean());
    on_col.push_back(on.sim_delivered.mean());
  };

  std::cout << "# sweep 1: fault intensity (blackhole relay fraction,\n"
            << "#          p_fail=0.2, churn 400/100) at offered rate 0.4\n";
  const std::vector<double> blackholes = {0.0, 0.1, 0.2, 0.3};
  bench::Sweep fault_sweep({"blackhole", "analysis_eq7", "recovery_off",
                            "recovery_on", "recovered", "off_p99", "on_p99"},
                           blackholes, bench::Sweep::XFormat::kFixed2);
  fault_sweep.run([&](double fraction, util::Table& table) {
    auto cfg = loaded_config(0.4);
    cfg.faults.p_fail = 0.2;
    cfg.faults.mean_uptime = 400.0;
    cfg.faults.mean_downtime = 100.0;
    cfg.faults.blackhole_fraction = fraction;
    off_on_cells(cfg, table);
  });
  fault_sweep.print(std::cout);

  std::cout << "# sweep 2: offered load (msgs/time-unit) at blackhole=0.2,\n"
            << "#          p_fail=0.2, churn 400/100\n";
  const std::vector<double> offered = {0.1, 0.2, 0.4, 0.8};
  bench::Sweep load_sweep({"offered", "analysis_eq7", "recovery_off",
                           "recovery_on", "recovered", "off_p99", "on_p99"},
                          offered, bench::Sweep::XFormat::kFixed2);
  load_sweep.run([&](double rate, util::Table& table) {
    auto cfg = loaded_config(rate);
    cfg.faults.p_fail = 0.2;
    cfg.faults.mean_uptime = 400.0;
    cfg.faults.mean_downtime = 100.0;
    cfg.faults.blackhole_fraction = 0.2;
    off_on_cells(cfg, table);
  });
  load_sweep.print(std::cout);
  std::cout << "# the analysis column is flat by construction: Eq. 7 is "
               "blind to every fault\n# knob. recovery_on buys back part of "
               "the gap via ACK-vaccinated retransmission\n# and "
               "suspicion-biased retries; at the highest load shedding "
               "trades admitted\n# messages for a bounded p99.\n";

  auto join = [](const std::vector<double>& v) {
    std::ostringstream os;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ",";
      os << metrics::format_double(v[i]);
    }
    return os.str();
  };
  std::ostringstream extra;
  extra << "\"recovery_off\":[" << join(off_col) << "],\"recovery_on\":["
        << join(on_col) << "]";
  bench::finish(base, args, timer, extra.str());
  return 0;
}
