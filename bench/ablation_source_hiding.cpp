// Ablation: the three anonymous-DTN schemes of the paper's Sec. VI-C on
// one playing field — onion-group routing (this paper / ARDEN), the
// Threshold Pivot Scheme, and ALAR — plus epidemic as the non-anonymous
// ceiling. Identical sampled contact traces per run; columns report
// delivery within the deadline and mean transmissions.
//
// What each scheme concedes (not visible in the numbers): onion routing
// hides both endpoints from everyone; TPS reveals the destination to the
// pivot; ALAR does not protect the sender's identifier at all, only the
// sender's *location* (segments leave via different neighbors).
#include <iostream>

#include "common/bench_common.hpp"
#include "routing/alar.hpp"
#include "routing/baselines.hpp"
#include "routing/onion_routing.hpp"
#include "routing/threshold_pivot.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation",
                      "Source-hiding schemes: onion vs TPS vs ALAR",
                      "n=100, g=5, onion K=3, TPS tau=3/s=5, ALAR s=4",
                      base);

  // ALAR floods a sampled trace per run; a quarter of the default runs
  // keeps the bench snappy with tight means.
  std::size_t runs = std::max<std::size_t>(25, base.runs / 4);
  util::Table table({"deadline_min", "onion", "tps", "alar", "epidemic",
                     "onion_tx", "tps_tx", "alar_tx", "epi_tx"});
  for (double deadline : {120.0, 240.0, 360.0, 600.0, 900.0, 1800.0}) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats d_on, d_tps, d_alar, d_epi;
    util::RunningStats t_on, t_tps, t_alar, t_epi;
    for (std::size_t run = 0; run < runs; ++run) {
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      auto trace = trace::sample_poisson_trace(graph, deadline, rng);
      sim::TraceContactModel contacts(trace);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::SingleCopyOnionRouting onion_p(ctx);
      routing::ThresholdPivotRouting tps_p(dir, keys, {5, 3});
      routing::AlarRouting alar_p(routing::AlarOptions{4, 4});
      routing::EpidemicRouting epi_p;

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;

      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = deadline;
      spec.num_relays = 3;

      auto r1 = onion_p.route(contacts, spec, rng);
      d_on.add(r1.delivered);
      t_on.add(static_cast<double>(r1.transmissions));
      auto r2 = tps_p.route(contacts, spec, rng);
      d_tps.add(r2.delivered);
      t_tps.add(static_cast<double>(r2.transmissions));
      auto r3 = alar_p.route(trace, spec, rng);
      d_alar.add(r3.delivered);
      t_alar.add(static_cast<double>(r3.transmissions));
      auto r4 = epi_p.route(contacts, spec);
      d_epi.add(r4.delivered);
      t_epi.add(static_cast<double>(r4.transmissions));
    }
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    table.cell(d_on.mean());
    table.cell(d_tps.mean());
    table.cell(d_alar.mean());
    table.cell(d_epi.mean());
    table.cell(t_on.mean(), 1);
    table.cell(t_tps.mean(), 1);
    table.cell(t_alar.mean(), 1);
    table.cell(t_epi.mean(), 1);
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
