// Ablation: where the opportunistic-onion-path model breaks down.
//
// The paper's model (Eq. 4) assumes every hop has a positive aggregate
// rate — true on the dense Table II graphs, false on sparse contact
// graphs. This bench sweeps graph density and reports the analysis-vs-
// simulation delivery gap, locating the regime boundary the paper's
// Infocom'05 discussion (Sec. V-E) hints at.
#include <cmath>
#include <iostream>

#include "analysis/delivery.hpp"
#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 900.0;
  bench::print_header("Ablation", "Model accuracy vs contact-graph density",
                      "n=100, K=3, g=5, L=1, T=900; x = edge probability",
                      base);

  util::Table table({"edge_prob", "analysis", "simulation", "abs_gap"});
  for (double p : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats sim, ana;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::sparse_contact_graph(base.nodes, p, rng,
                                               base.min_ict, base.max_ict);
      sim::PoissonContactModel contacts(graph, rng);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::SingleCopyOnionRouting protocol(ctx);

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;
      auto groups = dir.select_relay_groups(src, dst, base.num_relays, rng);

      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = base.ttl;
      spec.num_relays = base.num_relays;
      sim.add(protocol.route(contacts, spec, rng, &groups).delivered);
      auto rates = analysis::opportunistic_onion_rates(graph, src, dst, dir,
                                                       groups);
      ana.add(analysis::delivery_rate(rates, base.ttl));
    }
    table.new_row();
    table.cell(p, 1);
    table.cell(ana.mean());
    table.cell(sim.mean());
    table.cell(std::abs(ana.mean() - sim.mean()));
  }
  table.print(std::cout);
  std::cout << "# On sparse graphs the group-averaged hop rate (Eq. 4) "
               "overstates what the realized\n# holder can reach; the gap "
               "shrinks as the graph approaches the paper's dense regime.\n";
  bench::finish(base, args, timer);
  return 0;
}
