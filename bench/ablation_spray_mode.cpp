// Ablation: the two readings of Algorithm 2's spray phase.
//
// kDirectToFirstGroup — the source hands all L copies to members of R_1
// (Algorithm 2 literal). kSprayAndWait — the source sprays L-1 copies to
// arbitrary first-met carriers who then wait for R_1 (the "source
// spray-and-wait" augmentation the paper simulates; cost bound 1 + 2(L-1)
// + KL). This bench shows why the paper adopted the augmentation: carriers
// are found fast, so copies enter the pipeline sooner.
#include <iostream>

#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.copies = 3;
  bench::print_header("Ablation", "Multi-copy spray strategy",
                      "n=100, K=3, g=5, L=3; x = deadline", base);

  bench::Sweep sweep({"deadline_min", "direct_to_R1", "spray_and_wait",
                      "direct_tx", "spray_tx"},
                     bench::deadline_sweep(), bench::Sweep::XFormat::kInt);
  sweep.run([&](double deadline, util::Table& table) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats d_direct, d_spray, tx_direct, tx_spray;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      sim::PoissonContactModel contacts(graph, rng);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::MultiCopyOnionRouting direct(
          ctx, routing::SprayMode::kDirectToFirstGroup);
      routing::MultiCopyOnionRouting spray(ctx,
                                           routing::SprayMode::kSprayAndWait);

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;
      auto groups = dir.select_relay_groups(src, dst, base.num_relays, rng);

      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = deadline;
      spec.num_relays = base.num_relays;
      spec.copies = base.copies;
      auto rd = direct.route(contacts, spec, rng, &groups);
      auto rs = spray.route(contacts, spec, rng, &groups);
      d_direct.add(rd.delivered);
      d_spray.add(rs.delivered);
      tx_direct.add(static_cast<double>(rd.transmissions));
      tx_spray.add(static_cast<double>(rs.transmissions));
    }
    table.cell(d_direct.mean());
    table.cell(d_spray.mean());
    table.cell(tx_direct.mean(), 2);
    table.cell(tx_spray.mean(), 2);
  });
  sweep.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
