// Ablation: uniform vs targeted compromise.
//
// The paper's adversary compromises nodes uniformly at random. A smarter
// adversary with the same budget targets the best-connected nodes — which
// relay (and hence disclose) more traffic. This bench quantifies how much
// stronger that placement is against onion-group routing, on graphs whose
// contact rates are heterogeneous enough for "best-connected" to mean
// something (community graphs; on uniform Table II graphs all nodes are
// statistically identical and targeting gains nothing).
#include <iostream>

#include "adversary/adversary.hpp"
#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Ablation", "Uniform vs targeted (top-rate) compromise",
                      "n=100 community graph (2 communities, 8x slowdown), "
                      "K=3, g=5; x = compromise budget",
                      base);

  util::Table table({"compromised", "uniform_trace", "targeted_trace",
                     "uniform_anon", "targeted_anon"});
  for (double fraction : bench::compromise_sweep()) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats u_trace, t_trace, u_anon, t_anon;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::community_contact_graph(base.nodes, 2, 8.0, rng,
                                                  base.min_ict, base.max_ict);
      sim::PoissonContactModel contacts(graph, rng);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::SingleCopyOnionRouting protocol(ctx);

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;
      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = 1e7;
      spec.num_relays = base.num_relays;
      auto r = protocol.route(contacts, spec, rng);
      if (!r.delivered) continue;

      auto uniform =
          adversary::CompromiseModel::from_fraction(base.nodes, fraction, rng);
      auto count = uniform.compromised_count();
      auto targeted = adversary::CompromiseModel::targeted(graph, count);

      u_trace.add(
          adversary::measured_traceable_rate(src, r.relay_path, uniform));
      t_trace.add(
          adversary::measured_traceable_rate(src, r.relay_path, targeted));
      u_anon.add(adversary::measured_path_anonymity(
          src, r.relays_per_hop, uniform, base.nodes, base.group_size));
      t_anon.add(adversary::measured_path_anonymity(
          src, r.relays_per_hop, targeted, base.nodes, base.group_size));
    }
    table.new_row();
    table.cell(fraction, 2);
    table.cell(u_trace.mean());
    table.cell(t_trace.mean());
    table.cell(u_anon.mean());
    table.cell(t_anon.mean());
  }
  table.print(std::cout);
  std::cout << "# Targeted placement concentrates on high-contact nodes, "
               "which are likelier to be\n# the first group member a holder "
               "meets. The advantage is real but modest (~10-20%\n# relative "
               "above 20% compromise): group membership is assigned "
               "independently of\n# connectivity, which caps what "
               "connectivity-based targeting can gain — a robustness\n# "
               "property of onion groups the paper does not discuss.\n";
  bench::finish(base, args, timer);
  return 0;
}
