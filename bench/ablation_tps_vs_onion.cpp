// Ablation: Threshold Pivot Scheme (TPS) vs onion-group routing.
//
// Sec. VI-C of the paper notes TPS "alleviates the longer delay due to the
// use of onions" but "the final destination of a message is revealed to
// the pivot". This bench quantifies both sides of that trade on identical
// random graphs: delivery within a deadline, delay, transmissions.
//
// Message arrivals come from the odtn::traffic generator: each run routes
// a small Poisson workload (E[4] messages over the deadline window) with
// both protocols. --legacy-injection restores the historical
// one-message-per-run draw, byte-identical to the pre-traffic output.
#include <iostream>

#include "common/bench_common.hpp"
#include "routing/onion_routing.hpp"
#include "routing/threshold_pivot.hpp"
#include "traffic/traffic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bool legacy = args.get_bool("legacy-injection", false);
  bench::print_header("Ablation", "TPS (tau=3 of s=5 shares) vs onion routing",
                      "n=100, g=5; onion K in {3,5}; x = deadline", base);

  bench::Sweep sweep({"deadline_min", "onion_K3", "onion_K5", "tps",
                      "onion_K3_tx", "tps_tx"},
                     bench::deadline_sweep(), bench::Sweep::XFormat::kInt);
  sweep.run([&](double deadline, util::Table& table) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    util::RunningStats d_k3, d_k5, d_tps, tx_k3, tx_tps;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      sim::PoissonContactModel contacts(graph, rng);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      routing::OnionContext ctx{&dir, &keys, &codec,
                                routing::CryptoMode::kNone};
      routing::SingleCopyOnionRouting onion(ctx);
      routing::ThresholdPivotRouting tps(dir, keys, {5, 3});

      std::vector<routing::MessageSpec> specs;
      if (legacy) {
        routing::MessageSpec spec;
        spec.src = static_cast<NodeId>(rng.below(base.nodes));
        spec.dst = static_cast<NodeId>(rng.below(base.nodes - 1));
        if (spec.dst >= spec.src) ++spec.dst;
        spec.ttl = deadline;
        specs.push_back(spec);
      } else {
        // Poisson arrivals over one deadline window, E[count] = 4.
        traffic::FlowConfig flow;
        flow.rate = 4.0 / deadline;
        flow.ttl = deadline;
        flow.num_relays = 3;
        traffic::TrafficConfig workload;
        workload.flows.push_back(flow);
        workload.horizon = deadline;
        specs = traffic::TrafficPlan(workload, base.nodes, rng.next()).specs();
      }

      for (routing::MessageSpec spec : specs) {
        spec.num_relays = 3;
        auto r3 = onion.route(contacts, spec, rng);
        d_k3.add(r3.delivered);
        tx_k3.add(static_cast<double>(r3.transmissions));
        spec.num_relays = 5;
        d_k5.add(onion.route(contacts, spec, rng).delivered);
        auto rt = tps.route(contacts, spec, rng);
        d_tps.add(rt.delivered);
        tx_tps.add(static_cast<double>(rt.transmissions));
      }
    }
    table.cell(d_k3.mean());
    table.cell(d_k5.mean());
    table.cell(d_tps.mean());
    table.cell(tx_k3.mean(), 2);
    table.cell(tx_tps.mean(), 2);
  });
  sweep.print(std::cout);
  std::cout << "# TPS buys delivery speed with parallel 2-hop shares, but "
               "reveals dst to the pivot;\n# onion routing never does. TPS "
               "also spends more transmissions per message.\n";
  bench::finish(base, args, timer);
  return 0;
}
