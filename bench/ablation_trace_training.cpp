// Ablation: "training the traces" (Sec. V-D of the paper).
//
// The delivery model needs contact rates; on a real trace they must be
// estimated. Estimating over wall-clock time dilutes rates with the long
// off-business-hour gaps; estimating over *active* time (silent gaps
// capped) matches the regime in which messages actually travel. This
// bench quantifies the difference on the Cambridge-like trace — the
// correction is what makes Fig. 14's analysis track its simulation.
#include <cmath>
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 1;
  base.num_relays = 3;
  bench::print_header("Ablation", "Trace rate training: wall-clock vs active time",
                      "Cambridge-like trace, K=3, g=1, L=1; x = deadline (s)",
                      base);

  auto trace = trace::make_cambridge_like(base.seed);
  util::Table table({"deadline_sec", "sim", "ana_wallclock", "ana_active",
                     "gap_wallclock", "gap_active"});
  for (double deadline : {300.0, 600.0, 900.0, 1200.0, 1800.0, 2700.0,
                          3600.0}) {
    auto wall_cfg = base;
    wall_cfg.ttl = deadline;
    wall_cfg.trace_training_gap = 0.0;  // disable the correction
    auto wall = bench::run_experiment(wall_cfg, core::TraceScenario{&trace});

    auto active_cfg = base;
    active_cfg.ttl = deadline;
    active_cfg.trace_training_gap = 1800.0;
    auto active = bench::run_experiment(active_cfg, core::TraceScenario{&trace});

    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    table.cell(active.sim_delivered.mean());
    table.cell(wall.ana_delivery.mean());
    table.cell(active.ana_delivery.mean());
    table.cell(std::abs(wall.ana_delivery.mean() -
                        wall.sim_delivered.mean()));
    table.cell(std::abs(active.ana_delivery.mean() -
                        active.sim_delivered.mean()));
  }
  table.print(std::cout);
  std::cout << "# Wall-clock training spreads 8 business hours of contacts "
               "over 24h, underestimating\n# every rate ~3x; active-time "
               "training recovers the paper's model-vs-trace agreement.\n";
  bench::finish(base, args, timer);
  return 0;
}
