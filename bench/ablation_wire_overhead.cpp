// Ablation: what wire-accurate cells cost, and what an on-path adversary
// actually sees.
//
// The abstract protocols count transmissions; the wire layer prices each
// of them in fixed-size AEAD cells. This bench sweeps the cell size and
// reports, for both onion protocols, the measured wire bytes per delivered
// message and the peel cost (layer opens per message), plus a
// compromised-relay adversary run on the actual ciphertext cell streams
// via circuit::CellTap: the fraction of all cells that crossed a contact
// an adversary endpoint observed, and the fraction of messages whose
// source was exposed at cell granularity (a compromised node received
// cells directly from the source). Cells are constant-size, so these are
// the only signals the public network leaks — packet shapes carry nothing.
#include <iostream>

#include "adversary/adversary.hpp"
#include "common/bench_common.hpp"
#include "metrics/metrics.hpp"
#include "routing/onion_routing.hpp"
#include "util/stats.hpp"

namespace {

using namespace odtn;

struct WirePoint {
  util::RunningStats cells_per_msg;
  util::RunningStats bytes_per_msg;
  std::uint64_t peels = 0;
  std::uint64_t observed_cells = 0;
  std::uint64_t total_cells = 0;
  std::size_t src_exposed = 0;
  std::size_t delivered = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header(
      "Ablation", "Wire-accurate cell overhead and cell-stream adversary",
      "n=100 Table II graph, K=3, g=5, 10% compromised; x = cell size; "
      "single-copy L=1, multi-copy L=4 spray-and-wait",
      base);

  util::Table table({"cell_size", "s_cells", "s_bytes", "s_peels", "m_cells",
                     "m_bytes", "m_peels", "cells_seen", "src_exposed"});
  for (std::size_t cell_size : {std::size_t{128}, std::size_t{256},
                                std::size_t{512}, std::size_t{1024},
                                std::size_t{4096}}) {
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng rng(base.seed);
    WirePoint single, multi;
    metrics::Registry s_reg, m_reg;
    for (std::size_t run = 0; run < base.runs; ++run) {
      auto graph = graph::random_contact_graph(base.nodes, rng, base.min_ict,
                                               base.max_ict);
      groups::GroupDirectory dir(base.nodes, base.group_size, &rng);
      groups::KeyManager keys(dir, rng.next());
      onion::OnionCodec codec;
      auto adversary = adversary::CompromiseModel::from_fraction(
          base.nodes, 0.1, rng);

      NodeId src = static_cast<NodeId>(rng.below(base.nodes));
      NodeId dst = static_cast<NodeId>(rng.below(base.nodes - 1));
      if (dst >= src) ++dst;
      routing::MessageSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.ttl = 1e7;
      spec.num_relays = base.num_relays;

      auto measure = [&](WirePoint& point, metrics::Registry* reg,
                         std::size_t copies) {
        // The tap sees every sealed cell a contact carries; the adversary's
        // observation is exactly the cells one of its nodes sent or
        // received, plus source exposure when it is the direct receiver.
        bool exposed = false;
        routing::OnionContext ctx{&dir, &keys, &codec,
                                  routing::CryptoMode::kReal};
        ctx.metrics = reg;
        ctx.wire_cells = true;
        ctx.cell_size = cell_size;
        ctx.cell_tap = [&](const circuit::CellEvent& e) {
          ++point.total_cells;
          if (adversary.is_compromised(e.sender) ||
              adversary.is_compromised(e.receiver)) {
            ++point.observed_cells;
          }
          if (e.sender == src && adversary.is_compromised(e.receiver)) {
            exposed = true;
          }
        };
        spec.copies = copies;
        sim::PoissonContactModel contacts(graph, rng);
        routing::DeliveryResult r;
        if (copies == 1) {
          routing::SingleCopyOnionRouting protocol(ctx);
          r = protocol.route(contacts, spec, rng);
        } else {
          routing::MultiCopyOnionRouting protocol(ctx);
          r = protocol.route(contacts, spec, rng);
        }
        if (exposed) ++point.src_exposed;
        if (!r.delivered) return;
        ++point.delivered;
        point.cells_per_msg.add(static_cast<double>(r.wire_cells));
        point.bytes_per_msg.add(static_cast<double>(r.wire_bytes));
      };
      measure(single, &s_reg, 1);
      measure(multi, &m_reg, 4);
    }
    single.peels = s_reg.entries().at("routing.peels").counter;
    multi.peels = m_reg.entries().at("routing.peels").counter;

    const std::uint64_t seen =
        single.observed_cells + multi.observed_cells;
    const std::uint64_t total = single.total_cells + multi.total_cells;
    table.new_row();
    table.cell(static_cast<double>(cell_size), 0);
    table.cell(single.cells_per_msg.mean());
    table.cell(single.bytes_per_msg.mean());
    table.cell(static_cast<double>(single.peels) /
               static_cast<double>(base.runs));
    table.cell(multi.cells_per_msg.mean());
    table.cell(multi.bytes_per_msg.mean());
    table.cell(static_cast<double>(multi.peels) /
               static_cast<double>(base.runs));
    table.cell(total == 0 ? 0.0
                          : static_cast<double>(seen) /
                                static_cast<double>(total));
    table.cell(static_cast<double>(single.src_exposed + multi.src_exposed) /
               static_cast<double>(2 * base.runs));
  }
  table.print(std::cout);
  std::cout
      << "# Peel cost (layer opens/message) is cell-size invariant — the "
         "protocol does the\n# same K+1 opens however the packet is "
         "fragmented — while bytes/message fall as\n# cells grow until one "
         "cell holds the whole packet, then padding dominates.\n# The "
         "cell-stream adversary sees ~what uniform 10% compromise predicts: "
         "constant\n# cell size leaves only cell counts to observe, so "
         "byte-level observation adds no\n# power over the abstract "
         "transmission-counting adversary — the property the\n# wire layer "
         "exists to demonstrate.\n";
  bench::finish(base, args, timer);
  return 0;
}
