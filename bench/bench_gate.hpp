// Shared driver for the google-benchmark micro benches (micro_sim,
// micro_crypto): median capture, odtn.bench.v1 export, and the CI
// perf-regression gate.
//
// Custom flags (peeled off before google-benchmark sees argv):
//   --json=FILE               write odtn.bench.v1 records (median real time
//                             per benchmark) to FILE
//   --baseline=FILE           committed BENCH_<figure_id>.json to compare
//                             against; adds baseline_median_real_time and
//                             regression_pct to the records
//   --max-regression-pct=N    exit non-zero if any benchmark present in the
//                             baseline regresses by more than N percent
//                             (the tools/ci.sh perf-smoke gate)
//
// Usage: define the benchmarks, then
//   int main(int argc, char** argv) {
//     return odtn::bench_gate::run(argc, argv, "micro_crypto");
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace odtn::bench_gate {

struct Median {
  double value = 0.0;          // in `unit`
  std::string unit = "ns";
  std::int64_t repetitions = 1;
  std::map<std::string, double> counters;  // e.g. allocs_per_query
};

inline double to_ns_factor(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

// Console output passes through untouched; medians (or, without
// repetitions, the single run) are captured per benchmark name.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  std::map<std::string, Median> medians;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const std::string name = run.run_name.str();
      const bool is_median =
          run.run_type == Run::RT_Aggregate && run.aggregate_name == "median";
      // Single-repetition fallback: the lone run is its own median.
      const bool is_fallback = run.run_type != Run::RT_Aggregate &&
                               medians.find(name) == medians.end();
      if (!is_median && !is_fallback) continue;
      Median m;
      m.value = run.GetAdjustedRealTime();
      m.unit = benchmark::GetTimeUnitString(run.time_unit);
      m.repetitions = is_median ? run.repetitions : 1;
      for (const auto& [cname, counter] : run.counters) {
        m.counters[cname] = counter.value;
      }
      medians[name] = std::move(m);
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

// Minimal parser for our own odtn.bench.v1 lines: pulls "benchmark",
// "median_real_time", and "time_unit" fields.
inline bool parse_field(const std::string& line, const std::string& key,
                        std::string* out) {
  const std::string needle = "\"" + key + "\": ";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  auto end = pos;
  if (line[pos] == '"') {
    ++pos;
    end = line.find('"', pos);
  } else {
    end = line.find_first_of(",}", pos);
  }
  if (end == std::string::npos) return false;
  *out = line.substr(pos, end - pos);
  return true;
}

inline std::map<std::string, Median> load_baseline(const std::string& tool,
                                                   const std::string& path) {
  std::map<std::string, Median> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot read baseline %s\n", tool.c_str(),
                 path.c_str());
    return out;
  }
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    std::string name, value, unit;
    if (!parse_field(line, "benchmark", &name) ||
        !parse_field(line, "median_real_time", &value)) {
      continue;
    }
    Median m;
    m.value = std::strtod(value.c_str(), nullptr);
    if (parse_field(line, "time_unit", &unit)) m.unit = unit;
    out[name] = m;
  }
  std::fclose(f);
  return out;
}

// Runs the registered benchmarks under the capturing reporter, exports
// odtn.bench.v1 records, and enforces the baseline gate. `figure_id` names
// the records and doubles as the tool name in diagnostics. Returns the
// process exit code (2 = regression over the limit).
inline int run(int argc, char** argv, const std::string& figure_id) {
  std::string json_path, baseline_path;
  double max_regression_pct = -1.0;

  // Peel driver flags; everything else goes to google-benchmark.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression-pct=", 0) == 0) {
      max_regression_pct = std::strtod(arg.substr(21).c_str(), nullptr);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::map<std::string, Median> baseline;
  if (!baseline_path.empty()) {
    baseline = load_baseline(figure_id, baseline_path);
  }

  bool regressed = false;
  std::FILE* out = nullptr;
  if (!json_path.empty()) {
    out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", figure_id.c_str(),
                   json_path.c_str());
      return 1;
    }
  }
  for (const auto& [name, m] : reporter.medians) {
    double regression_pct = 0.0;
    bool have_base = false;
    auto it = baseline.find(name);
    if (it != baseline.end()) {
      const double base_ns = it->second.value * to_ns_factor(it->second.unit);
      const double cur_ns = m.value * to_ns_factor(m.unit);
      if (base_ns > 0.0) {
        regression_pct = (cur_ns - base_ns) / base_ns * 100.0;
        have_base = true;
        if (max_regression_pct >= 0.0 && regression_pct > max_regression_pct) {
          std::fprintf(stderr,
                       "%s: %s regressed %.2f%% vs baseline (limit %.2f%%)\n",
                       figure_id.c_str(), name.c_str(), regression_pct,
                       max_regression_pct);
          regressed = true;
        } else {
          std::fprintf(stderr, "%s: %s vs baseline: %+.2f%%\n",
                       figure_id.c_str(), name.c_str(), regression_pct);
        }
      }
    }
    if (out != nullptr) {
      std::fprintf(out,
                   "{\"schema\": \"odtn.bench.v1\", \"figure_id\": "
                   "\"%s\", \"benchmark\": \"%s\", "
                   "\"median_real_time\": %.17g, \"time_unit\": \"%s\", "
                   "\"repetitions\": %lld",
                   figure_id.c_str(), name.c_str(), m.value, m.unit.c_str(),
                   static_cast<long long>(m.repetitions));
      if (have_base) {
        std::fprintf(out,
                     ", \"baseline_median_real_time\": %.17g, "
                     "\"regression_pct\": %.2f",
                     it->second.value, regression_pct);
      }
      for (const auto& [cname, cvalue] : m.counters) {
        std::fprintf(out, ", \"%s\": %.17g", cname.c_str(), cvalue);
      }
      std::fprintf(out, "}\n");
    }
  }
  if (out != nullptr) std::fclose(out);
  return regressed ? 2 : 0;
}

}  // namespace odtn::bench_gate
