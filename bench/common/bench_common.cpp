#include "common/bench_common.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "metrics/writer.hpp"

namespace odtn::bench {

core::ExperimentConfig base_config(const util::Args& args) {
  core::ExperimentConfig cfg;
  cfg.runs = static_cast<std::size_t>(args.get_int("runs", 200));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  cfg.collect_metrics = args.has("metrics-out");
  std::string backend = args.get("contact-backend", "dense");
  if (backend == "sparse") {
    cfg.backend = core::ContactBackend::kSparse;
  } else if (backend != "dense") {
    throw std::invalid_argument(
        "bench: --contact-backend must be dense or sparse");
  }
  cfg.avg_degree = static_cast<std::size_t>(args.get_int("avg-degree", 0));
  cfg.communities = static_cast<std::size_t>(args.get_int("communities", 0));
  cfg.group_shards = static_cast<std::size_t>(args.get_int("group-shards", 0));
  return cfg;
}

metrics::Registry& bench_metrics() {
  static metrics::Registry registry;
  return registry;
}

core::ExperimentResult run_experiment(const core::ExperimentConfig& config,
                                      const core::Scenario& scenario) {
  core::ExperimentResult result = core::Experiment(config).run(scenario);
  if (config.collect_metrics) bench_metrics().merge(result.metrics);
  return result;
}

void print_header(const std::string& figure_id, const std::string& title,
                  const std::string& fixed_params,
                  const core::ExperimentConfig& config) {
  std::cout << "# " << figure_id << ": " << title << "\n"
            << "# fixed: " << fixed_params << "\n"
            << "# runs/point: " << config.runs << ", seed: " << config.seed
            << ", threads: ";
  if (config.threads == 0) {
    std::cout << "auto";
  } else {
    std::cout << config.threads;
  }
  std::cout << "\n";
}

void finish(const core::ExperimentConfig& config, const util::Args& args,
            const WallTimer& timer, const std::string& extra_json) {
  double wall = timer.seconds();
  std::cout << "# wall_time_s: " << wall << "\n";

  std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    metrics::write_file(metrics_path, bench_metrics());
    std::cout << "# metrics: " << metrics_path << "\n";
  }

  std::string path = args.get("json", "");
  if (path.empty()) return;
  std::string figure_id = args.program();
  auto slash = figure_id.find_last_of('/');
  if (slash != std::string::npos) figure_id = figure_id.substr(slash + 1);
  std::ostringstream record;
  record << "{\"schema\":\"odtn.bench.v1\",\"figure_id\":\"" << figure_id
         << "\",\"runs\":" << config.runs << ",\"seed\":" << config.seed
         << ",\"threads\":" << config.threads
         << ",\"wall_time_s\":" << metrics::format_double(wall);
  if (!extra_json.empty()) record << "," << extra_json;
  record << "}";
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw std::runtime_error("bench: cannot open --json file: " + path);
  }
  out << record.str() << "\n";
}

Sweep::Sweep(std::vector<std::string> columns, std::vector<double> xs,
             XFormat x_format)
    : table_(std::move(columns)), xs_(std::move(xs)), x_format_(x_format) {}

void Sweep::run(const std::function<void(double, util::Table&)>& point) {
  for (double x : xs_) {
    table_.new_row();
    if (x_format_ == XFormat::kInt) {
      table_.cell(static_cast<std::int64_t>(x));
    } else {
      table_.cell(x, 2);
    }
    point(x, table_);
  }
}

void Sweep::print(std::ostream& os) const { table_.print(os); }

const std::vector<double>& deadline_sweep() {
  static const std::vector<double> sweep = {60,  120, 240,  360, 600,
                                            900, 1200, 1500, 1800};
  return sweep;
}

const std::vector<double>& compromise_sweep() {
  static const std::vector<double> sweep = {0.10, 0.20, 0.30, 0.40, 0.50};
  return sweep;
}

}  // namespace odtn::bench
