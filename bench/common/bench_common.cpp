#include "common/bench_common.hpp"

#include <iostream>

namespace odtn::bench {

core::ExperimentConfig base_config(const util::Args& args) {
  core::ExperimentConfig cfg;
  cfg.runs = static_cast<std::size_t>(args.get_int("runs", 200));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return cfg;
}

void print_header(const std::string& figure_id, const std::string& title,
                  const std::string& fixed_params,
                  const core::ExperimentConfig& config) {
  std::cout << "# " << figure_id << ": " << title << "\n"
            << "# fixed: " << fixed_params << "\n"
            << "# runs/point: " << config.runs << ", seed: " << config.seed
            << "\n";
}

const std::vector<double>& deadline_sweep() {
  static const std::vector<double> sweep = {60,  120, 240,  360, 600,
                                            900, 1200, 1500, 1800};
  return sweep;
}

const std::vector<double>& compromise_sweep() {
  static const std::vector<double> sweep = {0.10, 0.20, 0.30, 0.40, 0.50};
  return sweep;
}

}  // namespace odtn::bench
