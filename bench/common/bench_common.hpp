// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary regenerates one figure of the paper: it prints one row
// per x-value with analysis and simulation columns side by side — the same
// series the figure plots. Common flags:
//   --runs=N      simulation runs per point (default 200)
//   --seed=S      experiment seed (default 1)
//   --threads=T   worker threads per experiment (default 0 = all hardware
//                 threads; results are bit-identical at every T)
//   --json=FILE   append a one-line JSON record (figure id, parameters,
//                 wall time) so perf is tracked run over run
#pragma once

#include <chrono>
#include <string>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace odtn::bench {

/// Builds the Table II default configuration, with --runs / --seed /
/// --threads applied.
core::ExperimentConfig base_config(const util::Args& args);

/// Prints the figure banner: id, title, and the fixed parameters.
void print_header(const std::string& figure_id, const std::string& title,
                  const std::string& fixed_params,
                  const core::ExperimentConfig& config);

/// Wall-clock stopwatch started at construction; benches create one first
/// thing in main() and hand it to finish().
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the closing `# wall_time_s:` line and, when --json=FILE was
/// given, appends `{"figure_id":...,"runs":...,"seed":...,"threads":...,
/// "wall_time_s":...}` to FILE (one JSON object per line; figure_id is the
/// bench binary's name, e.g. "fig06_traceable_vs_compromised").
void finish(const core::ExperimentConfig& config, const util::Args& args,
            const WallTimer& timer);

/// The deadline sweep (minutes) used by the delivery-rate figures.
const std::vector<double>& deadline_sweep();

/// The compromised-fraction sweep (10%..50%) of the security figures.
const std::vector<double>& compromise_sweep();

}  // namespace odtn::bench
