// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary regenerates one figure of the paper: it prints one row
// per x-value with analysis and simulation columns side by side — the same
// series the figure plots. Common flags:
//   --runs=N           simulation runs per point (default 200)
//   --seed=S           experiment seed (default 1)
//   --threads=T        worker threads per experiment (default 0 = all
//                      hardware threads; results are bit-identical at
//                      every T)
//   --json=FILE        append a one-line odtn.bench.v1 JSON record (figure
//                      id, parameters, wall time) so perf accumulates run
//                      over run — the repo convention is
//                      BENCH_<figure_id>.json at the repo root
//   --metrics-out=FILE write the deterministic odtn::metrics collected
//                      across every experiment of the sweep (JSONL, or CSV
//                      when FILE ends in .csv); byte-identical at every
//                      --threads value
//   --contact-backend=dense|sparse
//                      contact-rate storage (default dense; sparse enables
//                      the scale regime), plus --avg-degree / --communities
//                      / --group-shards sparse-side knobs
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "metrics/metrics.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace odtn::bench {

/// Builds the Table II default configuration, with --runs / --seed /
/// --threads applied; --metrics-out switches cfg.collect_metrics on.
core::ExperimentConfig base_config(const util::Args& args);

/// Runs the experiment and folds its metrics into the bench-wide registry
/// (bench_metrics()), which finish() exports when --metrics-out was given.
/// All benches go through this instead of core::Experiment directly.
core::ExperimentResult run_experiment(const core::ExperimentConfig& config,
                                      const core::Scenario& scenario);

/// The registry run_experiment accumulates into (sweep points fold in call
/// order, so the export is deterministic for a fixed sweep).
metrics::Registry& bench_metrics();

/// Prints the figure banner: id, title, and the fixed parameters.
void print_header(const std::string& figure_id, const std::string& title,
                  const std::string& fixed_params,
                  const core::ExperimentConfig& config);

/// Wall-clock stopwatch started at construction; benches create one first
/// thing in main() and hand it to finish().
class WallTimer {
 public:
  // odtn-lint: allow(banned-api) — kWall timer site: the bench stopwatch
  // feeds only the `# wall_time_s` banner line and --json timing records,
  // which the byte-identity goldens strip before comparing.
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    // odtn-lint: allow(banned-api) — kWall timer site (same stopwatch).
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  // odtn-lint: allow(banned-api) — kWall timer state for the stopwatch above.
  std::chrono::steady_clock::time_point start_;
};

/// Prints the closing `# wall_time_s:` line; when --json=FILE was given,
/// appends one versioned record
/// `{"schema":"odtn.bench.v1","figure_id":...,"runs":...,"seed":...,
/// "threads":...,"wall_time_s":...}` to FILE (figure_id is the bench
/// binary's name); when --metrics-out=FILE was given, writes the
/// accumulated deterministic metrics there. `extra_json` (when non-empty)
/// is spliced verbatim into the record before the closing brace — pass
/// pre-formatted `"key":value` pairs, comma-separated, no leading comma.
void finish(const core::ExperimentConfig& config, const util::Args& args,
            const WallTimer& timer, const std::string& extra_json = "");

/// One x-sweep figure table: owns the util::Table, iterates the x-values,
/// opens each row and prints the x cell, then hands the row to a per-point
/// callback for the curve columns. The x cell renders exactly like the
/// hand-rolled loops this replaced (kInt -> cell(int64), kFixed2 ->
/// cell(x, 2)), so migrated benches stay byte-identical.
class Sweep {
 public:
  enum class XFormat {
    kInt,     ///< deadline sweeps: cell(static_cast<int64_t>(x))
    kFixed2,  ///< fraction sweeps: cell(x, 2)
  };

  Sweep(std::vector<std::string> columns, std::vector<double> xs,
        XFormat x_format);

  /// Runs `point(x, table)` once per x value, in order. The row is already
  /// open and the x cell printed; the callback appends the curve cells.
  void run(const std::function<void(double, util::Table&)>& point);

  /// Renders the completed table.
  void print(std::ostream& os) const;

 private:
  util::Table table_;
  std::vector<double> xs_;
  XFormat x_format_;
};

/// The deadline sweep (minutes) used by the delivery-rate figures.
const std::vector<double>& deadline_sweep();

/// The compromised-fraction sweep (10%..50%) of the security figures.
const std::vector<double>& compromise_sweep();

}  // namespace odtn::bench
