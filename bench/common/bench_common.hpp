// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary regenerates one figure of the paper: it prints one row
// per x-value with analysis and simulation columns side by side — the same
// series the figure plots. Common flags:
//   --runs=N   simulation runs per point (default 200)
//   --seed=S   experiment seed (default 1)
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace odtn::bench {

/// Builds the Table II default configuration, with --runs / --seed applied.
core::ExperimentConfig base_config(const util::Args& args);

/// Prints the figure banner: id, title, and the fixed parameters.
void print_header(const std::string& figure_id, const std::string& title,
                  const std::string& fixed_params,
                  const core::ExperimentConfig& config);

/// The deadline sweep (minutes) used by the delivery-rate figures.
const std::vector<double>& deadline_sweep();

/// The compromised-fraction sweep (10%..50%) of the security figures.
const std::vector<double>& compromise_sweep();

}  // namespace odtn::bench
