// Figure 4: delivery rate w.r.t. deadline for group sizes g = 1, 5, 10.
// Single-copy forwarding, K = 3 onion relays, random contact graphs.
// Paper claim: larger onion groups bring more forwarding opportunities,
// so delivery rises with g; the analysis (Eq. 6) tracks the simulation.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Figure 4", "Delivery rate w.r.t. deadline",
                      "n=100, K=3, L=1, g in {1,5,10}", base);

  const std::vector<std::size_t> group_sizes = {1, 5, 10};
  bench::Sweep sweep({"deadline_min", "ana_g1", "sim_g1", "ana_g5", "sim_g5",
                      "ana_g10", "sim_g10"},
                     bench::deadline_sweep(), bench::Sweep::XFormat::kInt);
  sweep.run([&](double deadline, util::Table& table) {
    for (std::size_t g : group_sizes) {
      auto cfg = base;
      cfg.group_size = g;
      cfg.ttl = deadline;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_delivery.mean());
      table.cell(r.sim_delivered.mean());
    }
  });
  sweep.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
