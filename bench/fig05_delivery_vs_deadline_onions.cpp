// Figure 5: delivery rate w.r.t. deadline for K = 3, 5, 10 onion relays.
// Single-copy forwarding, g = 5, random contact graphs.
// Paper claim: fewer onion relays -> higher delivery (shorter paths); the
// analysis shows the same trend as simulation with a visible gap.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Figure 5", "Delivery rate w.r.t. deadline",
                      "n=100, g=5, L=1, K in {3,5,10}", base);

  const std::vector<std::size_t> relay_counts = {3, 5, 10};
  bench::Sweep sweep({"deadline_min", "ana_K3", "sim_K3", "ana_K5", "sim_K5",
                      "ana_K10", "sim_K10"},
                     bench::deadline_sweep(), bench::Sweep::XFormat::kInt);
  sweep.run([&](double deadline, util::Table& table) {
    for (std::size_t k : relay_counts) {
      auto cfg = base;
      cfg.num_relays = k;
      cfg.ttl = deadline;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_delivery.mean());
      table.cell(r.sim_delivered.mean());
    }
  });
  sweep.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
