// Figure 6: traceable rate w.r.t. % of compromised nodes for K = 3, 5, 10.
// Paper claim: traceable rate grows with the compromised fraction and
// shrinks with more onion relays. Analysis columns give both the paper's
// approximation (Eqs. 8-12) and the exact run-length expectation.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;  // measure security on delivered paths
  bench::print_header("Figure 6", "Traceable rate w.r.t. compromised rate",
                      "n=100, g=5, L=1, K in {3,5,10}", base);

  const std::vector<std::size_t> relay_counts = {3, 5, 10};
  bench::Sweep sweep({"compromised", "paper_K3", "exact_K3", "sim_K3",
                      "paper_K5", "exact_K5", "sim_K5", "paper_K10",
                      "exact_K10", "sim_K10"},
                     bench::compromise_sweep(),
                     bench::Sweep::XFormat::kFixed2);
  sweep.run([&](double fraction, util::Table& table) {
    for (std::size_t k : relay_counts) {
      auto cfg = base;
      cfg.num_relays = k;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_traceable_paper.mean());
      table.cell(r.ana_traceable_exact.mean());
      table.cell(r.sim_traceable.mean());
    }
  });
  sweep.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
