// Figure 7: traceable rate w.r.t. the number of onion relays K for
// compromised fractions 10%, 20%, 30%.
// Paper claim: adversaries trace smaller portions of a path as K grows.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;
  bench::print_header("Figure 7", "Traceable rate w.r.t. number of onion relays",
                      "n=100, g=5, L=1, c/n in {10,20,30}%", base);

  const std::vector<double> fractions = {0.10, 0.20, 0.30};
  util::Table table({"num_relays", "paper_c10", "exact_c10", "sim_c10",
                     "paper_c20", "exact_c20", "sim_c20", "paper_c30",
                     "exact_c30", "sim_c30"});
  for (std::size_t k = 1; k <= 10; ++k) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(k));
    for (double fraction : fractions) {
      auto cfg = base;
      cfg.num_relays = k;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_traceable_paper.mean());
      table.cell(r.ana_traceable_exact.mean());
      table.cell(r.sim_traceable.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
