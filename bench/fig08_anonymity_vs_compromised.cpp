// Figure 8: path anonymity w.r.t. % of compromised nodes for g = 1, 5, 10.
// Single-copy forwarding, K = 3. Paper claim: larger onion groups preserve
// more anonymity because a compromised hop only confines the next router
// to its group (1/g guess), and the analysis matches simulation closely.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;
  bench::print_header("Figure 8", "Path anonymity w.r.t. compromised rate",
                      "n=100, K=3, L=1, g in {1,5,10}", base);

  const std::vector<std::size_t> group_sizes = {1, 5, 10};
  util::Table table({"compromised", "ana_g1", "sim_g1", "ana_g5", "sim_g5",
                     "ana_g10", "sim_g10"});
  for (double fraction : bench::compromise_sweep()) {
    table.new_row();
    table.cell(fraction, 2);
    for (std::size_t g : group_sizes) {
      auto cfg = base;
      cfg.group_size = g;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_anonymity.mean());
      table.cell(r.sim_anonymity.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
