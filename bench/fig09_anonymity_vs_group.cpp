// Figure 9: path anonymity w.r.t. group size for compromised fractions
// 10%, 20%, 30%. Single-copy forwarding, K = 3.
// Paper claim: anonymity gradually increases with g.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;
  bench::print_header("Figure 9", "Path anonymity w.r.t. group size",
                      "n=100, K=3, L=1, c/n in {10,20,30}%", base);

  const std::vector<double> fractions = {0.10, 0.20, 0.30};
  util::Table table({"group_size", "ana_c10", "sim_c10", "ana_c20", "sim_c20",
                     "ana_c30", "sim_c30"});
  for (std::size_t g = 1; g <= 10; ++g) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(g));
    for (double fraction : fractions) {
      auto cfg = base;
      cfg.group_size = g;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_anonymity.mean());
      table.cell(r.sim_anonymity.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
