// Figure 10: delivery rate w.r.t. deadline for L = 1, 3, 5 copies (g = 5,
// so L <= g holds as in the paper). Multi-copy forwarding, K = 3.
// Paper claim: more copies -> more forwarding opportunities -> higher
// delivery; Eq. 7 shows the same trend as simulation.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  bench::print_header("Figure 10", "Delivery rate w.r.t. deadline (multi-copy)",
                      "n=100, K=3, g=5, L in {1,3,5}", base);

  const std::vector<std::size_t> copies = {1, 3, 5};
  util::Table table({"deadline_min", "ana_L1", "sim_L1", "ana_L3", "sim_L3",
                     "ana_L5", "sim_L5"});
  for (double deadline : bench::deadline_sweep()) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    for (std::size_t l : copies) {
      auto cfg = base;
      cfg.copies = l;
      cfg.ttl = deadline;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_delivery.mean());
      table.cell(r.sim_delivered.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
