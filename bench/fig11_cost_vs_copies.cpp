// Figure 11: number of message transmissions w.r.t. the number of copies L.
// Curves: the non-anonymous reference 2L, the analytical bound (K+2)L and
// the simulated cost for K = 3 and K = 10.
// Paper claim: anonymity is bought with transmissions; analysis and
// simulation are very close, both far above the non-anonymous cost.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;  // cost is measured on completed forwarding processes
  bench::print_header("Figure 11", "Message transmissions w.r.t. copies",
                      "n=100, g=5, K in {3,10}", base);

  util::Table table({"copies", "non_anonymous", "ana_K3", "sim_K3",
                     "ana_K10", "sim_K10"});
  for (std::size_t l = 1; l <= 5; ++l) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(l));
    bool first = true;
    for (std::size_t k : {3u, 10u}) {
      auto cfg = base;
      cfg.num_relays = k;
      cfg.copies = l;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      if (first) {
        table.cell(r.ana_cost_non_anonymous.mean(), 1);
        first = false;
      }
      table.cell(r.ana_cost_bound.mean(), 1);
      table.cell(r.sim_transmissions.mean(), 2);
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
