// Figure 12: path anonymity w.r.t. % of compromised nodes for L = 1, 3, 5
// copies (g = 5, K = 3).
// Paper claim: anonymity decreases as L grows — copies traverse the same
// onion groups, so adversaries correlate path information; the model
// (Eq. 20) matches simulation for small c/n and drifts apart beyond ~30%.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;
  bench::print_header("Figure 12",
                      "Path anonymity w.r.t. compromised rate (multi-copy)",
                      "n=100, K=3, g=5, L in {1,3,5}", base);

  const std::vector<std::size_t> copies = {1, 3, 5};
  util::Table table({"compromised", "ana_L1", "sim_L1", "ana_L3", "sim_L3",
                     "ana_L5", "sim_L5"});
  for (double fraction : bench::compromise_sweep()) {
    table.new_row();
    table.cell(fraction, 2);
    for (std::size_t l : copies) {
      auto cfg = base;
      cfg.copies = l;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_anonymity.mean());
      table.cell(r.sim_anonymity.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
