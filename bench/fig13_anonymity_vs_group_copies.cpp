// Figure 13: path anonymity w.r.t. group size for L = 1 and L = 3 copies
// at a fixed 10% compromised fraction (K = 3).
// Paper claim: analysis and simulation are very close across group sizes;
// multi-copy anonymity stays below single-copy at every g.
#include <iostream>

#include "common/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.ttl = 1e6;
  base.compromise_fraction = 0.10;
  bench::print_header("Figure 13",
                      "Path anonymity w.r.t. group size (multi-copy)",
                      "n=100, K=3, c/n=10%, L in {1,3}", base);

  util::Table table({"group_size", "ana_L1", "sim_L1", "ana_L3", "sim_L3"});
  for (std::size_t g = 1; g <= 10; ++g) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(g));
    for (std::size_t l : {1u, 3u}) {
      auto cfg = base;
      cfg.group_size = g;
      cfg.copies = l;
      auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
      table.cell(r.ana_anonymity.mean());
      table.cell(r.sim_anonymity.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
