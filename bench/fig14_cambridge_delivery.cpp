// Figure 14: delivery rate w.r.t. deadline (seconds) on the Cambridge-like
// trace (12 nodes, dense business-hour contacts; stands in for CRAWDAD
// cambridge/haggle Experiment 2 — see DESIGN.md §4).
// Configuration as in the paper: K = 3, g = 1, L = 1.
// Paper claim: the trace is dense, so delivery reaches ~100% within about
// 1800 s of business time; the trained analysis shows the same trend.
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 1;
  base.num_relays = 3;
  base.copies = 1;
  bench::print_header("Figure 14", "Delivery rate w.r.t. deadline (Cambridge)",
                      "12 nodes, K=3, g=1, L=1, synthetic Cambridge-like trace",
                      base);

  auto trace = trace::make_cambridge_like(base.seed);
  util::Table table({"deadline_sec", "ana_L1", "sim_L1"});
  for (double deadline : {120.0, 300.0, 600.0, 900.0, 1200.0, 1800.0, 2700.0,
                          3600.0, 7200.0}) {
    auto cfg = base;
    cfg.ttl = deadline;
    auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    table.cell(r.ana_delivery.mean());
    table.cell(r.sim_delivered.mean());
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
