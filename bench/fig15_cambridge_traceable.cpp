// Figure 15: traceable rate w.r.t. % of compromised nodes on the
// Cambridge-like trace (K = 3 onion relays).
// Paper claim: the security model is independent of inter-contact times,
// so the analysis approximates the trace simulation closely too.
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 1;
  base.num_relays = 3;
  base.copies = 1;
  base.ttl = 5 * 86400.0;  // whole trace: measure on delivered paths
  bench::print_header("Figure 15",
                      "Traceable rate w.r.t. compromised rate (Cambridge)",
                      "12 nodes, K=3, g=1, L=1", base);

  auto trace = trace::make_cambridge_like(base.seed);
  util::Table table({"compromised", "paper_K3", "exact_K3", "sim_K3"});
  for (double fraction : bench::compromise_sweep()) {
    auto cfg = base;
    cfg.compromise_fraction = fraction;
    auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
    table.new_row();
    table.cell(fraction, 2);
    table.cell(r.ana_traceable_paper.mean());
    table.cell(r.ana_traceable_exact.mean());
    table.cell(r.sim_traceable.mean());
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
