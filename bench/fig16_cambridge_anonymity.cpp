// Figure 16: path anonymity w.r.t. % of compromised nodes on the
// Cambridge-like trace (K = 3, g = 1, L = 1).
// Paper claim: anonymity decreases linearly with the compromised fraction
// and the analysis matches the trace simulation closely (the metric is
// independent of inter-meeting times).
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 1;
  base.num_relays = 3;
  base.copies = 1;
  base.ttl = 5 * 86400.0;
  bench::print_header("Figure 16",
                      "Path anonymity w.r.t. compromised rate (Cambridge)",
                      "12 nodes, K=3, g=1, L=1", base);

  auto trace = trace::make_cambridge_like(base.seed);
  util::Table table({"compromised", "ana_L1", "sim_L1"});
  for (double fraction : bench::compromise_sweep()) {
    auto cfg = base;
    cfg.compromise_fraction = fraction;
    auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
    table.new_row();
    table.cell(fraction, 2);
    table.cell(r.ana_anonymity.mean());
    table.cell(r.sim_anonymity.mean());
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
