// Figure 17: delivery rate w.r.t. deadline (log-scale seconds) on the
// Infocom'05-like trace (41 nodes, session-structured contacts; stands in
// for CRAWDAD cambridge/haggle Experiment 3 — see DESIGN.md §4).
// Configuration: K = 3, g = 5, L in {1, 3, 5}.
// Paper claims: (a) delivery plateaus across contact gaps (the model does
// not know about off-hours, so it overshoots there but keeps the trend for
// L = 1); (b) extra copies gain little — path diversity through onion
// groups is contact-limited.
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 5;
  base.num_relays = 3;
  bench::print_header("Figure 17",
                      "Delivery rate w.r.t. deadline (Infocom'05, log scale)",
                      "41 nodes, K=3, g=5, L in {1,3,5}", base);

  auto trace = trace::make_infocom_like(base.seed);
  const std::vector<std::size_t> copies = {1, 3, 5};
  util::Table table({"deadline_sec", "ana_L1", "sim_L1", "ana_L3", "sim_L3",
                     "ana_L5", "sim_L5"});
  for (double deadline : {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
                          262144.0}) {
    table.new_row();
    table.cell(static_cast<std::int64_t>(deadline));
    for (std::size_t l : copies) {
      auto cfg = base;
      cfg.copies = l;
      cfg.ttl = deadline;
      auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
      table.cell(r.ana_delivery.mean());
      table.cell(r.sim_delivered.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
