// Figure 18: traceable rate w.r.t. % of compromised nodes on the
// Infocom'05-like trace (K = 3).
// Paper claim: the difference between analysis and simulation stays within
// a few percent — the traceable-rate model depends only on K and c/n.
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 5;
  base.num_relays = 3;
  base.copies = 1;
  base.ttl = 3 * 86400.0;  // whole trace: measure on delivered paths
  bench::print_header("Figure 18",
                      "Traceable rate w.r.t. compromised rate (Infocom'05)",
                      "41 nodes, K=3, g=5, L=1", base);

  auto trace = trace::make_infocom_like(base.seed);
  util::Table table({"compromised", "paper_K3", "exact_K3", "sim_K3"});
  for (double fraction : bench::compromise_sweep()) {
    auto cfg = base;
    cfg.compromise_fraction = fraction;
    auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
    table.new_row();
    table.cell(fraction, 2);
    table.cell(r.ana_traceable_paper.mean());
    table.cell(r.ana_traceable_exact.mean());
    table.cell(r.sim_traceable.mean());
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
