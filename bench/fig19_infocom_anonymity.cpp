// Figure 19: path anonymity w.r.t. % of compromised nodes on the
// Infocom'05-like trace for L in {1, 3, 5} (K = 3, g = 5).
// Paper claims: L = 1 matches the model almost perfectly; L = 3 matches up
// to ~30% compromised; L = 5 sits only slightly below L = 3 because copies
// tend to traverse the same relays in a contact-limited trace.
#include <iostream>

#include "common/bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  base.group_size = 5;
  base.num_relays = 3;
  base.ttl = 3 * 86400.0;
  bench::print_header("Figure 19",
                      "Path anonymity w.r.t. compromised rate (Infocom'05)",
                      "41 nodes, K=3, g=5, L in {1,3,5}", base);

  auto trace = trace::make_infocom_like(base.seed);
  const std::vector<std::size_t> copies = {1, 3, 5};
  util::Table table({"compromised", "ana_L1", "sim_L1", "ana_L3", "sim_L3",
                     "ana_L5", "sim_L5"});
  for (double fraction : bench::compromise_sweep()) {
    table.new_row();
    table.cell(fraction, 2);
    for (std::size_t l : copies) {
      auto cfg = base;
      cfg.copies = l;
      cfg.compromise_fraction = fraction;
      auto r = bench::run_experiment(cfg, core::TraceScenario{&trace});
      table.cell(r.ana_anonymity.mean());
      table.cell(r.sim_anonymity.mean());
    }
  }
  table.print(std::cout);
  bench::finish(base, args, timer);
  return 0;
}
