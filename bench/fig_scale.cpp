// Scale-out sweep: throughput and memory of the sparse contact backend.
//
// Not a paper figure — the paper stops at n = 100 (Table II). This bench
// demonstrates the scale regime the sparse backend unlocks: community
// contact graphs at n = 10^3..10^5 (pass --n-list to push to 10^6),
// reporting per-point
//   * edges           undirected contact-pair count of a representative
//                     graph realization
//   * bytes_per_node  CSR bytes / n for that realization (O(degree), not
//                     O(n) — the number that makes million-node graphs fit)
//   * build_s         seconds to generate + build that realization
//   * wall_s          experiment wall time (cfg.runs protocol runs)
//   * knodes_per_s    n * runs / wall_s / 1000 — node-realizations
//                     simulated per second
//   * delivery        simulated delivery rate. Near zero at the defaults:
//                     single-copy onion routing stalls when a holder shares
//                     no contact edge with the next relay group, which is
//                     the norm on sparse community graphs (see
//                     ablation_sparse_graph). Pass --L=8 --K=1 for a
//                     delivery-oriented sweep.
//
// Flags (besides the common ones): --n-list=1000,10000,100000
// --avg-degree=12 --communities=16 --group-shards=64
// --max-bytes-per-node=B (exit 1 if any point exceeds B — the CI memory
// bound).
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "graph/sparse_contact_graph.hpp"
#include "metrics/writer.hpp"

namespace {

std::vector<std::size_t> parse_n_list(const std::string& spec) {
  std::vector<std::size_t> ns;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (tok.empty()) continue;
    ns.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }
  if (ns.empty()) {
    throw std::invalid_argument("fig_scale: --n-list must name at least one n");
  }
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odtn;
  util::Args args(argc, argv);
  bench::WallTimer timer;
  auto base = bench::base_config(args);
  if (!args.has("runs")) base.runs = 8;  // big-n points; keep the sweep fast
  base.backend = core::ContactBackend::kSparse;
  if (base.avg_degree == 0) {
    base.avg_degree = static_cast<std::size_t>(args.get_int("avg-degree", 12));
  }
  if (base.communities == 0) {
    base.communities = static_cast<std::size_t>(args.get_int("communities", 16));
  }
  if (base.group_shards == 0) {
    base.group_shards =
        static_cast<std::size_t>(args.get_int("group-shards", 64));
  }
  base.group_size = static_cast<std::size_t>(
      args.get_int("g", static_cast<std::int64_t>(base.group_size)));
  base.num_relays = static_cast<std::size_t>(
      args.get_int("K", static_cast<std::int64_t>(base.num_relays)));
  base.copies = static_cast<std::size_t>(
      args.get_int("L", static_cast<std::int64_t>(base.copies)));
  base.ttl = args.get_double("T", base.ttl);
  auto ns = parse_n_list(args.get("n-list", "1000,10000,100000"));
  double max_bytes_per_node = args.get_double("max-bytes-per-node", 0.0);

  std::ostringstream fixed;
  fixed << "sparse backend, avg_degree=" << base.avg_degree
        << ", communities=" << base.communities
        << ", group_shards=" << base.group_shards << "; x = n";
  bench::print_header("Scale", "Sparse-backend scale-out sweep", fixed.str(),
                      base);

  util::Table table({"n", "edges", "bytes_per_node", "build_s", "wall_s",
                     "knodes_per_s", "delivery"});
  double last_bytes_per_node = 0.0;
  double last_knodes_per_s = 0.0;
  bool bound_ok = true;
  for (std::size_t n : ns) {
    // One representative realization for the memory column (the experiment
    // draws its own per-run graphs from the same generator and seed stream).
    bench::WallTimer build_timer;
    // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
    // so published figure/ablation tables stay pinned to their historical
    // sequences
    util::Rng grng(base.seed);
    auto g = graph::sparse_community_contact_graph(
        n, base.avg_degree, base.communities, grng, base.min_ict, base.max_ict);
    double build_s = build_timer.seconds();
    double bytes_per_node =
        static_cast<double>(g.memory_bytes()) / static_cast<double>(n);

    auto cfg = base;
    cfg.nodes = n;
    bench::WallTimer point_timer;
    auto r = bench::run_experiment(cfg, core::RandomGraphScenario{});
    double wall = point_timer.seconds();
    double knodes_per_s =
        wall > 0.0 ? static_cast<double>(n) * static_cast<double>(cfg.runs) /
                         wall / 1000.0
                   : 0.0;

    table.new_row();
    table.cell(static_cast<std::int64_t>(n));
    table.cell(static_cast<std::int64_t>(g.edge_count()));
    table.cell(bytes_per_node, 1);
    table.cell(build_s);
    table.cell(wall);
    table.cell(knodes_per_s, 1);
    table.cell(r.sim_delivered.mean());

    last_bytes_per_node = bytes_per_node;
    last_knodes_per_s = knodes_per_s;
    if (max_bytes_per_node > 0.0 && bytes_per_node > max_bytes_per_node) {
      bound_ok = false;
    }
  }
  table.print(std::cout);
  std::cout << "# bytes_per_node is O(avg_degree) — independent of n — so "
               "the contact structure\n# for n = 10^6 nodes fits in a few "
               "hundred MB where the dense graph needs 4 TB.\n";

  std::ostringstream extra;
  extra << "\"max_n\":" << ns.back()
        << ",\"avg_degree\":" << base.avg_degree
        << ",\"bytes_per_node\":" << metrics::format_double(last_bytes_per_node)
        << ",\"knodes_per_s\":" << metrics::format_double(last_knodes_per_s);
  bench::finish(base, args, timer, extra.str());
  if (!bound_ok) {
    std::cerr << "fig_scale: bytes_per_node exceeded --max-bytes-per-node="
              << max_bytes_per_node << "\n";
    return 1;
  }
  return 0;
}
