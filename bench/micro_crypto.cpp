// Micro-benchmarks (google-benchmark) for the crypto substrate: the
// per-forward cost a deployment would actually pay.
//
// Driver flags (--json / --baseline / --max-regression-pct): see
// bench_gate.hpp — the shared median-capture + regression-gate driver.
#include <benchmark/benchmark.h>

#include "bench_gate.hpp"

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "util/rng.hpp"

namespace {

using namespace odtn;

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  util::Bytes key(32, 1);
  util::Bytes data(1024, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_ChaCha20(benchmark::State& state) {
  util::Bytes key(32, 1), nonce(12, 2);
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xef);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::chacha20_xor(key, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSealOpen(benchmark::State& state) {
  util::Bytes key(32, 1), nonce(12, 2), aad;
  util::Bytes data(1024, 0x42);
  for (auto _ : state) {
    auto sealed = crypto::aead_seal(key, nonce, aad, data);
    benchmark::DoNotOptimize(crypto::aead_open(key, nonce, aad, sealed));
  }
}
BENCHMARK(BM_AeadSealOpen);

void BM_X25519(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(1);
  auto a = crypto::generate_keypair(rng);
  auto b = crypto::generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::shared_secret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519);

void BM_Drbg(benchmark::State& state) {
  crypto::Drbg drbg(std::uint64_t{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(64));
  }
}
BENCHMARK(BM_Drbg);

void BM_OnionBuild(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  crypto::Drbg drbg(std::uint64_t{9});
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    route.push_back(static_cast<GroupId>(i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.build(payload, 99, route, keys, drbg));
  }
}
BENCHMARK(BM_OnionBuild)->Arg(3)->Arg(5)->Arg(10);

void BM_OnionPeel(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  crypto::Drbg drbg(std::uint64_t{9});
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route = {1, 2, 3};
  util::Bytes wire = codec.build(payload, 99, route, keys, drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.peel(wire, keys.group_key(1), drbg));
  }
}
BENCHMARK(BM_OnionPeel);

}  // namespace

int main(int argc, char** argv) {
  return odtn::bench_gate::run(argc, argv, "micro_crypto");
}
