// Micro-benchmarks (google-benchmark) for the crypto substrate: the
// per-forward cost a deployment would actually pay.
//
// Driver flags (--json / --baseline / --max-regression-pct): see
// bench_gate.hpp — the shared median-capture + regression-gate driver.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_gate.hpp"

#include "circuit/cell.hpp"
#include "circuit/circuit_manager.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "util/rng.hpp"

// Global allocation counter: lets the cell/peel benches assert (and
// record) that the steady-state _into paths perform zero heap allocations
// (the PR-4 contract, extended to the circuit layer).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace odtn;

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  util::Bytes key(32, 1);
  util::Bytes data(1024, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_ChaCha20(benchmark::State& state) {
  util::Bytes key(32, 1), nonce(12, 2);
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xef);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::chacha20_xor(key, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSealOpen(benchmark::State& state) {
  util::Bytes key(32, 1), nonce(12, 2), aad;
  util::Bytes data(1024, 0x42);
  for (auto _ : state) {
    auto sealed = crypto::aead_seal(key, nonce, aad, data);
    benchmark::DoNotOptimize(crypto::aead_open(key, nonce, aad, sealed));
  }
}
BENCHMARK(BM_AeadSealOpen);

void BM_X25519(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(1);
  auto a = crypto::generate_keypair(rng);
  auto b = crypto::generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::shared_secret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519);

void BM_Drbg(benchmark::State& state) {
  crypto::Drbg drbg(std::uint64_t{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(64));
  }
}
BENCHMARK(BM_Drbg);

void BM_OnionBuild(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  crypto::Drbg drbg(std::uint64_t{9});
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    route.push_back(static_cast<GroupId>(i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.build(payload, 99, route, keys, drbg));
  }
}
BENCHMARK(BM_OnionBuild)->Arg(3)->Arg(5)->Arg(10);

void BM_OnionPeel(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  crypto::Drbg drbg(std::uint64_t{9});
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route = {1, 2, 3};
  util::Bytes wire = codec.build(payload, 99, route, keys, drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.peel(wire, keys.group_key(1), drbg));
  }
}
BENCHMARK(BM_OnionPeel);

void BM_OnionPeelView(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  crypto::Drbg drbg(std::uint64_t{9});
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route = {1, 2, 3};
  util::Bytes wire = codec.build(payload, 99, route, keys, drbg);
  onion::PeelScratch scratch;
  // Warm the scratch buffers so the loop measures — and the counter
  // asserts — the steady-state zero-allocation path.
  benchmark::DoNotOptimize(
      codec.peel_view(wire, keys.group_key(1), drbg, scratch));
  const std::uint64_t allocs_before = g_alloc_count.load();
  std::uint64_t peels = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.peel_view(wire, keys.group_key(1), drbg, scratch));
    ++peels;
  }
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  state.counters["allocs_per_peel"] =
      peels == 0 ? 0.0
                 : static_cast<double>(allocs) / static_cast<double>(peels);
}
BENCHMARK(BM_OnionPeelView);

void BM_CellSeal(benchmark::State& state) {
  const auto cell_size = static_cast<std::size_t>(state.range(0));
  circuit::CellCodec cells(cell_size);
  crypto::Drbg drbg(std::uint64_t{11});
  util::Bytes key(32, 7);
  util::Bytes payload(cells.max_payload(), 0x5a);
  util::Bytes out;
  circuit::CellScratch scratch;
  // Warm the scratch buffers (same zero-allocation assertion as above).
  cells.seal_into(1, circuit::CellCommand::kRelay, payload, key, drbg, out,
                  scratch);
  const std::uint64_t allocs_before = g_alloc_count.load();
  std::uint64_t sealed = 0;
  for (auto _ : state) {
    cells.seal_into(1, circuit::CellCommand::kRelay, payload, key, drbg, out,
                    scratch);
    benchmark::DoNotOptimize(out.data());
    ++sealed;
  }
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  state.counters["allocs_per_cell"] =
      sealed == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(sealed);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cell_size));
}
BENCHMARK(BM_CellSeal)->Arg(512)->Arg(4096);

// One full circuit lifecycle — open, three extends, final delivery — with
// the manager (and its circuit table) rebuilt per iteration so memory
// stays bounded. Arg 0 = one-blob secure links, 1 = wire cells.
void BM_CircuitExtend(benchmark::State& state) {
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 1);
  onion::OnionCodec codec;
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(13);
  circuit::CircuitContext cctx;
  cctx.keys = &keys;
  cctx.codec = &codec;
  cctx.crypto = true;
  cctx.wire = state.range(0) != 0;
  util::Bytes payload(200, 0x11);
  std::vector<GroupId> route = {1, 2, 3};
  using Expect = circuit::CircuitManager::Expect;
  for (auto _ : state) {
    circuit::CircuitManager cm(cctx, rng);
    circuit::CircuitId id = cm.open(payload, 99, route);
    cm.extend(id, 0, 5, keys.group_key(1), Expect::relay_to(2));
    cm.extend(id, 5, 9, keys.group_key(2), Expect::relay_to(3));
    cm.extend(id, 9, 20, keys.group_key(3), Expect::deliver_to(99));
    benchmark::DoNotOptimize(cm.deliver(id, 20, 99, payload));
  }
}
BENCHMARK(BM_CircuitExtend)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return odtn::bench_gate::run(argc, argv, "micro_crypto");
}
