// Micro-benchmarks (google-benchmark) for the simulation engine and the
// end-to-end protocol step: how many experiment runs per second the figure
// benches can afford.
//
// Driver flags (--json / --baseline / --max-regression-pct): see
// bench_gate.hpp — the shared median-capture + regression-gate driver.
#include <benchmark/benchmark.h>

#include "bench_gate.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "recovery/recovery.hpp"
#include "routing/baselines.hpp"
#include "routing/onion_routing.hpp"
#include "sim/contact_model.hpp"
#include "sim/network_sim.hpp"
#include "trace/synthetic.hpp"
#include "traffic/traffic.hpp"

// Global allocation counter: lets the contact-query benches assert (and
// record) that the steady-state query path performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace odtn;

void BM_RandomGraphGeneration(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(1);
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::random_contact_graph(n, rng));
  }
}
BENCHMARK(BM_RandomGraphGeneration)->Arg(100)->Arg(500);

void BM_PoissonFirstContact(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(2);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel model(g, rng);
  std::vector<NodeId> targets;
  for (NodeId v = 1; v <= 5; ++v) targets.push_back(v);
  const NodeId holder = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.first_cross_contact(
        std::span<const NodeId>(&holder, 1), targets, 0.0, 1e9));
  }
}
BENCHMARK(BM_PoissonFirstContact);

// The prepared-plan primitive on its own: one Exp(total) draw plus one
// binary-search pick per query, zero allocations (recorded as the
// allocs_per_query counter — the acceptance gate for the plan API).
void BM_FirstCrossContact(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(2);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel model(g, rng);
  groups::GroupDirectory dir(100, 5);
  std::vector<NodeId> from;
  for (NodeId m : dir.members(1)) from.push_back(m);
  std::vector<NodeId> to;
  for (NodeId m : dir.members(2)) to.push_back(m);
  sim::ContactQuery plan = model.prepare(from, to);

  const std::uint64_t allocs_before = g_alloc_count.load();
  std::uint64_t queries = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.first_cross_contact(plan, 0.0, 1e9));
    ++queries;
  }
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  state.counters["allocs_per_query"] =
      queries == 0 ? 0.0
                   : static_cast<double>(allocs) / static_cast<double>(queries);
}
BENCHMARK(BM_FirstCrossContact);

// A full onion-hop polling pattern: (re)prepare the holder -> next-group
// plan once, then poll it through a string of fault-retry style queries.
void BM_GroupPolling(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(8);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel model(g, rng);
  groups::GroupDirectory dir(100, 5);
  std::vector<NodeId> targets;
  for (NodeId m : dir.members(3)) targets.push_back(m);
  const NodeId holder = 0;
  sim::ContactQuery plan;

  const std::uint64_t allocs_before = g_alloc_count.load();
  std::uint64_t iters = 0;
  for (auto _ : state) {
    model.prepare(plan, std::span<const NodeId>(&holder, 1), targets);
    Time after = 0.0;
    for (int poll = 0; poll < 16; ++poll) {
      auto c = model.first_cross_contact(plan, after, 1e9);
      if (!c.has_value()) break;
      after = std::nextafter(c->time, kTimeInfinity);
    }
    ++iters;
  }
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  // First iteration's prepare may grow the plan buffers; steady state is 0.
  state.counters["allocs_per_hop"] =
      iters == 0 ? 0.0
                 : static_cast<double>(allocs) / static_cast<double>(iters);
}
BENCHMARK(BM_GroupPolling);

void BM_TraceFirstContact(benchmark::State& state) {
  auto trace = trace::make_infocom_like(1);
  sim::TraceContactModel model(trace);
  std::vector<NodeId> targets = {5, 6, 7, 8, 9};
  const NodeId holder = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.first_cross_contact(
        std::span<const NodeId>(&holder, 1), targets, 40000.0, 3e5));
  }
}
BENCHMARK(BM_TraceFirstContact);

void BM_SingleCopyRoute(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(3);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 3);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::SingleCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_SingleCopyRoute);

void BM_SingleCopyRouteRealCrypto(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(4);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 4);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kReal};
  routing::SingleCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  spec.payload = util::to_bytes("benchmark payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_SingleCopyRouteRealCrypto);

void BM_MultiCopyRoute(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(5);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 5);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::MultiCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  spec.copies = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_MultiCopyRoute)->Arg(1)->Arg(3)->Arg(5);

void BM_EpidemicRoute(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(6);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel contacts(g, rng);
  routing::EpidemicRouting protocol;
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec));
  }
}
BENCHMARK(BM_EpidemicRoute);

void BM_ExperimentRun(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.runs = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Experiment(cfg).run(core::RandomGraphScenario{}));
  }
}
BENCHMARK(BM_ExperimentRun)->Unit(benchmark::kMillisecond);

// Same experiment with metrics collection on: the cost of the per-run
// registries, instrumented protocols, and the ordered metrics fold,
// relative to BM_ExperimentRun (the "disabled" hot path must stay within
// 5% of the pre-metrics baseline; see BENCH_micro_sim.json).
void BM_ExperimentRunMetrics(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.runs = 10;
  cfg.collect_metrics = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Experiment(cfg).run(core::RandomGraphScenario{}));
  }
}
BENCHMARK(BM_ExperimentRunMetrics)->Unit(benchmark::kMillisecond);

// Workload expansion throughput: a mixed Poisson/deterministic/MMPP
// multi-flow TrafficPlan over a 600-unit horizon. Measures the open-loop
// generator alone (sort included) — the fixed cost every loaded run pays
// before the simulator starts.
void BM_TrafficGen(benchmark::State& state) {
  traffic::TrafficConfig config;
  traffic::FlowConfig flow;
  flow.rate = static_cast<double>(state.range(0)) / 3.0;
  flow.arrival = traffic::Arrival::kPoisson;
  config.flows.push_back(flow);
  flow.arrival = traffic::Arrival::kDeterministic;
  flow.priority = 1;
  config.flows.push_back(flow);
  flow.arrival = traffic::Arrival::kMmpp;
  flow.priority = 2;
  config.flows.push_back(flow);
  config.horizon = 600.0;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    traffic::TrafficPlan plan(config, 100, seed++);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_TrafficGen)->Arg(1)->Arg(10);

// One fully loaded network-sim run: Poisson workload with priorities over
// a pre-sampled trace, finite per-contact bandwidth and finite buffers —
// the scheduled (priority-ordered, budgeted) drainage path end to end.
void BM_LoadedSimStep(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream: seeded directly from --seed
  // so published figure/ablation tables stay pinned to their historical
  // sequences
  util::Rng rng(9);
  auto g = graph::random_contact_graph(100, rng);
  auto trace = trace::sample_poisson_trace(g, 2400.0, rng);
  groups::GroupDirectory dir(100, 5, &rng);

  traffic::TrafficConfig workload;
  traffic::FlowConfig flow;
  flow.rate = 0.25;
  flow.ttl = 1800.0;
  workload.flows.push_back(flow);
  flow.priority = 1;
  workload.flows.push_back(flow);
  workload.horizon = 600.0;
  traffic::TrafficPlan plan(workload, 100, rng.next());

  sim::NetworkSimConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.bandwidth.messages_per_contact = 2;
  for (auto _ : state) {
    // odtn-lint: allow(rng) — bench-local stream (same pinned sequence).
    util::Rng run_rng(11);
    benchmark::DoNotOptimize(sim::run_network_sim(
        trace, dir, plan.specs(), plan.priorities(), cfg, run_rng));
  }
}
BENCHMARK(BM_LoadedSimStep)->Unit(benchmark::kMillisecond);

// BM_LoadedSimStep with the full recovery stack on (ACK vaccines,
// jittered retransmission, suspicion-biased retries, overload shedding) —
// the cost of the reliability layer on the loaded drainage path.
void BM_RecoveryStep(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream (same pinned sequence as
  // BM_LoadedSimStep).
  util::Rng rng(9);
  auto g = graph::random_contact_graph(100, rng);
  auto trace = trace::sample_poisson_trace(g, 2400.0, rng);
  groups::GroupDirectory dir(100, 5, &rng);

  traffic::TrafficConfig workload;
  traffic::FlowConfig flow;
  flow.rate = 0.25;
  flow.ttl = 1800.0;
  workload.flows.push_back(flow);
  flow.priority = 1;
  workload.flows.push_back(flow);
  workload.horizon = 600.0;
  traffic::TrafficPlan plan(workload, 100, rng.next());

  recovery::RecoveryConfig rc;
  rc.acks = true;
  rc.retx_timeout = 150.0;
  rc.suspicion_alpha = 0.3;
  rc.shed_occupancy = 0.9;
  rc.shed_saturation = 0.75;
  sim::NetworkSimConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.bandwidth.messages_per_contact = 2;
  cfg.recovery = &rc;
  cfg.recovery_seed = 13;
  for (auto _ : state) {
    // odtn-lint: allow(rng) — bench-local stream (same pinned sequence).
    util::Rng run_rng(11);
    recovery::SuspicionTracker tracker(rc.suspicion_alpha,
                                       rc.suspicion_threshold);
    cfg.suspicion = &tracker;
    benchmark::DoNotOptimize(sim::run_network_sim(
        trace, dir, plan.specs(), plan.priorities(), cfg, run_rng));
  }
}
BENCHMARK(BM_RecoveryStep)->Unit(benchmark::kMillisecond);

// BM_LoadedSimStep with wire-accurate cell accounting on: each transfer
// charges its cell cost against the (cell-denominated) contact budget —
// the cost of the circuit layer on the loaded drainage path.
void BM_WireSimStep(benchmark::State& state) {
  // odtn-lint: allow(rng) — bench-local stream (same pinned sequence as
  // BM_LoadedSimStep).
  util::Rng rng(9);
  auto g = graph::random_contact_graph(100, rng);
  auto trace = trace::sample_poisson_trace(g, 2400.0, rng);
  groups::GroupDirectory dir(100, 5, &rng);

  traffic::TrafficConfig workload;
  traffic::FlowConfig flow;
  flow.rate = 0.25;
  flow.ttl = 1800.0;
  workload.flows.push_back(flow);
  flow.priority = 1;
  workload.flows.push_back(flow);
  workload.horizon = 600.0;
  traffic::TrafficPlan plan(workload, 100, rng.next());

  sim::NetworkSimConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.bandwidth.messages_per_contact = 4;  // cells, not messages
  cfg.cells_per_message = 2;
  cfg.cell_size = 512;
  for (auto _ : state) {
    // odtn-lint: allow(rng) — bench-local stream (same pinned sequence).
    util::Rng run_rng(11);
    benchmark::DoNotOptimize(sim::run_network_sim(
        trace, dir, plan.specs(), plan.priorities(), cfg, run_rng));
  }
}
BENCHMARK(BM_WireSimStep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return odtn::bench_gate::run(argc, argv, "micro_sim");
}
