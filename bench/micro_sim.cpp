// Micro-benchmarks (google-benchmark) for the simulation engine and the
// end-to-end protocol step: how many experiment runs per second the figure
// benches can afford.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "routing/baselines.hpp"
#include "routing/onion_routing.hpp"
#include "sim/contact_model.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace odtn;

void BM_RandomGraphGeneration(benchmark::State& state) {
  util::Rng rng(1);
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::random_contact_graph(n, rng));
  }
}
BENCHMARK(BM_RandomGraphGeneration)->Arg(100)->Arg(500);

void BM_PoissonFirstContact(benchmark::State& state) {
  util::Rng rng(2);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel model(g, rng);
  std::vector<NodeId> targets;
  for (NodeId v = 1; v <= 5; ++v) targets.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.first_contact(0, targets, 0.0, 1e9));
  }
}
BENCHMARK(BM_PoissonFirstContact);

void BM_TraceFirstContact(benchmark::State& state) {
  auto trace = trace::make_infocom_like(1);
  sim::TraceContactModel model(trace);
  std::vector<NodeId> targets = {5, 6, 7, 8, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.first_contact(0, targets, 40000.0, 3e5));
  }
}
BENCHMARK(BM_TraceFirstContact);

void BM_SingleCopyRoute(benchmark::State& state) {
  util::Rng rng(3);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 3);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::SingleCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_SingleCopyRoute);

void BM_SingleCopyRouteRealCrypto(benchmark::State& state) {
  util::Rng rng(4);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 4);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kReal};
  routing::SingleCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  spec.payload = util::to_bytes("benchmark payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_SingleCopyRouteRealCrypto);

void BM_MultiCopyRoute(benchmark::State& state) {
  util::Rng rng(5);
  auto g = graph::random_contact_graph(100, rng);
  groups::GroupDirectory dir(100, 5);
  groups::KeyManager keys(dir, 5);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(g, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::MultiCopyOnionRouting protocol(ctx);
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  spec.num_relays = 3;
  spec.copies = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec, rng));
  }
}
BENCHMARK(BM_MultiCopyRoute)->Arg(1)->Arg(3)->Arg(5);

void BM_EpidemicRoute(benchmark::State& state) {
  util::Rng rng(6);
  auto g = graph::random_contact_graph(100, rng);
  sim::PoissonContactModel contacts(g, rng);
  routing::EpidemicRouting protocol;
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 99;
  spec.ttl = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.route(contacts, spec));
  }
}
BENCHMARK(BM_EpidemicRoute);

void BM_ExperimentRun(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.runs = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Experiment(cfg).run(core::RandomGraphScenario{}));
  }
}
BENCHMARK(BM_ExperimentRun)->Unit(benchmark::kMillisecond);

// Same experiment with metrics collection on: the cost of the per-run
// registries, instrumented protocols, and the ordered metrics fold,
// relative to BM_ExperimentRun (the "disabled" hot path must stay within
// 5% of the pre-metrics baseline; see BENCH_micro_sim.json).
void BM_ExperimentRunMetrics(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.runs = 10;
  cfg.collect_metrics = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Experiment(cfg).run(core::RandomGraphScenario{}));
  }
}
BENCHMARK(BM_ExperimentRunMetrics)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
