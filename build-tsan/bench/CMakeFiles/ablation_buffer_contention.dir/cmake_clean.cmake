file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_contention.dir/ablation_buffer_contention.cpp.o"
  "CMakeFiles/ablation_buffer_contention.dir/ablation_buffer_contention.cpp.o.d"
  "ablation_buffer_contention"
  "ablation_buffer_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
