# Empty dependencies file for ablation_buffer_contention.
# This may be replaced when dependencies are built.
