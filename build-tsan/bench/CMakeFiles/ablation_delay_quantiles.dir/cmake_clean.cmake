file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_quantiles.dir/ablation_delay_quantiles.cpp.o"
  "CMakeFiles/ablation_delay_quantiles.dir/ablation_delay_quantiles.cpp.o.d"
  "ablation_delay_quantiles"
  "ablation_delay_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
