# Empty compiler generated dependencies file for ablation_delay_quantiles.
# This may be replaced when dependencies are built.
