file(REMOVE_RECURSE
  "CMakeFiles/ablation_dest_group.dir/ablation_dest_group.cpp.o"
  "CMakeFiles/ablation_dest_group.dir/ablation_dest_group.cpp.o.d"
  "ablation_dest_group"
  "ablation_dest_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dest_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
