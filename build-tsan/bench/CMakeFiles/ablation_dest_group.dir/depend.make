# Empty dependencies file for ablation_dest_group.
# This may be replaced when dependencies are built.
