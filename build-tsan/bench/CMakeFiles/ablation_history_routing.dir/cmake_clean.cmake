file(REMOVE_RECURSE
  "CMakeFiles/ablation_history_routing.dir/ablation_history_routing.cpp.o"
  "CMakeFiles/ablation_history_routing.dir/ablation_history_routing.cpp.o.d"
  "ablation_history_routing"
  "ablation_history_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_history_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
