# Empty dependencies file for ablation_history_routing.
# This may be replaced when dependencies are built.
