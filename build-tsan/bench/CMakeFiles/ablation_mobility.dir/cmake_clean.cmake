file(REMOVE_RECURSE
  "CMakeFiles/ablation_mobility.dir/ablation_mobility.cpp.o"
  "CMakeFiles/ablation_mobility.dir/ablation_mobility.cpp.o.d"
  "ablation_mobility"
  "ablation_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
