# Empty compiler generated dependencies file for ablation_mobility.
# This may be replaced when dependencies are built.
