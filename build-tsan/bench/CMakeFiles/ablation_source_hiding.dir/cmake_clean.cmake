file(REMOVE_RECURSE
  "CMakeFiles/ablation_source_hiding.dir/ablation_source_hiding.cpp.o"
  "CMakeFiles/ablation_source_hiding.dir/ablation_source_hiding.cpp.o.d"
  "ablation_source_hiding"
  "ablation_source_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
