# Empty dependencies file for ablation_source_hiding.
# This may be replaced when dependencies are built.
