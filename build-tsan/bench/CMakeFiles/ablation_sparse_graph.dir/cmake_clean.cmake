file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_graph.dir/ablation_sparse_graph.cpp.o"
  "CMakeFiles/ablation_sparse_graph.dir/ablation_sparse_graph.cpp.o.d"
  "ablation_sparse_graph"
  "ablation_sparse_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
