# Empty compiler generated dependencies file for ablation_sparse_graph.
# This may be replaced when dependencies are built.
