file(REMOVE_RECURSE
  "CMakeFiles/ablation_spray_mode.dir/ablation_spray_mode.cpp.o"
  "CMakeFiles/ablation_spray_mode.dir/ablation_spray_mode.cpp.o.d"
  "ablation_spray_mode"
  "ablation_spray_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spray_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
