# Empty compiler generated dependencies file for ablation_spray_mode.
# This may be replaced when dependencies are built.
