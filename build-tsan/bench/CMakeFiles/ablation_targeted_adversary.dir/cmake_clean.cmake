file(REMOVE_RECURSE
  "CMakeFiles/ablation_targeted_adversary.dir/ablation_targeted_adversary.cpp.o"
  "CMakeFiles/ablation_targeted_adversary.dir/ablation_targeted_adversary.cpp.o.d"
  "ablation_targeted_adversary"
  "ablation_targeted_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_targeted_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
