# Empty compiler generated dependencies file for ablation_targeted_adversary.
# This may be replaced when dependencies are built.
