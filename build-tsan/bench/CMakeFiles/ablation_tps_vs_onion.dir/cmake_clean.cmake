file(REMOVE_RECURSE
  "CMakeFiles/ablation_tps_vs_onion.dir/ablation_tps_vs_onion.cpp.o"
  "CMakeFiles/ablation_tps_vs_onion.dir/ablation_tps_vs_onion.cpp.o.d"
  "ablation_tps_vs_onion"
  "ablation_tps_vs_onion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tps_vs_onion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
