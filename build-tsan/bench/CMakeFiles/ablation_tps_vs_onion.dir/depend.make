# Empty dependencies file for ablation_tps_vs_onion.
# This may be replaced when dependencies are built.
