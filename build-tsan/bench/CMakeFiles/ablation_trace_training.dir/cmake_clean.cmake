file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_training.dir/ablation_trace_training.cpp.o"
  "CMakeFiles/ablation_trace_training.dir/ablation_trace_training.cpp.o.d"
  "ablation_trace_training"
  "ablation_trace_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
