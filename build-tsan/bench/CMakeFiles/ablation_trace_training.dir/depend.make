# Empty dependencies file for ablation_trace_training.
# This may be replaced when dependencies are built.
