file(REMOVE_RECURSE
  "CMakeFiles/fig04_delivery_vs_deadline_group.dir/fig04_delivery_vs_deadline_group.cpp.o"
  "CMakeFiles/fig04_delivery_vs_deadline_group.dir/fig04_delivery_vs_deadline_group.cpp.o.d"
  "fig04_delivery_vs_deadline_group"
  "fig04_delivery_vs_deadline_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_delivery_vs_deadline_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
