# Empty dependencies file for fig04_delivery_vs_deadline_group.
# This may be replaced when dependencies are built.
