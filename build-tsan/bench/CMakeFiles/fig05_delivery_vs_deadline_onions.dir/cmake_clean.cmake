file(REMOVE_RECURSE
  "CMakeFiles/fig05_delivery_vs_deadline_onions.dir/fig05_delivery_vs_deadline_onions.cpp.o"
  "CMakeFiles/fig05_delivery_vs_deadline_onions.dir/fig05_delivery_vs_deadline_onions.cpp.o.d"
  "fig05_delivery_vs_deadline_onions"
  "fig05_delivery_vs_deadline_onions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_delivery_vs_deadline_onions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
