# Empty compiler generated dependencies file for fig05_delivery_vs_deadline_onions.
# This may be replaced when dependencies are built.
