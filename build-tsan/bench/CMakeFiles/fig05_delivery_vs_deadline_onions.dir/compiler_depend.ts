# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_delivery_vs_deadline_onions.
