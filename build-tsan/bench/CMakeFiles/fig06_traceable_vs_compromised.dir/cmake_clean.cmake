file(REMOVE_RECURSE
  "CMakeFiles/fig06_traceable_vs_compromised.dir/fig06_traceable_vs_compromised.cpp.o"
  "CMakeFiles/fig06_traceable_vs_compromised.dir/fig06_traceable_vs_compromised.cpp.o.d"
  "fig06_traceable_vs_compromised"
  "fig06_traceable_vs_compromised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_traceable_vs_compromised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
