# Empty dependencies file for fig06_traceable_vs_compromised.
# This may be replaced when dependencies are built.
