file(REMOVE_RECURSE
  "CMakeFiles/fig07_traceable_vs_onions.dir/fig07_traceable_vs_onions.cpp.o"
  "CMakeFiles/fig07_traceable_vs_onions.dir/fig07_traceable_vs_onions.cpp.o.d"
  "fig07_traceable_vs_onions"
  "fig07_traceable_vs_onions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_traceable_vs_onions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
