# Empty dependencies file for fig07_traceable_vs_onions.
# This may be replaced when dependencies are built.
