file(REMOVE_RECURSE
  "CMakeFiles/fig08_anonymity_vs_compromised.dir/fig08_anonymity_vs_compromised.cpp.o"
  "CMakeFiles/fig08_anonymity_vs_compromised.dir/fig08_anonymity_vs_compromised.cpp.o.d"
  "fig08_anonymity_vs_compromised"
  "fig08_anonymity_vs_compromised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_anonymity_vs_compromised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
