# Empty dependencies file for fig08_anonymity_vs_compromised.
# This may be replaced when dependencies are built.
