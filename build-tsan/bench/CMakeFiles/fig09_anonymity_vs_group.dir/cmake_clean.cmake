file(REMOVE_RECURSE
  "CMakeFiles/fig09_anonymity_vs_group.dir/fig09_anonymity_vs_group.cpp.o"
  "CMakeFiles/fig09_anonymity_vs_group.dir/fig09_anonymity_vs_group.cpp.o.d"
  "fig09_anonymity_vs_group"
  "fig09_anonymity_vs_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_anonymity_vs_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
