# Empty compiler generated dependencies file for fig09_anonymity_vs_group.
# This may be replaced when dependencies are built.
