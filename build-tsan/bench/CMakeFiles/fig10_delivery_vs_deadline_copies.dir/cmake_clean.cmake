file(REMOVE_RECURSE
  "CMakeFiles/fig10_delivery_vs_deadline_copies.dir/fig10_delivery_vs_deadline_copies.cpp.o"
  "CMakeFiles/fig10_delivery_vs_deadline_copies.dir/fig10_delivery_vs_deadline_copies.cpp.o.d"
  "fig10_delivery_vs_deadline_copies"
  "fig10_delivery_vs_deadline_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_delivery_vs_deadline_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
