# Empty dependencies file for fig10_delivery_vs_deadline_copies.
# This may be replaced when dependencies are built.
