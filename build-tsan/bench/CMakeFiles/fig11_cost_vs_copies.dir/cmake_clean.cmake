file(REMOVE_RECURSE
  "CMakeFiles/fig11_cost_vs_copies.dir/fig11_cost_vs_copies.cpp.o"
  "CMakeFiles/fig11_cost_vs_copies.dir/fig11_cost_vs_copies.cpp.o.d"
  "fig11_cost_vs_copies"
  "fig11_cost_vs_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cost_vs_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
