# Empty compiler generated dependencies file for fig11_cost_vs_copies.
# This may be replaced when dependencies are built.
