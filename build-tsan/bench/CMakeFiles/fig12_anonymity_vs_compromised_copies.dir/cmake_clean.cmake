file(REMOVE_RECURSE
  "CMakeFiles/fig12_anonymity_vs_compromised_copies.dir/fig12_anonymity_vs_compromised_copies.cpp.o"
  "CMakeFiles/fig12_anonymity_vs_compromised_copies.dir/fig12_anonymity_vs_compromised_copies.cpp.o.d"
  "fig12_anonymity_vs_compromised_copies"
  "fig12_anonymity_vs_compromised_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_anonymity_vs_compromised_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
