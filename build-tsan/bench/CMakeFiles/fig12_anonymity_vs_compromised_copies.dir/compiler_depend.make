# Empty compiler generated dependencies file for fig12_anonymity_vs_compromised_copies.
# This may be replaced when dependencies are built.
