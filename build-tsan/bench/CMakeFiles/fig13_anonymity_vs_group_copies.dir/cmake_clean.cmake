file(REMOVE_RECURSE
  "CMakeFiles/fig13_anonymity_vs_group_copies.dir/fig13_anonymity_vs_group_copies.cpp.o"
  "CMakeFiles/fig13_anonymity_vs_group_copies.dir/fig13_anonymity_vs_group_copies.cpp.o.d"
  "fig13_anonymity_vs_group_copies"
  "fig13_anonymity_vs_group_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_anonymity_vs_group_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
