# Empty compiler generated dependencies file for fig13_anonymity_vs_group_copies.
# This may be replaced when dependencies are built.
