file(REMOVE_RECURSE
  "CMakeFiles/fig14_cambridge_delivery.dir/fig14_cambridge_delivery.cpp.o"
  "CMakeFiles/fig14_cambridge_delivery.dir/fig14_cambridge_delivery.cpp.o.d"
  "fig14_cambridge_delivery"
  "fig14_cambridge_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cambridge_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
