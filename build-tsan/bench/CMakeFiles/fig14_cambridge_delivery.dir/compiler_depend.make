# Empty compiler generated dependencies file for fig14_cambridge_delivery.
# This may be replaced when dependencies are built.
