file(REMOVE_RECURSE
  "CMakeFiles/fig15_cambridge_traceable.dir/fig15_cambridge_traceable.cpp.o"
  "CMakeFiles/fig15_cambridge_traceable.dir/fig15_cambridge_traceable.cpp.o.d"
  "fig15_cambridge_traceable"
  "fig15_cambridge_traceable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cambridge_traceable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
