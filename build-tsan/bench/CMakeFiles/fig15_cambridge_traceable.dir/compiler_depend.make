# Empty compiler generated dependencies file for fig15_cambridge_traceable.
# This may be replaced when dependencies are built.
