file(REMOVE_RECURSE
  "CMakeFiles/fig16_cambridge_anonymity.dir/fig16_cambridge_anonymity.cpp.o"
  "CMakeFiles/fig16_cambridge_anonymity.dir/fig16_cambridge_anonymity.cpp.o.d"
  "fig16_cambridge_anonymity"
  "fig16_cambridge_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cambridge_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
