# Empty compiler generated dependencies file for fig16_cambridge_anonymity.
# This may be replaced when dependencies are built.
