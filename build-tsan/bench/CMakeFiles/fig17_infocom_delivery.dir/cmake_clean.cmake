file(REMOVE_RECURSE
  "CMakeFiles/fig17_infocom_delivery.dir/fig17_infocom_delivery.cpp.o"
  "CMakeFiles/fig17_infocom_delivery.dir/fig17_infocom_delivery.cpp.o.d"
  "fig17_infocom_delivery"
  "fig17_infocom_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_infocom_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
