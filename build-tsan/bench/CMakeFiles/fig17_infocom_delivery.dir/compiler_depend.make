# Empty compiler generated dependencies file for fig17_infocom_delivery.
# This may be replaced when dependencies are built.
