file(REMOVE_RECURSE
  "CMakeFiles/fig18_infocom_traceable.dir/fig18_infocom_traceable.cpp.o"
  "CMakeFiles/fig18_infocom_traceable.dir/fig18_infocom_traceable.cpp.o.d"
  "fig18_infocom_traceable"
  "fig18_infocom_traceable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_infocom_traceable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
