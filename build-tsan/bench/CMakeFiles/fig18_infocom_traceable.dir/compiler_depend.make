# Empty compiler generated dependencies file for fig18_infocom_traceable.
# This may be replaced when dependencies are built.
