file(REMOVE_RECURSE
  "CMakeFiles/fig19_infocom_anonymity.dir/fig19_infocom_anonymity.cpp.o"
  "CMakeFiles/fig19_infocom_anonymity.dir/fig19_infocom_anonymity.cpp.o.d"
  "fig19_infocom_anonymity"
  "fig19_infocom_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_infocom_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
