# Empty compiler generated dependencies file for fig19_infocom_anonymity.
# This may be replaced when dependencies are built.
