file(REMOVE_RECURSE
  "CMakeFiles/odtn_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/odtn_bench_common.dir/common/bench_common.cpp.o.d"
  "libodtn_bench_common.a"
  "libodtn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
