file(REMOVE_RECURSE
  "libodtn_bench_common.a"
)
