# Empty compiler generated dependencies file for odtn_bench_common.
# This may be replaced when dependencies are built.
