file(REMOVE_RECURSE
  "CMakeFiles/key_rotation.dir/key_rotation.cpp.o"
  "CMakeFiles/key_rotation.dir/key_rotation.cpp.o.d"
  "key_rotation"
  "key_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
