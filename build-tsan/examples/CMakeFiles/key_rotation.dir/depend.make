# Empty dependencies file for key_rotation.
# This may be replaced when dependencies are built.
