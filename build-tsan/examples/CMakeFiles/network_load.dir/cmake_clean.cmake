file(REMOVE_RECURSE
  "CMakeFiles/network_load.dir/network_load.cpp.o"
  "CMakeFiles/network_load.dir/network_load.cpp.o.d"
  "network_load"
  "network_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
