# Empty compiler generated dependencies file for network_load.
# This may be replaced when dependencies are built.
