file(REMOVE_RECURSE
  "CMakeFiles/trace_study.dir/trace_study.cpp.o"
  "CMakeFiles/trace_study.dir/trace_study.cpp.o.d"
  "trace_study"
  "trace_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
