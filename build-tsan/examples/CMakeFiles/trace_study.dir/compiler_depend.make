# Empty compiler generated dependencies file for trace_study.
# This may be replaced when dependencies are built.
