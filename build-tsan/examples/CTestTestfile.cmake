# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_battlefield "/root/repo/build-tsan/examples/battlefield")
set_tests_properties(example_battlefield PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_study "/root/repo/build-tsan/examples/trace_study")
set_tests_properties(example_trace_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parameter_study "/root/repo/build-tsan/examples/parameter_study")
set_tests_properties(example_parameter_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_load "/root/repo/build-tsan/examples/network_load")
set_tests_properties(example_network_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_key_rotation "/root/repo/build-tsan/examples/key_rotation")
set_tests_properties(example_key_rotation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;odtn_example;/root/repo/examples/CMakeLists.txt;0;")
