# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("bundle")
subdirs("onion")
subdirs("groups")
subdirs("graph")
subdirs("trace")
subdirs("sim")
subdirs("mobility")
subdirs("routing")
subdirs("adversary")
subdirs("analysis")
subdirs("core")
