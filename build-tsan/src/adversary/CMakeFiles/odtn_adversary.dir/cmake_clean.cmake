file(REMOVE_RECURSE
  "CMakeFiles/odtn_adversary.dir/adversary.cpp.o"
  "CMakeFiles/odtn_adversary.dir/adversary.cpp.o.d"
  "libodtn_adversary.a"
  "libodtn_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
