file(REMOVE_RECURSE
  "libodtn_adversary.a"
)
