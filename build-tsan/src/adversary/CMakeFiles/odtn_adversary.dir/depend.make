# Empty dependencies file for odtn_adversary.
# This may be replaced when dependencies are built.
