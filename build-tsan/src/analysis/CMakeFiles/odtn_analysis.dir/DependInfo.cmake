
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anonymity.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/anonymity.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/anonymity.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/delivery.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/delivery.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/delivery.cpp.o.d"
  "/root/repo/src/analysis/goodness_of_fit.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/goodness_of_fit.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/goodness_of_fit.cpp.o.d"
  "/root/repo/src/analysis/hypoexp.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/hypoexp.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/hypoexp.cpp.o.d"
  "/root/repo/src/analysis/traceable.cpp" "src/analysis/CMakeFiles/odtn_analysis.dir/traceable.cpp.o" "gcc" "src/analysis/CMakeFiles/odtn_analysis.dir/traceable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/odtn_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/odtn_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/groups/CMakeFiles/odtn_groups.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/odtn_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
