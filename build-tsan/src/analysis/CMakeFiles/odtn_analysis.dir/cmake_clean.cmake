file(REMOVE_RECURSE
  "CMakeFiles/odtn_analysis.dir/anonymity.cpp.o"
  "CMakeFiles/odtn_analysis.dir/anonymity.cpp.o.d"
  "CMakeFiles/odtn_analysis.dir/cost.cpp.o"
  "CMakeFiles/odtn_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/odtn_analysis.dir/delivery.cpp.o"
  "CMakeFiles/odtn_analysis.dir/delivery.cpp.o.d"
  "CMakeFiles/odtn_analysis.dir/goodness_of_fit.cpp.o"
  "CMakeFiles/odtn_analysis.dir/goodness_of_fit.cpp.o.d"
  "CMakeFiles/odtn_analysis.dir/hypoexp.cpp.o"
  "CMakeFiles/odtn_analysis.dir/hypoexp.cpp.o.d"
  "CMakeFiles/odtn_analysis.dir/traceable.cpp.o"
  "CMakeFiles/odtn_analysis.dir/traceable.cpp.o.d"
  "libodtn_analysis.a"
  "libodtn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
