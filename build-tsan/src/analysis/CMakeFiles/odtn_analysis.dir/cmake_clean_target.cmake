file(REMOVE_RECURSE
  "libodtn_analysis.a"
)
