# Empty dependencies file for odtn_analysis.
# This may be replaced when dependencies are built.
