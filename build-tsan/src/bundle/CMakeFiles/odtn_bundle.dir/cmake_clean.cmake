file(REMOVE_RECURSE
  "CMakeFiles/odtn_bundle.dir/bundle.cpp.o"
  "CMakeFiles/odtn_bundle.dir/bundle.cpp.o.d"
  "libodtn_bundle.a"
  "libodtn_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
