file(REMOVE_RECURSE
  "libodtn_bundle.a"
)
