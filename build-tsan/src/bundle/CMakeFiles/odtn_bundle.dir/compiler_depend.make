# Empty compiler generated dependencies file for odtn_bundle.
# This may be replaced when dependencies are built.
