
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymous_dtn.cpp" "src/core/CMakeFiles/odtn_core.dir/anonymous_dtn.cpp.o" "gcc" "src/core/CMakeFiles/odtn_core.dir/anonymous_dtn.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/odtn_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/odtn_core.dir/experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/odtn_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/odtn_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/odtn_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/odtn_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/odtn_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/groups/CMakeFiles/odtn_groups.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/onion/CMakeFiles/odtn_onion.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/routing/CMakeFiles/odtn_routing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/adversary/CMakeFiles/odtn_adversary.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/odtn_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mobility/CMakeFiles/odtn_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
