file(REMOVE_RECURSE
  "CMakeFiles/odtn_core.dir/anonymous_dtn.cpp.o"
  "CMakeFiles/odtn_core.dir/anonymous_dtn.cpp.o.d"
  "CMakeFiles/odtn_core.dir/experiment.cpp.o"
  "CMakeFiles/odtn_core.dir/experiment.cpp.o.d"
  "libodtn_core.a"
  "libodtn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
