file(REMOVE_RECURSE
  "libodtn_core.a"
)
