# Empty dependencies file for odtn_core.
# This may be replaced when dependencies are built.
