file(REMOVE_RECURSE
  "CMakeFiles/odtn_crypto.dir/aead.cpp.o"
  "CMakeFiles/odtn_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/odtn_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/drbg.cpp.o"
  "CMakeFiles/odtn_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/hmac.cpp.o"
  "CMakeFiles/odtn_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/odtn_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/sha256.cpp.o"
  "CMakeFiles/odtn_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/shamir.cpp.o"
  "CMakeFiles/odtn_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/odtn_crypto.dir/x25519.cpp.o"
  "CMakeFiles/odtn_crypto.dir/x25519.cpp.o.d"
  "libodtn_crypto.a"
  "libodtn_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
