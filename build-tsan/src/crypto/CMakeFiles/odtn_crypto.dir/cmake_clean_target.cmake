file(REMOVE_RECURSE
  "libodtn_crypto.a"
)
