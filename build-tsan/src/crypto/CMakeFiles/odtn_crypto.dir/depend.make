# Empty dependencies file for odtn_crypto.
# This may be replaced when dependencies are built.
