file(REMOVE_RECURSE
  "CMakeFiles/odtn_graph.dir/contact_graph.cpp.o"
  "CMakeFiles/odtn_graph.dir/contact_graph.cpp.o.d"
  "CMakeFiles/odtn_graph.dir/graph_io.cpp.o"
  "CMakeFiles/odtn_graph.dir/graph_io.cpp.o.d"
  "libodtn_graph.a"
  "libodtn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
