file(REMOVE_RECURSE
  "libodtn_graph.a"
)
