# Empty dependencies file for odtn_graph.
# This may be replaced when dependencies are built.
