file(REMOVE_RECURSE
  "CMakeFiles/odtn_groups.dir/group_directory.cpp.o"
  "CMakeFiles/odtn_groups.dir/group_directory.cpp.o.d"
  "CMakeFiles/odtn_groups.dir/key_manager.cpp.o"
  "CMakeFiles/odtn_groups.dir/key_manager.cpp.o.d"
  "CMakeFiles/odtn_groups.dir/rekeying.cpp.o"
  "CMakeFiles/odtn_groups.dir/rekeying.cpp.o.d"
  "libodtn_groups.a"
  "libodtn_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
