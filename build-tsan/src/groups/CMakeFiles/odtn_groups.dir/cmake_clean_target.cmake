file(REMOVE_RECURSE
  "libodtn_groups.a"
)
