# Empty dependencies file for odtn_groups.
# This may be replaced when dependencies are built.
