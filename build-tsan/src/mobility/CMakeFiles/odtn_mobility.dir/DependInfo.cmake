
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/random_waypoint.cpp" "src/mobility/CMakeFiles/odtn_mobility.dir/random_waypoint.cpp.o" "gcc" "src/mobility/CMakeFiles/odtn_mobility.dir/random_waypoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/odtn_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/odtn_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/odtn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
