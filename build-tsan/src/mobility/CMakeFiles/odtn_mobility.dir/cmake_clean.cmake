file(REMOVE_RECURSE
  "CMakeFiles/odtn_mobility.dir/random_waypoint.cpp.o"
  "CMakeFiles/odtn_mobility.dir/random_waypoint.cpp.o.d"
  "libodtn_mobility.a"
  "libodtn_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
