file(REMOVE_RECURSE
  "libodtn_mobility.a"
)
