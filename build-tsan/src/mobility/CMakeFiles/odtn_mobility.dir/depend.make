# Empty dependencies file for odtn_mobility.
# This may be replaced when dependencies are built.
