file(REMOVE_RECURSE
  "CMakeFiles/odtn_onion.dir/onion.cpp.o"
  "CMakeFiles/odtn_onion.dir/onion.cpp.o.d"
  "libodtn_onion.a"
  "libodtn_onion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_onion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
