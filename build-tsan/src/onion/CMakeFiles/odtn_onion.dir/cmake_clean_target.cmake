file(REMOVE_RECURSE
  "libodtn_onion.a"
)
