# Empty dependencies file for odtn_onion.
# This may be replaced when dependencies are built.
