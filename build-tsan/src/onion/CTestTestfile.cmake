# CMake generated Testfile for 
# Source directory: /root/repo/src/onion
# Build directory: /root/repo/build-tsan/src/onion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
