
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/alar.cpp" "src/routing/CMakeFiles/odtn_routing.dir/alar.cpp.o" "gcc" "src/routing/CMakeFiles/odtn_routing.dir/alar.cpp.o.d"
  "/root/repo/src/routing/baselines.cpp" "src/routing/CMakeFiles/odtn_routing.dir/baselines.cpp.o" "gcc" "src/routing/CMakeFiles/odtn_routing.dir/baselines.cpp.o.d"
  "/root/repo/src/routing/onion_routing.cpp" "src/routing/CMakeFiles/odtn_routing.dir/onion_routing.cpp.o" "gcc" "src/routing/CMakeFiles/odtn_routing.dir/onion_routing.cpp.o.d"
  "/root/repo/src/routing/prophet.cpp" "src/routing/CMakeFiles/odtn_routing.dir/prophet.cpp.o" "gcc" "src/routing/CMakeFiles/odtn_routing.dir/prophet.cpp.o.d"
  "/root/repo/src/routing/threshold_pivot.cpp" "src/routing/CMakeFiles/odtn_routing.dir/threshold_pivot.cpp.o" "gcc" "src/routing/CMakeFiles/odtn_routing.dir/threshold_pivot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/odtn_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/odtn_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/groups/CMakeFiles/odtn_groups.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/onion/CMakeFiles/odtn_onion.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/odtn_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/odtn_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/odtn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
