file(REMOVE_RECURSE
  "CMakeFiles/odtn_routing.dir/alar.cpp.o"
  "CMakeFiles/odtn_routing.dir/alar.cpp.o.d"
  "CMakeFiles/odtn_routing.dir/baselines.cpp.o"
  "CMakeFiles/odtn_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/odtn_routing.dir/onion_routing.cpp.o"
  "CMakeFiles/odtn_routing.dir/onion_routing.cpp.o.d"
  "CMakeFiles/odtn_routing.dir/prophet.cpp.o"
  "CMakeFiles/odtn_routing.dir/prophet.cpp.o.d"
  "CMakeFiles/odtn_routing.dir/threshold_pivot.cpp.o"
  "CMakeFiles/odtn_routing.dir/threshold_pivot.cpp.o.d"
  "libodtn_routing.a"
  "libodtn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
