file(REMOVE_RECURSE
  "libodtn_routing.a"
)
