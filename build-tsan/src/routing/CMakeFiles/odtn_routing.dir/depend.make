# Empty dependencies file for odtn_routing.
# This may be replaced when dependencies are built.
