file(REMOVE_RECURSE
  "CMakeFiles/odtn_sim.dir/contact_model.cpp.o"
  "CMakeFiles/odtn_sim.dir/contact_model.cpp.o.d"
  "CMakeFiles/odtn_sim.dir/network_sim.cpp.o"
  "CMakeFiles/odtn_sim.dir/network_sim.cpp.o.d"
  "libodtn_sim.a"
  "libodtn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
