file(REMOVE_RECURSE
  "libodtn_sim.a"
)
