# Empty dependencies file for odtn_sim.
# This may be replaced when dependencies are built.
