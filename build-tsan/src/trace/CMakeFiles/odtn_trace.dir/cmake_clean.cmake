file(REMOVE_RECURSE
  "CMakeFiles/odtn_trace.dir/contact_trace.cpp.o"
  "CMakeFiles/odtn_trace.dir/contact_trace.cpp.o.d"
  "CMakeFiles/odtn_trace.dir/synthetic.cpp.o"
  "CMakeFiles/odtn_trace.dir/synthetic.cpp.o.d"
  "libodtn_trace.a"
  "libodtn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
