file(REMOVE_RECURSE
  "libodtn_trace.a"
)
