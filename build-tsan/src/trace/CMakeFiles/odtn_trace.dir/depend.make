# Empty dependencies file for odtn_trace.
# This may be replaced when dependencies are built.
