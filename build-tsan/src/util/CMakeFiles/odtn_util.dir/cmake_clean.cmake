file(REMOVE_RECURSE
  "CMakeFiles/odtn_util.dir/args.cpp.o"
  "CMakeFiles/odtn_util.dir/args.cpp.o.d"
  "CMakeFiles/odtn_util.dir/bytes.cpp.o"
  "CMakeFiles/odtn_util.dir/bytes.cpp.o.d"
  "CMakeFiles/odtn_util.dir/rng.cpp.o"
  "CMakeFiles/odtn_util.dir/rng.cpp.o.d"
  "CMakeFiles/odtn_util.dir/run_length.cpp.o"
  "CMakeFiles/odtn_util.dir/run_length.cpp.o.d"
  "CMakeFiles/odtn_util.dir/stats.cpp.o"
  "CMakeFiles/odtn_util.dir/stats.cpp.o.d"
  "CMakeFiles/odtn_util.dir/table.cpp.o"
  "CMakeFiles/odtn_util.dir/table.cpp.o.d"
  "CMakeFiles/odtn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/odtn_util.dir/thread_pool.cpp.o.d"
  "libodtn_util.a"
  "libodtn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
