file(REMOVE_RECURSE
  "libodtn_util.a"
)
