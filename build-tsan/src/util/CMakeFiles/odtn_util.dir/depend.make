# Empty dependencies file for odtn_util.
# This may be replaced when dependencies are built.
