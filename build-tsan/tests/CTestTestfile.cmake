# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("graph")
subdirs("groups")
subdirs("bundle")
subdirs("onion")
subdirs("trace")
subdirs("sim")
subdirs("mobility")
subdirs("routing")
subdirs("adversary")
subdirs("analysis")
subdirs("core")
