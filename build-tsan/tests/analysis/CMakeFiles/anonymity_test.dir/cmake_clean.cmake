file(REMOVE_RECURSE
  "CMakeFiles/anonymity_test.dir/anonymity_test.cpp.o"
  "CMakeFiles/anonymity_test.dir/anonymity_test.cpp.o.d"
  "anonymity_test"
  "anonymity_test.pdb"
  "anonymity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
