# Empty dependencies file for anonymity_test.
# This may be replaced when dependencies are built.
