file(REMOVE_RECURSE
  "CMakeFiles/delivery_test.dir/delivery_test.cpp.o"
  "CMakeFiles/delivery_test.dir/delivery_test.cpp.o.d"
  "delivery_test"
  "delivery_test.pdb"
  "delivery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
