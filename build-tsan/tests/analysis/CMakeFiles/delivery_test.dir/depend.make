# Empty dependencies file for delivery_test.
# This may be replaced when dependencies are built.
