file(REMOVE_RECURSE
  "CMakeFiles/goodness_of_fit_test.dir/goodness_of_fit_test.cpp.o"
  "CMakeFiles/goodness_of_fit_test.dir/goodness_of_fit_test.cpp.o.d"
  "goodness_of_fit_test"
  "goodness_of_fit_test.pdb"
  "goodness_of_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goodness_of_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
