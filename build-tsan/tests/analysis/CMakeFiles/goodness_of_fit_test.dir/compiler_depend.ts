# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for goodness_of_fit_test.
