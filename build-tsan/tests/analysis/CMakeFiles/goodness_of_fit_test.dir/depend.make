# Empty dependencies file for goodness_of_fit_test.
# This may be replaced when dependencies are built.
