file(REMOVE_RECURSE
  "CMakeFiles/traceable_test.dir/traceable_test.cpp.o"
  "CMakeFiles/traceable_test.dir/traceable_test.cpp.o.d"
  "traceable_test"
  "traceable_test.pdb"
  "traceable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
