# Empty dependencies file for traceable_test.
# This may be replaced when dependencies are built.
