# CMake generated Testfile for 
# Source directory: /root/repo/tests/analysis
# Build directory: /root/repo/build-tsan/tests/analysis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/analysis/hypoexp_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis/delivery_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis/cost_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis/traceable_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis/anonymity_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis/goodness_of_fit_test[1]_include.cmake")
