file(REMOVE_RECURSE
  "CMakeFiles/bundle_test.dir/bundle_test.cpp.o"
  "CMakeFiles/bundle_test.dir/bundle_test.cpp.o.d"
  "bundle_test"
  "bundle_test.pdb"
  "bundle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
