file(REMOVE_RECURSE
  "CMakeFiles/onion_bundle_integration_test.dir/onion_bundle_integration_test.cpp.o"
  "CMakeFiles/onion_bundle_integration_test.dir/onion_bundle_integration_test.cpp.o.d"
  "onion_bundle_integration_test"
  "onion_bundle_integration_test.pdb"
  "onion_bundle_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_bundle_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
