# Empty dependencies file for onion_bundle_integration_test.
# This may be replaced when dependencies are built.
