# CMake generated Testfile for 
# Source directory: /root/repo/tests/bundle
# Build directory: /root/repo/build-tsan/tests/bundle
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/bundle/bundle_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/bundle/onion_bundle_integration_test[1]_include.cmake")
