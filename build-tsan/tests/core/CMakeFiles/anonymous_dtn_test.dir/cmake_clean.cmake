file(REMOVE_RECURSE
  "CMakeFiles/anonymous_dtn_test.dir/anonymous_dtn_test.cpp.o"
  "CMakeFiles/anonymous_dtn_test.dir/anonymous_dtn_test.cpp.o.d"
  "anonymous_dtn_test"
  "anonymous_dtn_test.pdb"
  "anonymous_dtn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_dtn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
