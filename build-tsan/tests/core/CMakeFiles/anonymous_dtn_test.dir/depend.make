# Empty dependencies file for anonymous_dtn_test.
# This may be replaced when dependencies are built.
