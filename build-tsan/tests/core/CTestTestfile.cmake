# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build-tsan/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/core/experiment_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core/anonymous_dtn_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core/paper_claims_test[1]_include.cmake")
