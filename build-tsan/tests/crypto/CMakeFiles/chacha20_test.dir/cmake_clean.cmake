file(REMOVE_RECURSE
  "CMakeFiles/chacha20_test.dir/chacha20_test.cpp.o"
  "CMakeFiles/chacha20_test.dir/chacha20_test.cpp.o.d"
  "chacha20_test"
  "chacha20_test.pdb"
  "chacha20_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chacha20_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
