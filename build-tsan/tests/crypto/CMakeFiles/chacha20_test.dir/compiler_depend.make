# Empty compiler generated dependencies file for chacha20_test.
# This may be replaced when dependencies are built.
