file(REMOVE_RECURSE
  "CMakeFiles/poly1305_test.dir/poly1305_test.cpp.o"
  "CMakeFiles/poly1305_test.dir/poly1305_test.cpp.o.d"
  "poly1305_test"
  "poly1305_test.pdb"
  "poly1305_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly1305_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
