# Empty compiler generated dependencies file for poly1305_test.
# This may be replaced when dependencies are built.
