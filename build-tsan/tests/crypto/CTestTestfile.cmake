# CMake generated Testfile for 
# Source directory: /root/repo/tests/crypto
# Build directory: /root/repo/build-tsan/tests/crypto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/crypto/sha256_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/hmac_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/chacha20_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/poly1305_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/aead_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/x25519_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/drbg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto/shamir_test[1]_include.cmake")
