# CMake generated Testfile for 
# Source directory: /root/repo/tests/graph
# Build directory: /root/repo/build-tsan/tests/graph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/graph/contact_graph_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/graph/graph_io_test[1]_include.cmake")
