file(REMOVE_RECURSE
  "CMakeFiles/group_directory_test.dir/group_directory_test.cpp.o"
  "CMakeFiles/group_directory_test.dir/group_directory_test.cpp.o.d"
  "group_directory_test"
  "group_directory_test.pdb"
  "group_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
