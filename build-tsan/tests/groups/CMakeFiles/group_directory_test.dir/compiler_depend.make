# Empty compiler generated dependencies file for group_directory_test.
# This may be replaced when dependencies are built.
