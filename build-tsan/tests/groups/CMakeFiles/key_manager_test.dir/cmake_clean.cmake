file(REMOVE_RECURSE
  "CMakeFiles/key_manager_test.dir/key_manager_test.cpp.o"
  "CMakeFiles/key_manager_test.dir/key_manager_test.cpp.o.d"
  "key_manager_test"
  "key_manager_test.pdb"
  "key_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
