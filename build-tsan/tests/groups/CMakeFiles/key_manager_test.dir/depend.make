# Empty dependencies file for key_manager_test.
# This may be replaced when dependencies are built.
