file(REMOVE_RECURSE
  "CMakeFiles/rekeying_test.dir/rekeying_test.cpp.o"
  "CMakeFiles/rekeying_test.dir/rekeying_test.cpp.o.d"
  "rekeying_test"
  "rekeying_test.pdb"
  "rekeying_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rekeying_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
