# Empty compiler generated dependencies file for rekeying_test.
# This may be replaced when dependencies are built.
