# CMake generated Testfile for 
# Source directory: /root/repo/tests/groups
# Build directory: /root/repo/build-tsan/tests/groups
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/groups/group_directory_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/groups/key_manager_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/groups/rekeying_test[1]_include.cmake")
