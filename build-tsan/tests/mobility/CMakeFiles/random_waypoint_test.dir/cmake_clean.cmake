file(REMOVE_RECURSE
  "CMakeFiles/random_waypoint_test.dir/random_waypoint_test.cpp.o"
  "CMakeFiles/random_waypoint_test.dir/random_waypoint_test.cpp.o.d"
  "random_waypoint_test"
  "random_waypoint_test.pdb"
  "random_waypoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_waypoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
