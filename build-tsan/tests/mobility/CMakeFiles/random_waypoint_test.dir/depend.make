# Empty dependencies file for random_waypoint_test.
# This may be replaced when dependencies are built.
