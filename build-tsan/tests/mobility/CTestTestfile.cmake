# CMake generated Testfile for 
# Source directory: /root/repo/tests/mobility
# Build directory: /root/repo/build-tsan/tests/mobility
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/mobility/random_waypoint_test[1]_include.cmake")
