
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/onion/onion_fuzz_test.cpp" "tests/onion/CMakeFiles/onion_fuzz_test.dir/onion_fuzz_test.cpp.o" "gcc" "tests/onion/CMakeFiles/onion_fuzz_test.dir/onion_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/onion/CMakeFiles/odtn_onion.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/groups/CMakeFiles/odtn_groups.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/odtn_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/odtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
