file(REMOVE_RECURSE
  "CMakeFiles/onion_fuzz_test.dir/onion_fuzz_test.cpp.o"
  "CMakeFiles/onion_fuzz_test.dir/onion_fuzz_test.cpp.o.d"
  "onion_fuzz_test"
  "onion_fuzz_test.pdb"
  "onion_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
