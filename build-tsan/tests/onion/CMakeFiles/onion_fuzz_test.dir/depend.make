# Empty dependencies file for onion_fuzz_test.
# This may be replaced when dependencies are built.
