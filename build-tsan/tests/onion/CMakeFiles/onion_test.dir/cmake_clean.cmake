file(REMOVE_RECURSE
  "CMakeFiles/onion_test.dir/onion_test.cpp.o"
  "CMakeFiles/onion_test.dir/onion_test.cpp.o.d"
  "onion_test"
  "onion_test.pdb"
  "onion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
