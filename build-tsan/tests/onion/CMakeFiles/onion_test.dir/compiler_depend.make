# Empty compiler generated dependencies file for onion_test.
# This may be replaced when dependencies are built.
