# CMake generated Testfile for 
# Source directory: /root/repo/tests/onion
# Build directory: /root/repo/build-tsan/tests/onion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/onion/onion_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/onion/onion_fuzz_test[1]_include.cmake")
