file(REMOVE_RECURSE
  "CMakeFiles/alar_test.dir/alar_test.cpp.o"
  "CMakeFiles/alar_test.dir/alar_test.cpp.o.d"
  "alar_test"
  "alar_test.pdb"
  "alar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
