# Empty compiler generated dependencies file for alar_test.
# This may be replaced when dependencies are built.
