file(REMOVE_RECURSE
  "CMakeFiles/destination_group_test.dir/destination_group_test.cpp.o"
  "CMakeFiles/destination_group_test.dir/destination_group_test.cpp.o.d"
  "destination_group_test"
  "destination_group_test.pdb"
  "destination_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/destination_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
