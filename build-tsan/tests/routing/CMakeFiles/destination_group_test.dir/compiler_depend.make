# Empty compiler generated dependencies file for destination_group_test.
# This may be replaced when dependencies are built.
