file(REMOVE_RECURSE
  "CMakeFiles/multi_copy_test.dir/multi_copy_test.cpp.o"
  "CMakeFiles/multi_copy_test.dir/multi_copy_test.cpp.o.d"
  "multi_copy_test"
  "multi_copy_test.pdb"
  "multi_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
