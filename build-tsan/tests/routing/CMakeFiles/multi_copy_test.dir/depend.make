# Empty dependencies file for multi_copy_test.
# This may be replaced when dependencies are built.
