file(REMOVE_RECURSE
  "CMakeFiles/prophet_test.dir/prophet_test.cpp.o"
  "CMakeFiles/prophet_test.dir/prophet_test.cpp.o.d"
  "prophet_test"
  "prophet_test.pdb"
  "prophet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
