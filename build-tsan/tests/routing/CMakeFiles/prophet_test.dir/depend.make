# Empty dependencies file for prophet_test.
# This may be replaced when dependencies are built.
