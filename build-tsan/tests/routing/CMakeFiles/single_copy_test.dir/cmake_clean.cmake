file(REMOVE_RECURSE
  "CMakeFiles/single_copy_test.dir/single_copy_test.cpp.o"
  "CMakeFiles/single_copy_test.dir/single_copy_test.cpp.o.d"
  "single_copy_test"
  "single_copy_test.pdb"
  "single_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
