# Empty compiler generated dependencies file for single_copy_test.
# This may be replaced when dependencies are built.
