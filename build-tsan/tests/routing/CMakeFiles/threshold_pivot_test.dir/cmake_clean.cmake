file(REMOVE_RECURSE
  "CMakeFiles/threshold_pivot_test.dir/threshold_pivot_test.cpp.o"
  "CMakeFiles/threshold_pivot_test.dir/threshold_pivot_test.cpp.o.d"
  "threshold_pivot_test"
  "threshold_pivot_test.pdb"
  "threshold_pivot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_pivot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
