# CMake generated Testfile for 
# Source directory: /root/repo/tests/routing
# Build directory: /root/repo/build-tsan/tests/routing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/routing/single_copy_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/multi_copy_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/threshold_pivot_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/destination_group_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/alar_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/property_sweep_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/routing/prophet_test[1]_include.cmake")
