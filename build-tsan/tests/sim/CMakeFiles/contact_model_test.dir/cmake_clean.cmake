file(REMOVE_RECURSE
  "CMakeFiles/contact_model_test.dir/contact_model_test.cpp.o"
  "CMakeFiles/contact_model_test.dir/contact_model_test.cpp.o.d"
  "contact_model_test"
  "contact_model_test.pdb"
  "contact_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
