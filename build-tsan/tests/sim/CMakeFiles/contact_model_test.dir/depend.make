# Empty dependencies file for contact_model_test.
# This may be replaced when dependencies are built.
