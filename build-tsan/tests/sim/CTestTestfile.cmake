# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build-tsan/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/sim/contact_model_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/network_sim_test[1]_include.cmake")
