file(REMOVE_RECURSE
  "CMakeFiles/contact_trace_test.dir/contact_trace_test.cpp.o"
  "CMakeFiles/contact_trace_test.dir/contact_trace_test.cpp.o.d"
  "contact_trace_test"
  "contact_trace_test.pdb"
  "contact_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
