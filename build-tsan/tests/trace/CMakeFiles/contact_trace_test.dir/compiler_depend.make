# Empty compiler generated dependencies file for contact_trace_test.
# This may be replaced when dependencies are built.
