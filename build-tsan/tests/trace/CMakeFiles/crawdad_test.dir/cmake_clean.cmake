file(REMOVE_RECURSE
  "CMakeFiles/crawdad_test.dir/crawdad_test.cpp.o"
  "CMakeFiles/crawdad_test.dir/crawdad_test.cpp.o.d"
  "crawdad_test"
  "crawdad_test.pdb"
  "crawdad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawdad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
