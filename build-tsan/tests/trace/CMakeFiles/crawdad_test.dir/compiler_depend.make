# Empty compiler generated dependencies file for crawdad_test.
# This may be replaced when dependencies are built.
