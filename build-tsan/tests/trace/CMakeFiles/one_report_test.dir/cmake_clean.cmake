file(REMOVE_RECURSE
  "CMakeFiles/one_report_test.dir/one_report_test.cpp.o"
  "CMakeFiles/one_report_test.dir/one_report_test.cpp.o.d"
  "one_report_test"
  "one_report_test.pdb"
  "one_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
