# Empty compiler generated dependencies file for one_report_test.
# This may be replaced when dependencies are built.
