# CMake generated Testfile for 
# Source directory: /root/repo/tests/trace
# Build directory: /root/repo/build-tsan/tests/trace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/trace/contact_trace_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace/synthetic_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace/crawdad_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace/parser_fuzz_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace/one_report_test[1]_include.cmake")
