file(REMOVE_RECURSE
  "CMakeFiles/run_length_test.dir/run_length_test.cpp.o"
  "CMakeFiles/run_length_test.dir/run_length_test.cpp.o.d"
  "run_length_test"
  "run_length_test.pdb"
  "run_length_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_length_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
