# Empty dependencies file for run_length_test.
# This may be replaced when dependencies are built.
