# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build-tsan/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util/bytes_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/rng_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/stats_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/thread_pool_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/run_length_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/args_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util/table_test[1]_include.cmake")
