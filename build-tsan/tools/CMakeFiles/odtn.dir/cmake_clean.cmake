file(REMOVE_RECURSE
  "CMakeFiles/odtn.dir/odtn_cli.cpp.o"
  "CMakeFiles/odtn.dir/odtn_cli.cpp.o.d"
  "odtn"
  "odtn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
