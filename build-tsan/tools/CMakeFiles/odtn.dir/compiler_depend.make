# Empty compiler generated dependencies file for odtn.
# This may be replaced when dependencies are built.
