# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_model "/root/repo/build-tsan/tools/odtn" "model" "--K=3" "--g=5")
set_tests_properties(cli_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build-tsan/tools/odtn" "simulate" "--runs=30" "--n=40")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_graph "/root/repo/build-tsan/tools/odtn" "gen-graph" "--nodes=10")
set_tests_properties(cli_gen_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_trace "/root/repo/build-tsan/tools/odtn" "gen-trace" "--kind=poisson" "--nodes=10" "--horizon=500")
set_tests_properties(cli_gen_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build-tsan/tools/odtn" "help")
set_tests_properties(cli_help PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
