// Battlefield scenario (the paper's motivating application, Sec. I):
// a commander must send orders without disclosing that they are an
// endpoint — compromised relays would otherwise reveal the command post.
//
// This example quantifies what the adversary learns at increasing levels
// of infiltration, comparing onion routing against a non-anonymous
// baseline, on a community-structured contact graph (two squads that meet
// each other rarely).
#include <iomanip>
#include <iostream>

#include "adversary/adversary.hpp"
#include "analysis/anonymity.hpp"
#include "core/anonymous_dtn.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace odtn;

  const std::size_t n = 60;
  const std::size_t group_size = 5;
  util::Rng graph_rng(7);
  // Two squads; cross-squad contacts are 8x slower.
  auto graph = graph::community_contact_graph(n, 2, 8.0, graph_rng, 10.0,
                                              240.0);
  auto net = core::AnonymousDtn::over_graph(std::move(graph), group_size, 7);

  const NodeId commander = 0;     // squad A
  const NodeId field_unit = 59;   // squad B

  std::cout << "Battlefield DTN: " << n << " radios in two squads.\n"
            << "Commander (node " << commander << ") sends orders to a "
            << "field unit (node " << field_unit << ") across squads.\n\n";

  core::SendOptions options;
  options.num_relays = 3;
  options.ttl = 4000.0;

  // Deliver a batch of orders and record the realized paths.
  const int orders = 150;
  std::vector<routing::DeliveryResult> delivered;
  int expired = 0;
  for (int i = 0; i < orders; ++i) {
    auto r = net.send(commander, field_unit,
                      util::to_bytes("order #" + std::to_string(i)), options);
    if (r.delivered) {
      delivered.push_back(std::move(r));
    } else {
      ++expired;
    }
  }
  std::cout << delivered.size() << "/" << orders
            << " orders delivered within " << options.ttl
            << " minutes (" << expired << " expired).\n\n";

  // Infiltration study: what does an adversary who compromised a fraction
  // of the radios learn about the commander's routes?
  util::Table table({"infiltration", "traceable_rate", "path_anonymity",
                     "model_anonymity"});
  for (double fraction : {0.05, 0.10, 0.20, 0.30, 0.50}) {
    util::RunningStats traceable, anonymity;
    util::Rng adv_rng(1000 + static_cast<std::uint64_t>(fraction * 100));
    for (const auto& r : delivered) {
      auto compromise =
          adversary::CompromiseModel::from_fraction(n, fraction, adv_rng);
      traceable.add(adversary::measured_traceable_rate(
          commander, r.relay_path, compromise));
      anonymity.add(adversary::measured_path_anonymity(
          commander, r.relays_per_hop, compromise, n, group_size));
    }
    table.new_row();
    table.cell(fraction, 2);
    table.cell(traceable.mean());
    table.cell(anonymity.mean());
    table.cell(analysis::path_anonymity_model(options.num_relays + 1,
                                              fraction, n, group_size));
  }
  table.print(std::cout);

  std::cout << "\nEven at 30% infiltration the adversary traces only a "
               "small fraction of each route,\nand the realized anonymity "
               "matches the paper's Eq. 19 model (last column).\n\n";

  // Cost of anonymity: compare against non-anonymous spray-and-wait.
  util::RunningStats onion_tx, onion_delay, sw_tx, sw_delay;
  for (const auto& r : delivered) {
    onion_tx.add(static_cast<double>(r.transmissions));
    onion_delay.add(r.delay);
  }
  for (int i = 0; i < 100; ++i) {
    auto r = net.send_spray_and_wait(commander, field_unit, 3, options.ttl);
    if (r.delivered) {
      sw_tx.add(static_cast<double>(r.transmissions));
      sw_delay.add(r.delay);
    }
  }
  std::cout << std::fixed << std::setprecision(1)
            << "Price of anonymity (vs non-anonymous spray-and-wait L=3):\n"
            << "  onion routing:   " << onion_tx.mean() << " tx, "
            << onion_delay.mean() << " min mean delay\n"
            << "  spray-and-wait:  " << sw_tx.mean() << " tx, "
            << sw_delay.mean() << " min mean delay\n";
  return 0;
}
