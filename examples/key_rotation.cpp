// Key-rotation study: bounding what a captured group key is worth.
//
// The paper's adversary keeps a compromised node's group key forever. This
// example shows the operational counter-measure the library ships
// (groups::GroupKeySchedule): epoch-ratcheted group keys with healing.
// A message stream is sent over many epochs; the adversary captures one
// group's key at a known epoch; we measure which fraction of the stream's
// onions had a layer exposed, with and without healing.
#include <iostream>

#include "groups/group_directory.hpp"
#include "groups/rekeying.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace odtn;

  const std::size_t n = 100, g = 5;
  groups::GroupDirectory dir(n, g);
  groups::GroupKeySchedule schedule(dir, 42);

  const groups::Epoch total_epochs = 48;  // e.g. one epoch per hour, 2 days
  const groups::Epoch capture_epoch = 12;
  const GroupId captured_group = 7;

  std::cout << "Adversary captures group " << captured_group
            << "'s key at epoch " << capture_epoch << " of " << total_epochs
            << ".\n\n";

  // A uniform message stream: each epoch, 10 messages, each using K=3
  // random relay groups. A message's layer for the captured group is
  // exposed iff the group key of its epoch is derivable from the captured
  // key (epoch >= capture, and before any heal).
  util::Rng rng(7);
  util::Table table({"healing_policy", "exposed_onions", "exposure_epochs"});
  for (groups::Epoch heal_after : {groups::Epoch{0}, groups::Epoch{24},
                                   groups::Epoch{16}, groups::Epoch{13}}) {
    groups::Epoch heal_epoch = heal_after;  // 0 = never heals
    auto window =
        groups::GroupKeySchedule::exposure_window(capture_epoch, heal_epoch);

    std::size_t exposed = 0, total = 0;
    util::Rng stream_rng(99);
    for (groups::Epoch e = 0; e < total_epochs; ++e) {
      for (int m = 0; m < 10; ++m) {
        ++total;
        // Does this message route through the captured group?
        auto relays = stream_rng.sample_without_replacement(
            dir.group_count(), 3);
        bool uses_group = false;
        for (auto r : relays) {
          uses_group |= (static_cast<GroupId>(r) == captured_group);
        }
        if (!uses_group) continue;
        if (e >= window.first && e <= window.second) ++exposed;
      }
    }
    table.new_row();
    table.cell(heal_epoch == 0
                   ? std::string("never heal (paper's adversary)")
                   : "heal at epoch " + std::to_string(heal_epoch));
    table.cell(static_cast<double>(exposed) / static_cast<double>(total), 4);
    table.cell(heal_epoch == 0
                   ? std::string("[" + std::to_string(window.first) + ", inf)")
                   : "[" + std::to_string(window.first) + ", " +
                         std::to_string(window.second) + "]");
  }
  table.print(std::cout);

  std::cout
      << "\nForward security makes pre-capture epochs safe for free (the "
         "ratchet is one-way);\nhealing bounds the post-capture window. "
         "With prompt healing the same compromise\nexposes an order of "
         "magnitude fewer onions than the paper's static-key adversary.\n";
  return 0;
}
