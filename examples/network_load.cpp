// Network load study: what the single-message analysis cannot see.
//
// Uses the whole-network discrete-event simulator (sim/network_sim.hpp) to
// run hundreds of concurrent anonymous messages over one contact process,
// with finite per-node buffers — the deployment regime where relays start
// refusing onions. Also demonstrates graph and trace serialization: the
// exact realization is written to /tmp so a run can be reproduced or
// inspected offline.
#include <filesystem>
#include <iostream>

#include "graph/graph_io.hpp"
#include "sim/network_sim.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace odtn;

  const std::size_t n = 100;
  util::Rng rng(2024);
  auto graph = graph::random_contact_graph(n, rng, 10.0, 360.0);
  auto trace = trace::sample_poisson_trace(graph, 3600.0, rng);
  groups::GroupDirectory dir(n, 5, &rng);

  // Persist the realization for reproducibility.
  auto dir_path = std::filesystem::temp_directory_path();
  std::string graph_path = (dir_path / "odtn_load_graph.txt").string();
  std::string trace_path = (dir_path / "odtn_load_trace.txt").string();
  graph::save_graph_file(graph, graph_path);
  trace::save_trace_file(trace, trace_path);

  std::cout << "Network: " << n << " nodes, " << trace.event_count()
            << " contacts over 3600 min.\n"
            << "Realization saved to " << graph_path << " and " << trace_path
            << "\n\n";

  // A workload of anonymous messages injected over the first 10 hours.
  const std::size_t load = 300;
  std::vector<sim::InjectedMessage> messages;
  util::Rng wl(7);
  for (std::size_t i = 0; i < load; ++i) {
    sim::InjectedMessage m;
    m.src = static_cast<NodeId>(wl.below(n));
    m.dst = static_cast<NodeId>(wl.below(n - 1));
    if (m.dst >= m.src) ++m.dst;
    m.start = wl.uniform(0.0, 600.0);
    m.ttl = 1800.0;
    m.num_relays = 3;
    messages.push_back(m);
  }

  util::Table table({"buffer_capacity", "delivery", "mean_delay_min",
                     "transmissions", "rejections", "expired"});
  for (std::size_t cap : {0u, 8u, 4u, 2u, 1u}) {
    sim::NetworkSimConfig cfg;
    cfg.buffer_capacity = cap;
    util::Rng run_rng(99);  // identical relay-group draws per capacity
    auto report = sim::run_network_sim(trace, dir, messages, cfg, run_rng);
    table.new_row();
    table.cell(cap == 0 ? std::string("unlimited") : std::to_string(cap));
    table.cell(report.delivery_rate(), 3);
    table.cell(report.mean_delay(), 1);
    table.cell(static_cast<std::int64_t>(report.total_transmissions));
    table.cell(static_cast<std::int64_t>(report.total_buffer_rejections));
    table.cell(static_cast<std::int64_t>(report.expired_copies));
  }
  table.print(std::cout);

  std::cout << "\nWith unlimited buffers the network matches the paper's "
               "per-message model;\nas capacity shrinks, relays refuse "
               "onions and delivery degrades — a deployment\nconstraint the "
               "closed-form analysis (which assumes one message at a time) "
               "cannot express.\n";
  return 0;
}
