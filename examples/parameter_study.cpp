// Parameter study: the performance/anonymity trade-off surface.
//
// Sweeps the protocol knobs (K onion relays, group size g, copies L) with
// the analytical models and a confirming simulation column, producing the
// kind of table an operator would use to pick a deployment configuration.
#include <iostream>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace odtn;
  (void)argc;
  (void)argv;

  core::ExperimentConfig base;
  base.runs = 150;
  base.seed = 3;
  base.ttl = 600.0;            // tight deadline: differences show clearly
  base.compromise_fraction = 0.2;

  std::cout << "Configuration study: n=100 nodes, deadline 600 min, 20% of "
               "nodes compromised.\n"
            << "delivery = simulated; anonymity/traceable = model; cost = "
               "upper bound.\n\n";

  util::Table table({"K", "g", "L", "delivery", "anonymity", "traceable",
                     "cost_bound"});
  for (std::size_t k : {2u, 3u, 5u}) {
    for (std::size_t g : {1u, 5u, 10u}) {
      for (std::size_t l : {1u, 3u}) {
        auto cfg = base;
        cfg.num_relays = k;
        cfg.group_size = g;
        cfg.copies = l;
        auto r = core::Experiment(cfg).run(core::RandomGraphScenario{});
        table.new_row();
        table.cell(static_cast<std::int64_t>(k));
        table.cell(static_cast<std::int64_t>(g));
        table.cell(static_cast<std::int64_t>(l));
        table.cell(r.sim_delivered.mean(), 2);
        table.cell(r.ana_anonymity.mean(), 3);
        table.cell(r.ana_traceable_exact.mean(), 3);
        table.cell(r.ana_cost_bound.mean(), 0);
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table:\n"
      << "  * K buys traceability resistance but costs delivery (longer "
         "paths).\n"
      << "  * g buys delivery AND anonymity (anycast + larger hiding set) "
         "for free -- \n"
      << "    its only cost is a larger key-sharing group (Sec. V-B of the "
         "paper).\n"
      << "  * L buys delivery but costs anonymity and transmissions "
         "(Figs. 10-12).\n";
  return 0;
}
