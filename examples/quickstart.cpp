// Quickstart: send one anonymous message across a random DTN.
//
// Demonstrates the minimal AnonymousDtn workflow: build a network, send a
// payload through K onion groups with real layered encryption, inspect the
// delivery result.
#include <iostream>

#include "core/anonymous_dtn.hpp"

int main() {
  using namespace odtn;

  // A 100-node DTN with Table II contact dynamics (inter-contact times
  // uniform in [10, 360] minutes) and onion groups of 5 nodes.
  auto net = core::AnonymousDtn::over_random_graph(/*nodes=*/100,
                                                   /*group_size=*/5,
                                                   /*seed=*/42);

  core::SendOptions options;
  options.num_relays = 3;   // K: onion groups the message travels through
  options.ttl = 1800.0;     // T: deadline in minutes
  options.copies = 1;       // L: single-copy forwarding (Algorithm 1)

  NodeId source = 0, destination = 99;
  auto result = net.send(source, destination,
                         util::to_bytes("rendezvous at checkpoint 7"),
                         options);

  if (!result.delivered) {
    std::cout << "message expired before reaching node " << destination
              << " (deadline " << options.ttl << " min)\n";
    return 0;
  }

  std::cout << "delivered in " << result.delay << " minutes\n"
            << "transmissions: " << result.transmissions << " (= K+1)\n"
            << "onion payload decrypted correctly: "
            << (result.crypto_verified ? "yes" : "NO") << "\n"
            << "relay path (hidden from every relay, visible to us as the "
               "omniscient simulator):\n  "
            << source;
  for (NodeId r : result.relay_path) std::cout << " -> " << r;
  std::cout << " -> " << destination << "\n"
            << "relay groups: ";
  for (GroupId g : result.relay_groups) std::cout << "R" << g << " ";
  std::cout << "\n\nEach relay only learned the next onion group; the "
               "endpoints never appeared together on any wire.\n";
  return 0;
}
