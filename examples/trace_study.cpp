// Trace study: anonymous routing over a real-world-like contact trace.
//
// Replays the synthetic Cambridge-like trace (the stand-in for CRAWDAD
// cambridge/haggle Experiment 2, DESIGN.md §4), compares onion routing
// against the non-anonymous baselines, and shows how the analytical model
// is trained from the trace (rate estimation) to predict delivery.
#include <iomanip>
#include <iostream>

#include "analysis/delivery.hpp"
#include "core/anonymous_dtn.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace odtn;

  auto trace = trace::make_cambridge_like(21);
  std::cout << "Cambridge-like trace: " << trace.node_count() << " nodes, "
            << trace.event_count() << " contact events over "
            << trace.end_time() / 86400.0 << " days (business hours only).\n\n";

  auto net = core::AnonymousDtn::over_trace(trace, /*group_size=*/1,
                                            /*seed=*/21);

  // Start each message during business hours on one of the first days.
  util::Rng rng(5);
  auto pick_start = [&](NodeId /*src*/) {
    double day = static_cast<double>(rng.below(3));
    return day * 86400.0 + rng.uniform(9.5 * 3600.0, 15.0 * 3600.0);
  };

  // Compare protocols over the same message workload.
  const int messages = 120;
  const double ttl = 2 * 3600.0;  // two business hours

  util::RunningStats onion_ok, onion_delay, onion_tx;
  util::RunningStats epi_ok, epi_delay, epi_tx;
  util::RunningStats sw_ok, sw_delay, sw_tx;
  for (int i = 0; i < messages; ++i) {
    NodeId src = static_cast<NodeId>(rng.below(12));
    NodeId dst = static_cast<NodeId>(rng.below(11));
    if (dst >= src) ++dst;
    double start = pick_start(src);

    core::SendOptions opt;
    opt.num_relays = 3;
    opt.ttl = ttl;
    opt.start = start;
    auto onion = net.send(src, dst, util::to_bytes("msg"), opt);
    onion_ok.add(onion.delivered);
    if (onion.delivered) {
      onion_delay.add(onion.delay / 60.0);
      onion_tx.add(static_cast<double>(onion.transmissions));
    }

    auto epidemic = net.send_epidemic(src, dst, ttl, start);
    epi_ok.add(epidemic.delivered);
    if (epidemic.delivered) {
      epi_delay.add(epidemic.delay / 60.0);
      epi_tx.add(static_cast<double>(epidemic.transmissions));
    }

    auto spray = net.send_spray_and_wait(src, dst, 3, ttl, start);
    sw_ok.add(spray.delivered);
    if (spray.delivered) {
      sw_delay.add(spray.delay / 60.0);
      sw_tx.add(static_cast<double>(spray.transmissions));
    }
  }

  util::Table table({"protocol", "delivery", "mean_delay_min", "mean_tx",
                     "anonymity"});
  table.new_row();
  table.cell(std::string("onion (K=3)"));
  table.cell(onion_ok.mean(), 2);
  table.cell(onion_delay.mean(), 1);
  table.cell(onion_tx.mean(), 1);
  table.cell(std::string("sender+receiver hidden"));
  table.new_row();
  table.cell(std::string("epidemic"));
  table.cell(epi_ok.mean(), 2);
  table.cell(epi_delay.mean(), 1);
  table.cell(epi_tx.mean(), 1);
  table.cell(std::string("none"));
  table.new_row();
  table.cell(std::string("spray&wait L=3"));
  table.cell(sw_ok.mean(), 2);
  table.cell(sw_delay.mean(), 1);
  table.cell(sw_tx.mean(), 1);
  table.cell(std::string("none"));
  table.print(std::cout);

  // Model training demo: predict onion delivery from trace-estimated rates.
  std::cout << "\nModel trained on the trace (rate estimation):\n";
  const auto& rates = net.contact_rates();
  util::Rng grng(9);
  util::RunningStats predicted;
  for (int i = 0; i < 200; ++i) {
    NodeId src = static_cast<NodeId>(grng.below(12));
    NodeId dst = static_cast<NodeId>(grng.below(11));
    if (dst >= src) ++dst;
    auto groups = net.directory().select_relay_groups(src, dst, 3, grng);
    auto hop_rates = analysis::opportunistic_onion_rates(
        rates, src, dst, net.directory(), groups);
    predicted.add(analysis::delivery_rate(hop_rates, ttl));
  }
  std::cout << std::fixed << std::setprecision(2)
            << "  predicted delivery within " << ttl / 3600.0
            << "h: " << predicted.mean() << " (simulated: " << onion_ok.mean()
            << ")\n"
            << "\nNote: the model treats all time as business time, so it "
               "is optimistic for\nmessages that straddle the night gap — "
               "exactly the effect the paper reports\non the Infocom'05 "
               "trace (Fig. 17).\n";
  return 0;
}
