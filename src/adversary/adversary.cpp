#include "adversary/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/anonymity.hpp"
#include "util/run_length.hpp"

namespace odtn::adversary {

CompromiseModel::CompromiseModel(std::size_t n, std::size_t count,
                                 util::Rng& rng)
    : compromised_(n, false), count_(count) {
  if (count > n) {
    throw std::invalid_argument("CompromiseModel: count > n");
  }
  for (auto i : rng.sample_without_replacement(n, count)) {
    compromised_[i] = true;
  }
}

CompromiseModel CompromiseModel::from_fraction(std::size_t n, double fraction,
                                               util::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("CompromiseModel: fraction out of [0,1]");
  }
  auto count =
      static_cast<std::size_t>(std::lround(fraction * static_cast<double>(n)));
  return CompromiseModel(n, count, rng);
}

CompromiseModel CompromiseModel::targeted(const graph::ContactRates& graph,
                                          std::size_t count) {
  std::size_t n = graph.node_count();
  if (count > n) {
    throw std::invalid_argument("CompromiseModel::targeted: count > n");
  }
  std::vector<std::pair<double, NodeId>> by_rate;
  by_rate.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    // row_rate_sum accumulates in ascending peer order on every backend —
    // the same sum the historical all-pairs loop computed here.
    by_rate.emplace_back(graph.row_rate_sum(v), v);
  }
  std::sort(by_rate.begin(), by_rate.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<bool> compromised(n, false);
  for (std::size_t i = 0; i < count; ++i) {
    compromised[by_rate[i].second] = true;
  }
  return CompromiseModel(std::move(compromised), count);
}

std::vector<bool> path_bits(NodeId src, const std::vector<NodeId>& relay_path,
                            const CompromiseModel& adversary) {
  std::vector<bool> bits;
  bits.reserve(relay_path.size() + 1);
  bits.push_back(adversary.is_compromised(src));
  for (NodeId r : relay_path) bits.push_back(adversary.is_compromised(r));
  return bits;
}

double measured_traceable_rate(NodeId src,
                               const std::vector<NodeId>& relay_path,
                               const CompromiseModel& adversary) {
  return util::traceable_rate(path_bits(src, relay_path, adversary));
}

std::size_t compromised_positions(
    NodeId src, const std::vector<std::vector<NodeId>>& relays_per_hop,
    const CompromiseModel& adversary) {
  std::size_t c_o = adversary.is_compromised(src) ? 1 : 0;
  for (const auto& hop_relays : relays_per_hop) {
    for (NodeId r : hop_relays) {
      if (adversary.is_compromised(r)) {
        ++c_o;
        break;
      }
    }
  }
  return c_o;
}

double measured_path_anonymity(
    NodeId src, const std::vector<std::vector<NodeId>>& relays_per_hop,
    const CompromiseModel& adversary, std::size_t n, std::size_t g) {
  std::size_t eta = relays_per_hop.size() + 1;  // K relays + source position
  std::size_t c_o = compromised_positions(src, relays_per_hop, adversary);
  return analysis::path_anonymity(eta, static_cast<double>(c_o), n, g);
}

}  // namespace odtn::adversary
