// Adversary model and security-metric measurement (Secs. II-C, IV-D/E/F).
//
// The adversary compromises a random subset of nodes. A compromised node
// that relays a message discloses the link to its next hop; the metrics
// measured on *simulated* paths here are what the analytical models in
// src/analysis predict in expectation.
#pragma once

#include <vector>

#include "graph/contact_rates.hpp"
#include "routing/types.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::adversary {

/// A random set of compromised nodes.
class CompromiseModel {
 public:
  /// Compromises exactly `count` of `n` nodes, uniformly at random.
  CompromiseModel(std::size_t n, std::size_t count, util::Rng& rng);

  /// Compromises round(fraction * n) nodes.
  static CompromiseModel from_fraction(std::size_t n, double fraction,
                                       util::Rng& rng);

  /// A *targeted* adversary: compromises the `count` nodes with the
  /// highest total contact rate (the best-connected nodes relay most
  /// often, so this is the strongest placement against onion-group
  /// routing). Extends the paper's uniform-compromise threat model; see
  /// bench/ablation_targeted_adversary. Ties broken by node id.
  static CompromiseModel targeted(const graph::ContactRates& graph,
                                  std::size_t count);

  std::size_t node_count() const { return compromised_.size(); }
  std::size_t compromised_count() const { return count_; }
  bool is_compromised(NodeId v) const { return compromised_.at(v); }

 private:
  CompromiseModel(std::vector<bool> compromised, std::size_t count)
      : compromised_(std::move(compromised)), count_(count) {}

  std::vector<bool> compromised_;
  std::size_t count_;
};

/// The eta-bit binary representation of a delivered path (Sec. IV-D): bit
/// i is 1 iff the sender of hop i is compromised. Senders are
/// [src, r_1, ..., r_K].
std::vector<bool> path_bits(NodeId src, const std::vector<NodeId>& relay_path,
                            const CompromiseModel& adversary);

/// Measured traceable rate of a delivered path (Eq. 1 applied to the
/// realized bit string).
double measured_traceable_rate(NodeId src,
                               const std::vector<NodeId>& relay_path,
                               const CompromiseModel& adversary);

/// Number of exposed sender positions c_o on a (multi-copy) path bundle:
/// position 0 is the source; position k >= 1 is exposed if any node that
/// relayed any copy at hop k is compromised (Sec. IV-F).
std::size_t compromised_positions(
    NodeId src, const std::vector<std::vector<NodeId>>& relays_per_hop,
    const CompromiseModel& adversary);

/// Measured path anonymity: Eq. 19 evaluated at the *observed* c_o of this
/// path bundle (n and g from the deployment).
double measured_path_anonymity(
    NodeId src, const std::vector<std::vector<NodeId>>& relays_per_hop,
    const CompromiseModel& adversary, std::size_t n, std::size_t g);

}  // namespace odtn::adversary
