#include "analysis/anonymity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/lgamma_safe.hpp"

namespace odtn::analysis {

namespace {

void check_args(std::size_t eta, double c_o, std::size_t n, std::size_t g) {
  if (eta == 0) throw std::invalid_argument("path_anonymity: eta == 0");
  if (n < 3) throw std::invalid_argument("path_anonymity: n too small");
  if (g == 0 || g > n) throw std::invalid_argument("path_anonymity: bad g");
  if (c_o < 0.0 || c_o > static_cast<double>(eta)) {
    throw std::invalid_argument("path_anonymity: c_o out of [0, eta]");
  }
}

void check_p(double p) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("anonymity: p must be in [0, 1]");
  }
}

}  // namespace

double expected_compromised_on_path(std::size_t eta, double p) {
  check_p(p);
  // Closed form of the binomial expectation of Eq. 15.
  return static_cast<double>(eta) * p;
}

double expected_compromised_on_path(std::size_t eta, double p,
                                    std::size_t copies) {
  check_p(p);
  if (copies == 0) {
    throw std::invalid_argument("anonymity: copies must be >= 1");
  }
  // Eq. 20: a position is exposed if any of the L senders there is
  // compromised.
  double exposed = 1.0 - std::pow(1.0 - p, static_cast<double>(copies));
  return static_cast<double>(eta) * exposed;
}

double path_anonymity(std::size_t eta, double c_o, std::size_t n,
                      std::size_t g) {
  check_args(eta, c_o, n, g);
  double ln_n = std::log(static_cast<double>(n));
  double ln_g = std::log(static_cast<double>(g));
  double denom = static_cast<double>(eta) * (ln_n - 1.0);
  double numer = (static_cast<double>(eta) - c_o) * (ln_n - 1.0) + c_o * ln_g;
  return std::clamp(numer / denom, 0.0, 1.0);
}

double path_anonymity_exact(std::size_t eta, double c_o, std::size_t n,
                            std::size_t g) {
  check_args(eta, c_o, n, g);
  if (static_cast<double>(n) - static_cast<double>(eta) + c_o < 0.0) {
    throw std::invalid_argument("path_anonymity_exact: eta > n");
  }
  double nd = static_cast<double>(n);
  double ln_g = std::log(static_cast<double>(g));
  // ln(n!/(n-eta+c_o)!) via lgamma.
  double h = detail::lgamma_safe(nd + 1.0) -
             detail::lgamma_safe(nd - eta + c_o + 1.0) + c_o * ln_g;
  double h_max =
      detail::lgamma_safe(nd + 1.0) - detail::lgamma_safe(nd - eta + 1.0);
  return std::clamp(h / h_max, 0.0, 1.0);
}

double path_anonymity_model(std::size_t eta, double p, std::size_t n,
                            std::size_t g, std::size_t copies) {
  double c_o = expected_compromised_on_path(eta, p, copies);
  return path_anonymity(eta, c_o, n, g);
}

double path_anonymity_model_distinct(
    std::size_t eta, double p, std::size_t n, std::size_t g,
    const std::vector<double>& mean_distinct_per_hop) {
  check_p(p);
  if (mean_distinct_per_hop.size() + 1 != eta) {
    throw std::invalid_argument(
        "path_anonymity_model_distinct: need eta-1 per-hop counts");
  }
  // Source position: exactly one sender.
  double c_o = p;
  for (double d : mean_distinct_per_hop) {
    if (d < 0.0) {
      throw std::invalid_argument(
          "path_anonymity_model_distinct: negative relay count");
    }
    c_o += 1.0 - std::pow(1.0 - p, d);
  }
  return path_anonymity(eta, c_o, n, g);
}

}  // namespace odtn::analysis
