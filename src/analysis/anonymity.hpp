// Path-anonymity model (Secs. IV-E and IV-F).
//
// Anonymity is the entropy of the set of routing paths consistent with
// what a compromised-node adversary observes, normalized by the maximal
// entropy (no node compromised). A compromised sender position confines
// the next router to its onion group (guess probability 1/g instead of
// 1/(n-k)); with c_o compromised positions out of eta,
//
//   D = [ (eta - c_o)(ln n - 1) + c_o ln g ] / [ eta (ln n - 1) ]   (Eq. 19)
//
// after Stirling's approximation (valid for n >> K, as in real networks).
// The exact factorial form (Eqs. 14 and 17) is also provided.
#pragma once

#include <cstddef>
#include <vector>

namespace odtn::analysis {

/// Expected number of compromised sender positions on a single path
/// (Eq. 15): E[Y] with Y ~ Binomial(eta, p); equals eta * p.
double expected_compromised_on_path(std::size_t eta, double p);

/// Multi-copy variant (Eq. 20): position k is compromised if any of the L
/// copies' senders at that position is; E[Y'] = eta * (1 - (1-p)^L).
double expected_compromised_on_path(std::size_t eta, double p,
                                    std::size_t copies);

/// Path anonymity degree D (Eq. 19), Stirling-approximated, clamped to
/// [0, 1]. `c_o` may be fractional (an expectation) or an observed count.
double path_anonymity(std::size_t eta, double c_o, std::size_t n,
                      std::size_t g);

/// Exact entropy-ratio form via log-gamma (Eqs. 14 and 17):
///   D = [ln(n!/(n-eta+c_o)!) + c_o ln g] / ln(n!/(n-eta)!).
/// `c_o` must be integral-valued for the factorial to be meaningful, but
/// fractional values interpolate smoothly through lgamma.
double path_anonymity_exact(std::size_t eta, double c_o, std::size_t n,
                            std::size_t g);

/// Single-copy anonymity at compromise fraction p = c/n (Eq. 19 with
/// Eq. 15 plugged in).
double path_anonymity_model(std::size_t eta, double p, std::size_t n,
                            std::size_t g, std::size_t copies = 1);

/// Refined multi-copy model. Eq. 20 assumes every one of the L copies
/// exposes an *independent* relay in each group; in simulations copies
/// expire or never spawn, so the realized number of distinct relays per
/// hop d_k is often well below L — which is exactly why the paper's
/// Figs. 12/19 show simulated anonymity above the Eq. 20 line. This
/// variant takes the (measured or estimated) mean distinct relay count
/// per relay hop (size eta-1; the source position always has exactly one
/// sender) and evaluates
///   c_o' = 1 - (1-p)  [source]  +  sum_k (1 - (1-p)^{d_k})
/// in Eq. 19. With d_k = L for all k it reduces to Eq. 20.
double path_anonymity_model_distinct(
    std::size_t eta, double p, std::size_t n, std::size_t g,
    const std::vector<double>& mean_distinct_per_hop);

}  // namespace odtn::analysis
