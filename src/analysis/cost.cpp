#include "analysis/cost.hpp"

#include <stdexcept>

namespace odtn::analysis {

std::size_t single_copy_cost(std::size_t num_relays) { return num_relays + 1; }

std::size_t multi_copy_cost_bound(std::size_t num_relays, std::size_t copies) {
  if (copies == 0) {
    throw std::invalid_argument("multi_copy_cost_bound: copies must be >= 1");
  }
  return (num_relays + 2) * copies;
}

std::size_t non_anonymous_cost(std::size_t copies) {
  if (copies == 0) {
    throw std::invalid_argument("non_anonymous_cost: copies must be >= 1");
  }
  return 2 * copies;
}

}  // namespace odtn::analysis
