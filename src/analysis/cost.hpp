// Message forwarding cost model (Sec. IV-C).
#pragma once

#include <cstddef>

namespace odtn::analysis {

/// Single-copy onion routing transmits exactly once per hop: K + 1.
std::size_t single_copy_cost(std::size_t num_relays);

/// Multi-copy upper bound: the source pays 1 + 2(L-1) to place L copies
/// into R_1 (spray-and-wait augmentation), and each copy pays at most K
/// further hops: 1 + 2(L-1) + KL <= (K+2)L.
std::size_t multi_copy_cost_bound(std::size_t num_relays, std::size_t copies);

/// Non-anonymous reference point: any DTN routing needs no more than 2L
/// transmissions when delay is ignored (spray L-1 copies, each copy is
/// handed to the destination directly).
std::size_t non_anonymous_cost(std::size_t copies);

}  // namespace odtn::analysis
