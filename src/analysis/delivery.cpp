#include "analysis/delivery.hpp"

#include <span>
#include <stdexcept>

#include "analysis/hypoexp.hpp"

namespace odtn::analysis {

std::vector<double> opportunistic_onion_rates(
    const graph::ContactRates& graph, NodeId src, NodeId dst,
    const groups::GroupDirectory& directory,
    const std::vector<GroupId>& relay_groups) {
  if (relay_groups.empty()) {
    throw std::invalid_argument("opportunistic_onion_rates: no relay groups");
  }
  std::vector<double> rates;
  rates.reserve(relay_groups.size() + 1);

  // First hop: src into any member of R_1.
  rates.push_back(graph.rate_to_set(src, directory.members(relay_groups[0])));

  // Middle hops: average over the possible holders in R_{k-1}, anycast sum
  // into R_k.
  for (std::size_t k = 1; k < relay_groups.size(); ++k) {
    rates.push_back(graph.mean_set_to_set_rate(
        directory.members(relay_groups[k - 1]),
        directory.members(relay_groups[k])));
  }

  // Last hop: average over the possible holders in R_K, single target dst.
  rates.push_back(graph.mean_set_to_set_rate(
      directory.members(relay_groups.back()), std::span<const NodeId>(&dst, 1)));

  return rates;
}

double delivery_rate(const std::vector<double>& hop_rates, double deadline) {
  return delivery_rate(hop_rates, deadline, 1);
}

double delivery_rate(const std::vector<double>& hop_rates, double deadline,
                     std::size_t copies) {
  if (copies == 0) {
    throw std::invalid_argument("delivery_rate: copies must be >= 1");
  }
  std::vector<double> scaled;
  scaled.reserve(hop_rates.size());
  for (double r : hop_rates) {
    // A hop with zero aggregate rate never completes: on trace-trained
    // graphs a relay group can be unreachable from the previous one.
    if (!(r > 0.0)) return 0.0;
    scaled.push_back(r * static_cast<double>(copies));
  }
  return hypoexp_cdf(scaled, deadline);
}

double expected_delay(const std::vector<double>& hop_rates,
                      std::size_t copies) {
  if (copies == 0) {
    throw std::invalid_argument("expected_delay: copies must be >= 1");
  }
  return hypoexp_mean(hop_rates) / static_cast<double>(copies);
}

}  // namespace odtn::analysis
