// Delivery-rate model: the opportunistic onion path (Sec. IV-A / IV-B).
//
// The anycast property of group onion routing enters through the per-hop
// rates of Eq. 4: the holder may forward to *any* member of the next
// group, so each hop's rate aggregates contact rates into the whole group.
#pragma once

#include <vector>

#include "graph/contact_rates.hpp"
#include "groups/group_directory.hpp"
#include "util/ids.hpp"

namespace odtn::analysis {

/// The per-hop rates lambda_1..lambda_{K+1} of Eq. 4 for a message from
/// `src` to `dst` via the relay groups R_1..R_K:
///   lambda_1     = sum_j rate(src, r_{1,j})              (anycast into R_1)
///   lambda_k     = avg_i sum_j rate(r_{k-1,i}, r_{k,j})  (2 <= k <= K)
///   lambda_{K+1} = avg_j rate(r_{K,j}, dst)              (last hop to dst)
std::vector<double> opportunistic_onion_rates(
    const graph::ContactRates& graph, NodeId src, NodeId dst,
    const groups::GroupDirectory& directory,
    const std::vector<GroupId>& relay_groups);

/// Single-copy delivery rate within deadline T (Eq. 6): hypoexponential
/// CDF over the per-hop rates.
double delivery_rate(const std::vector<double>& hop_rates, double deadline);

/// L-copy delivery rate (Eq. 7): each hop's rate is multiplied by L,
/// reflecting that L replicas race through every group-to-group hop
/// (expected per-hop delay divides by L).
double delivery_rate(const std::vector<double>& hop_rates, double deadline,
                     std::size_t copies);

/// Expected delivery delay (unbounded deadline) for L copies.
double expected_delay(const std::vector<double>& hop_rates,
                      std::size_t copies = 1);

}  // namespace odtn::analysis
