#include "analysis/goodness_of_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odtn::analysis {

double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& model_cdf) {
  if (samples.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double f = model_cdf(samples[i]);
    if (f < 0.0 || f > 1.0) {
      throw std::invalid_argument("ks_statistic: model_cdf out of [0,1]");
    }
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

double ks_critical_value(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ks_critical_value: n == 0");
  double c;
  if (alpha == 0.10) {
    c = 1.224;
  } else if (alpha == 0.05) {
    c = 1.358;
  } else if (alpha == 0.01) {
    c = 1.628;
  } else {
    throw std::invalid_argument(
        "ks_critical_value: supported alphas are 0.10, 0.05, 0.01");
  }
  return c / std::sqrt(static_cast<double>(n));
}

bool ks_test_passes(std::vector<double> samples,
                    const std::function<double(double)>& model_cdf,
                    double alpha) {
  std::size_t n = samples.size();
  return ks_statistic(std::move(samples), model_cdf) <
         ks_critical_value(n, alpha);
}

}  // namespace odtn::analysis
