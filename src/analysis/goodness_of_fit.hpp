// Goodness-of-fit testing for the delay models.
//
// The figures only compare delivery-rate *means*; a stronger validation is
// distributional: do simulated end-to-end delays actually follow the
// hypoexponential law of the opportunistic onion path? The one-sample
// Kolmogorov-Smirnov test answers that (used in tests/analysis and the
// examples). For g = 1 the model is exact, so KS must accept; for g > 1
// the inter-group averaging of Eq. 4 makes it an approximation, and the KS
// distance quantifies by how much.
#pragma once

#include <functional>
#include <vector>

namespace odtn::analysis {

/// One-sample Kolmogorov-Smirnov statistic: sup_x |F_empirical - F_model|.
/// `samples` need not be sorted. `model_cdf` must be a proper CDF.
double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& model_cdf);

/// Asymptotic critical value of the one-sample KS test at significance
/// `alpha` (supported: 0.10, 0.05, 0.01) for sample size n: c(alpha)/sqrt(n).
double ks_critical_value(std::size_t n, double alpha);

/// Convenience: true iff the sample is consistent with the model at the
/// given significance level (fail to reject).
bool ks_test_passes(std::vector<double> samples,
                    const std::function<double(double)>& model_cdf,
                    double alpha = 0.05);

}  // namespace odtn::analysis
