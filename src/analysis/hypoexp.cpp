#include "analysis/hypoexp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/lgamma_safe.hpp"

namespace odtn::analysis {

namespace {

void validate(const std::vector<double>& rates) {
  if (rates.empty()) {
    throw std::invalid_argument("hypoexp: need >= 1 stage");
  }
  for (double v : rates) {
    if (!(v > 0.0)) {
      throw std::invalid_argument("hypoexp: rates must be positive");
    }
  }
}

// log of the Poisson pmf, for underflow-free weights at large x.
double log_poisson(double x, std::size_t k) {
  return -x + static_cast<double>(k) * std::log(x) -
         detail::lgamma_safe(static_cast<double>(k) + 1.0);
}

}  // namespace

std::vector<double> hypoexp_coefficients(const std::vector<double>& rates) {
  validate(rates);
  // Eq. 5 literally. Only meaningful for well-separated rates; the CDF
  // below never uses this path (it uses uniformization, which has no
  // degeneracy problem). Kept as the paper's closed form for reference and
  // for tests on distinct rates.
  std::vector<double> coeff(rates.size());
  for (std::size_t k = 0; k < rates.size(); ++k) {
    long double a = 1.0L;
    for (std::size_t j = 0; j < rates.size(); ++j) {
      if (j == k) continue;
      long double diff = static_cast<long double>(rates[j]) - rates[k];
      if (diff == 0.0L) {
        throw std::invalid_argument(
            "hypoexp_coefficients: duplicate rates have no partial-fraction "
            "form; use hypoexp_cdf");
      }
      a *= rates[j] / diff;
    }
    coeff[k] = static_cast<double>(a);
  }
  return coeff;
}

double hypoexp_cdf(const std::vector<double>& rates, double t) {
  validate(rates);
  if (t <= 0.0) return 0.0;
  if (rates.size() == 1) return -std::expm1(-rates[0] * t);

  // Uniformization of the absorbing birth chain 0 -> 1 -> ... -> n.
  // Exact for any rate multiset (unlike the partial-fraction form, which
  // degenerates for equal rates), and unconditionally stable: every term
  // is non-negative, so no cancellation occurs.
  const std::size_t n = rates.size();
  const double uniform_rate = *std::max_element(rates.begin(), rates.end());
  const double x = uniform_rate * t;

  // Transient distribution over states 0..n-1 after k DTMC jumps.
  std::vector<double> v(n, 0.0);
  v[0] = 1.0;

  // Accumulate P(still transient at t) = sum_k pois(k; x) * mass_k.
  double survival = 0.0;
  double weight_covered = 0.0;
  const std::size_t k_max =
      static_cast<std::size_t>(x + 12.0 * std::sqrt(x + 1.0) + 60.0);
  for (std::size_t k = 0; k <= k_max; ++k) {
    double pois = std::exp(log_poisson(x, k));
    double mass = 0.0;
    for (double vi : v) mass += vi;
    survival += pois * mass;
    weight_covered += pois;
    if (weight_covered > 1.0 - 1e-15 || mass < 1e-18) break;

    // One DTMC step: state i advances with probability rates[i]/uniform.
    for (std::size_t i = n; i-- > 0;) {
      double advance = rates[i] / uniform_rate;
      double moving = v[i] * advance;
      v[i] -= moving;
      if (i + 1 < n) v[i + 1] += moving;
      // moving out of the last state is absorption.
    }
  }
  // Poisson tail not covered is all "still transient" at worst; survival is
  // already an underestimate by at most (1 - weight_covered) <= 1e-15 * mass.
  return std::clamp(1.0 - survival, 0.0, 1.0);
}

double hypoexp_quantile(const std::vector<double>& rates, double q) {
  validate(rates);
  if (!(q >= 0.0) || q >= 1.0) {
    throw std::invalid_argument("hypoexp_quantile: q must be in [0, 1)");
  }
  if (q == 0.0) return 0.0;
  // Bracket: the mean plus enough standard deviations always covers q < 1;
  // grow geometrically to be safe.
  double hi = hypoexp_mean(rates);
  while (hypoexp_cdf(rates, hi) < q) hi *= 2.0;
  double lo = 0.0;
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12 * (1.0 + hi); ++iter) {
    double mid = 0.5 * (lo + hi);
    if (hypoexp_cdf(rates, mid) >= q) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double hypoexp_mean(const std::vector<double>& rates) {
  validate(rates);
  double mean = 0.0;
  for (double r : rates) mean += 1.0 / r;
  return mean;
}

}  // namespace odtn::analysis
