// Hypoexponential distribution: sum of independent exponential stages.
//
// The opportunistic onion path model (Sec. IV-A) treats the end-to-end
// delay as the sum of eta = K+1 exponential hop delays with rates
// lambda_1..lambda_eta; its CDF gives the delivery rate (Eq. 6):
//
//   P(T) = sum_k A_k * (1 - e^{-lambda_k T}),
//   A_k  = prod_{j != k} lambda_j / (lambda_j - lambda_k)      (Eq. 5)
//
// The partial-fraction coefficients A_k blow up when two rates are close,
// so the CDF is evaluated by *uniformization* of the absorbing birth chain
// instead: exact for any rate multiset (equal rates included), with only
// non-negative terms, hence no cancellation. Eq. 5's closed form is still
// exposed (hypoexp_coefficients) for well-separated rates.
#pragma once

#include <vector>

namespace odtn::analysis {

/// CDF of the hypoexponential distribution at `t` for the given stage
/// rates. All rates must be positive; `t < 0` yields 0. A single stage
/// degenerates to the exponential CDF.
double hypoexp_cdf(const std::vector<double>& rates, double t);

/// Mean of the distribution: sum of 1/rate.
double hypoexp_mean(const std::vector<double>& rates);

/// Quantile function (inverse CDF) by bisection: the smallest t with
/// CDF(t) >= q. q must be in [0, 1); accurate to ~1e-9 relative.
/// Answers "what deadline delivers q of the messages?" — the planning
/// question dual to Eq. 6.
double hypoexp_quantile(const std::vector<double>& rates, double q);

/// The coefficients A_k of Eq. 5, which exist only for pairwise-distinct
/// rates (throws std::invalid_argument on duplicates). They sum to 1.
std::vector<double> hypoexp_coefficients(const std::vector<double>& rates);

}  // namespace odtn::analysis
