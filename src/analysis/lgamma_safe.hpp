#pragma once

#include <cmath>

#include <math.h>

namespace odtn::analysis::detail {

// glibc's lgamma writes the process-global `signgam`, which is a data race
// when the experiment engine evaluates analytical models on worker threads.
// Every caller in this library passes a positive argument, so the sign is
// irrelevant; use the reentrant form where the platform provides it.
inline double lgamma_safe(double x) {
#if defined(__GLIBC__) || defined(__linux__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace odtn::analysis::detail
