#include "analysis/traceable.hpp"

#include <cmath>
#include <stdexcept>

namespace odtn::analysis {

namespace {

void check_p(double p) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("traceable rate: p must be in [0, 1]");
  }
}

}  // namespace

double geometric_run_second_moment(std::size_t eta, double p) {
  check_p(p);
  double sum = 0.0;
  double pk = 1.0;
  for (std::size_t k = 1; k <= eta; ++k) {
    pk *= p;
    sum += static_cast<double>(k) * static_cast<double>(k) * pk * (1.0 - p);
  }
  return sum;
}

double traceable_rate_paper(std::size_t eta, double p) {
  check_p(p);
  if (eta == 0) return 0.0;
  // C_seg ~= eta / 2 segments, each contributing E[X^2] (Eq. 12).
  double segments = static_cast<double>(eta) / 2.0;
  double e_x2 = geometric_run_second_moment(eta, p);
  double rate = segments * e_x2 / (static_cast<double>(eta) * eta);
  return std::min(rate, 1.0);
}

double traceable_rate_exact(std::size_t eta, double p) {
  check_p(p);
  if (eta == 0) return 0.0;
  if (p == 1.0) return 1.0;
  double expect = 0.0;
  for (std::size_t i = 1; i <= eta; ++i) {
    double left = (i > 1) ? (1.0 - p) : 1.0;
    double pk = 1.0;
    for (std::size_t k = 1; i + k - 1 <= eta; ++k) {
      pk *= p;
      double right = (i + k - 1 < eta) ? (1.0 - p) : 1.0;
      expect += static_cast<double>(k) * static_cast<double>(k) * left * pk *
                right;
    }
  }
  return expect / (static_cast<double>(eta) * eta);
}

}  // namespace odtn::analysis
