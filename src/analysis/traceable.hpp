// Traceable-rate model (Sec. IV-D).
//
// A path of eta hops is represented as an eta-bit string; bit i is 1 iff
// the sender of hop i is compromised (probability p = c/n each). The
// traceable rate is E[ sum_i run_i^2 ] / eta^2 over maximal runs of 1s
// (Eq. 1). Two evaluations are provided:
//
//  * traceable_rate_paper  — the paper's approximation (Eqs. 8-12): the
//    number of compromised segments is approximated by eta/2 and each
//    segment's squared length by the geometric series
//    sum_k k^2 p^k (1-p). Accurate in the small-p regime the paper
//    assumes.
//  * traceable_rate_exact  — the exact expectation, by enumerating every
//    (start, length) a maximal run can take:
//    P(maximal run of length k starts at i) =
//        [i > 1](1-p) * p^k * [i+k-1 < eta](1-p).
//    This is what the simulation converges to (verified by Monte Carlo
//    property tests).
#pragma once

#include <cstddef>

namespace odtn::analysis {

/// The paper's closed-form approximation, Eqs. 8-12. `eta` is the hop
/// count (K+1); `p` = c/n is the per-node compromise probability.
double traceable_rate_paper(std::size_t eta, double p);

/// Exact expectation of Eq. 1 for i.i.d. Bernoulli(p) sender compromise.
double traceable_rate_exact(std::size_t eta, double p);

/// The truncated geometric second moment sum_{k=1}^{eta} k^2 p^k (1-p)
/// used by the paper approximation (exposed for tests).
double geometric_run_second_moment(std::size_t eta, double p);

}  // namespace odtn::analysis
