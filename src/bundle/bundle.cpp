#include "bundle/bundle.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

namespace odtn::bundle {

namespace {

constexpr std::uint32_t kMagic = 0x4f44544eu;  // "ODTN"
constexpr std::uint8_t kVersion = 1;

void put_f64(util::Bytes& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  util::put_u64le(out, bits);
}

double get_f64(const util::Bytes& in, std::size_t offset) {
  std::uint64_t bits = util::get_u64le(in, offset);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Fragments of the same bundle share (source, creation_time, sequence).
bool same_bundle(const Bundle& a, const Bundle& b) {
  return a.source == b.source && a.creation_time == b.creation_time &&
         a.sequence == b.sequence && a.destination == b.destination &&
         a.total_length == b.total_length;
}

}  // namespace

bool Bundle::age() {
  if (hops_remaining == 0) return false;
  --hops_remaining;
  return true;
}

util::Bytes encode(const Bundle& bundle) {
  util::Bytes out;
  out.reserve(50 + bundle.payload.size());
  util::put_u32le(out, kMagic);
  out.push_back(kVersion);
  out.push_back(bundle.is_fragment ? 1 : 0);
  util::put_u32le(out, bundle.source);
  util::put_u32le(out, bundle.destination);
  put_f64(out, bundle.creation_time);
  util::put_u32le(out, bundle.sequence);
  put_f64(out, bundle.lifetime);
  util::put_u32le(out, bundle.hops_remaining);
  util::put_u32le(out, bundle.fragment_offset);
  util::put_u32le(out, bundle.total_length);
  util::put_u32le(out, static_cast<std::uint32_t>(bundle.payload.size()));
  util::append(out, bundle.payload);
  return out;
}

std::optional<Bundle> decode(const util::Bytes& wire) {
  constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4 + 4 + 8 + 4 + 8 + 4 + 4 +
                                      4 + 4;
  if (wire.size() < kHeaderSize) return std::nullopt;
  std::size_t at = 0;
  if (util::get_u32le(wire, at) != kMagic) return std::nullopt;
  at += 4;
  if (wire[at++] != kVersion) return std::nullopt;
  std::uint8_t frag_flag = wire[at++];
  if (frag_flag > 1) return std::nullopt;

  Bundle b;
  b.is_fragment = frag_flag == 1;
  b.source = util::get_u32le(wire, at);
  at += 4;
  b.destination = util::get_u32le(wire, at);
  at += 4;
  b.creation_time = get_f64(wire, at);
  at += 8;
  b.sequence = util::get_u32le(wire, at);
  at += 4;
  b.lifetime = get_f64(wire, at);
  at += 8;
  b.hops_remaining = util::get_u32le(wire, at);
  at += 4;
  b.fragment_offset = util::get_u32le(wire, at);
  at += 4;
  b.total_length = util::get_u32le(wire, at);
  at += 4;
  std::uint32_t payload_len = util::get_u32le(wire, at);
  at += 4;
  if (wire.size() != at + payload_len) return std::nullopt;
  b.payload.assign(wire.begin() + static_cast<long>(at), wire.end());

  if (b.is_fragment) {
    if (b.fragment_offset > b.total_length ||
        b.payload.size() > b.total_length - b.fragment_offset) {
      return std::nullopt;
    }
  } else if (b.fragment_offset != 0) {
    return std::nullopt;
  }
  if (!(b.lifetime >= 0.0) || !(b.creation_time == b.creation_time)) {
    return std::nullopt;  // negative lifetime or NaN creation time
  }
  return b;
}

std::vector<Bundle> fragment(const Bundle& bundle, std::size_t mtu) {
  if (mtu == 0) throw std::invalid_argument("fragment: mtu must be > 0");
  if (bundle.is_fragment) {
    throw std::invalid_argument("fragment: input is already a fragment");
  }
  std::vector<Bundle> out;
  if (bundle.payload.size() <= mtu) {
    out.push_back(bundle);
    return out;
  }
  std::size_t total = bundle.payload.size();
  for (std::size_t offset = 0; offset < total; offset += mtu) {
    Bundle f = bundle;
    f.is_fragment = true;
    f.fragment_offset = static_cast<std::uint32_t>(offset);
    f.total_length = static_cast<std::uint32_t>(total);
    std::size_t take = std::min(mtu, total - offset);
    f.payload.assign(bundle.payload.begin() + static_cast<long>(offset),
                     bundle.payload.begin() + static_cast<long>(offset + take));
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<Bundle> reassemble(const std::vector<Bundle>& fragments) {
  if (fragments.empty()) return std::nullopt;

  // A lone unfragmented bundle "reassembles" to itself.
  if (fragments.size() == 1 && !fragments[0].is_fragment) {
    return fragments[0];
  }

  const Bundle& head = fragments.front();
  for (const auto& f : fragments) {
    if (!f.is_fragment || !same_bundle(f, head)) return std::nullopt;
  }

  std::size_t total = head.total_length;
  util::Bytes data(total, 0);
  std::vector<bool> have(total, false);
  for (const auto& f : fragments) {
    for (std::size_t i = 0; i < f.payload.size(); ++i) {
      std::size_t pos = f.fragment_offset + i;
      if (pos >= total) return std::nullopt;
      if (have[pos] && data[pos] != f.payload[i]) {
        return std::nullopt;  // conflicting duplicate content
      }
      data[pos] = f.payload[i];
      have[pos] = true;
    }
  }
  if (!std::all_of(have.begin(), have.end(), [](bool b) { return b; })) {
    return std::nullopt;  // gaps remain
  }

  Bundle whole = head;
  whole.is_fragment = false;
  whole.fragment_offset = 0;
  whole.total_length = 0;
  whole.payload = std::move(data);
  // The reassembled bundle's hop budget is the most conservative of its
  // fragments' (each fragment traveled independently).
  for (const auto& f : fragments) {
    whole.hops_remaining = std::min(whole.hops_remaining, f.hops_remaining);
  }
  return whole;
}

}  // namespace odtn::bundle
