// Bundle-layer data format (RFC 9171-inspired, compact binary encoding).
//
// The paper situates anonymous DTN routing "in the Bundle layer which is
// located between the transport and application layers" (Sec. I). This
// module provides that layer: a bundle carries a payload (here: an onion
// wire packet or application data) plus the primary-block metadata DTN
// forwarding needs — endpoints, creation time, lifetime, hop limit — and
// supports fragmentation/reassembly for payloads larger than a contact's
// transfer budget.
//
// Anonymity note: when a bundle carries an onion, the primary block's
// source/destination fields hold *group endpoints and the next-hop info
// only* at the discretion of the routing layer; this module does not
// decide what goes in them, it only encodes/decodes faithfully.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace odtn::bundle {

/// Endpoint identifier. kNullEid models the RFC's "dtn:none" (used for
/// anonymous bundles whose true source is deliberately omitted).
using Eid = std::uint32_t;
inline constexpr Eid kNullEid = 0xffffffffu;

struct Bundle {
  // --- primary block ---
  Eid source = kNullEid;
  Eid destination = kNullEid;
  /// Creation time and sequence number uniquely identify a bundle
  /// (together with `source`).
  double creation_time = 0.0;
  std::uint32_t sequence = 0;
  /// Seconds (or simulation time units) after creation_time at which the
  /// bundle expires and must be discarded by any holder.
  double lifetime = 0.0;
  /// Remaining forwards permitted; decremented by age().
  std::uint32_t hops_remaining = 64;

  // --- fragment fields (meaningful iff is_fragment) ---
  bool is_fragment = false;
  std::uint32_t fragment_offset = 0;
  std::uint32_t total_length = 0;  // of the original payload

  // --- payload block ---
  util::Bytes payload;

  /// Expiry check against an absolute clock.
  bool expired(double now) const { return now > creation_time + lifetime; }

  /// Records one forwarding hop; returns false (and does not decrement)
  /// when the hop limit is exhausted.
  bool age();

  friend bool operator==(const Bundle&, const Bundle&) = default;
};

/// Serializes a bundle to its wire encoding.
util::Bytes encode(const Bundle& bundle);

/// Decodes a wire encoding; nullopt on malformed input (bad magic, bad
/// version, truncation, trailing bytes, fragment fields out of range).
std::optional<Bundle> decode(const util::Bytes& wire);

/// Splits a bundle's payload into fragments of at most `mtu` payload bytes
/// each (RFC 9171 §5.8 semantics: all primary fields are copied, fragment
/// offset/total set). A bundle that already fits is returned unchanged as
/// a single element. Throws std::invalid_argument for mtu == 0 or an
/// already-fragmented input.
std::vector<Bundle> fragment(const Bundle& bundle, std::size_t mtu);

/// Reassembles fragments of one bundle (any order; duplicates tolerated).
/// Returns nullopt while pieces are missing or if fragments are
/// inconsistent (mismatched ids/total length, overlapping-but-different
/// content).
std::optional<Bundle> reassemble(const std::vector<Bundle>& fragments);

}  // namespace odtn::bundle
