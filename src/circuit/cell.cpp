#include "circuit/cell.hpp"

#include <cstring>
#include <stdexcept>

namespace odtn::circuit {

namespace {

bool known_command(std::uint8_t c) {
  return c >= static_cast<std::uint8_t>(CellCommand::kCreate) &&
         c <= static_cast<std::uint8_t>(CellCommand::kPadding);
}

}  // namespace

const char* cell_command_name(CellCommand command) {
  switch (command) {
    case CellCommand::kCreate:
      return "create";
    case CellCommand::kCreated:
      return "created";
    case CellCommand::kExtend:
      return "extend";
    case CellCommand::kRelay:
      return "relay";
    case CellCommand::kDestroy:
      return "destroy";
    case CellCommand::kPadding:
      return "padding";
  }
  return "unknown";
}

CellCodec::CellCodec(std::size_t cell_size) : cell_size_(cell_size) {
  if (cell_size_ < kMinCellSize || cell_size_ > kMaxCellSize) {
    throw std::invalid_argument("CellCodec: cell_size out of range");
  }
  body_size_ = cell_size_ - kCellHeaderSize - crypto::kAeadNonceSize -
               crypto::kAeadTagSize;
  max_payload_ = body_size_ - kCellBodyLenSize;
}

std::size_t CellCodec::cells_for(std::size_t bytes) const {
  if (bytes == 0) return 1;
  return (bytes + max_payload_ - 1) / max_payload_;
}

void CellCodec::seal_into(CircuitId circuit_id, CellCommand command,
                          std::span<const std::uint8_t> payload,
                          const util::Bytes& key, crypto::Drbg& drbg,
                          util::Bytes& out, CellScratch& scratch) const {
  if (payload.size() > max_payload_) {
    throw std::invalid_argument("CellCodec::seal: payload exceeds capacity");
  }
  drbg.generate_into(crypto::kAeadNonceSize, scratch.nonce);

  // Body plaintext: length prefix, payload, zero padding (hidden by the
  // cipher) out to the constant body size.
  scratch.body.assign(body_size_, 0);
  scratch.body[0] = static_cast<std::uint8_t>(payload.size());
  scratch.body[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  if (!payload.empty()) {
    std::memcpy(scratch.body.data() + kCellBodyLenSize, payload.data(),
                payload.size());
  }

  out.resize(cell_size_);
  out[0] = kCellVersion;
  out[1] = static_cast<std::uint8_t>(circuit_id);
  out[2] = static_cast<std::uint8_t>(circuit_id >> 8);
  out[3] = static_cast<std::uint8_t>(circuit_id >> 16);
  out[4] = static_cast<std::uint8_t>(circuit_id >> 24);
  out[5] = static_cast<std::uint8_t>(command);
  std::memcpy(out.data() + kCellHeaderSize, scratch.nonce.data(),
              crypto::kAeadNonceSize);

  crypto::aead_seal_into(
      key, scratch.nonce,
      std::span<const std::uint8_t>(out.data(), kCellHeaderSize), scratch.body,
      scratch.sealed, scratch.aead);
  std::memcpy(out.data() + kCellHeaderSize + crypto::kAeadNonceSize,
              scratch.sealed.data(), scratch.sealed.size());
}

util::Bytes CellCodec::seal(CircuitId circuit_id, CellCommand command,
                            std::span<const std::uint8_t> payload,
                            const util::Bytes& key, crypto::Drbg& drbg) const {
  util::Bytes out;
  CellScratch scratch;
  seal_into(circuit_id, command, payload, key, drbg, out, scratch);
  return out;
}

bool CellCodec::open_into(const util::Bytes& cell, const util::Bytes& key,
                          Cell& out, CellScratch& scratch) const {
  if (cell.size() != cell_size_) return false;
  if (cell[0] != kCellVersion || !known_command(cell[5])) return false;

  const std::span<const std::uint8_t> aad(cell.data(), kCellHeaderSize);
  const std::span<const std::uint8_t> nonce(cell.data() + kCellHeaderSize,
                                            crypto::kAeadNonceSize);
  const std::span<const std::uint8_t> sealed(
      cell.data() + kCellHeaderSize + crypto::kAeadNonceSize,
      cell.size() - kCellHeaderSize - crypto::kAeadNonceSize);
  if (!crypto::aead_open_into(key, nonce, aad, sealed, scratch.body,
                              scratch.aead)) {
    return false;
  }
  const std::size_t len = static_cast<std::size_t>(scratch.body[0]) |
                          (static_cast<std::size_t>(scratch.body[1]) << 8);
  if (len > max_payload_) return false;

  out.circuit_id = util::get_u32le(cell, 1);
  out.command = static_cast<CellCommand>(cell[5]);
  out.payload.assign(scratch.body.begin() + kCellBodyLenSize,
                     scratch.body.begin() +
                         static_cast<long>(kCellBodyLenSize + len));
  return true;
}

std::optional<Cell> CellCodec::open(const util::Bytes& cell,
                                    const util::Bytes& key) const {
  Cell out;
  CellScratch scratch;
  if (!open_into(cell, key, out, scratch)) return std::nullopt;
  return out;
}

}  // namespace odtn::circuit
