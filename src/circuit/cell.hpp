// Fixed-size cell framing for the wire-accurate circuit layer.
//
// Everything a contact carries in wire mode is a cell of exactly
// `cell_size` bytes (default 512, Tor-style), so an observer of the public
// network sees only a stream of equal-length AEAD blobs — cell counts, not
// packet shapes, are the sole traffic signal (the property the
// compromised-relay adversary measures).
//
// Layout (authenticated with crypto::aead, ChaCha20-Poly1305):
//
//   +---------+------------+---------+-------+----------------------+-----+
//   | version | circuit id | command | nonce | len ‖ payload ‖ pad  | tag |
//   |   1 B   |    4 B     |   1 B   | 12 B  |  (encrypted body)    | 16B |
//   +---------+------------+---------+-------+----------------------+-----+
//   \________ plaintext header _____/
//
// The 6-byte header is plaintext (a relay must route on the circuit id
// without the session key) but is bound into the AEAD as associated data,
// so any header tamper — like any body tamper or truncation — fails the
// tag check and open() reports nullopt. The body is an encrypted 2-byte
// little-endian payload length, the payload, and zero padding out to the
// constant body size; padding is hidden by the cipher.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace odtn::circuit {

/// Circuit identifier carried in every cell header. Manager-local (ids are
/// per-source, as in Tor: the pair (link, id) names the circuit).
using CircuitId = std::uint32_t;

inline constexpr std::uint8_t kCellVersion = 1;
/// Plaintext header: version(1) + circuit id(4) + command(1).
inline constexpr std::size_t kCellHeaderSize = 6;
/// Encrypted length prefix inside the body.
inline constexpr std::size_t kCellBodyLenSize = 2;
/// Default on-the-wire cell size in bytes.
inline constexpr std::size_t kDefaultCellSize = 512;
/// Smallest usable cell: header + nonce + length prefix + 1 payload byte
/// + tag.
inline constexpr std::size_t kMinCellSize =
    kCellHeaderSize + crypto::kAeadNonceSize + kCellBodyLenSize + 1 +
    crypto::kAeadTagSize;
/// Largest cell the 2-byte length prefix can describe.
inline constexpr std::size_t kMaxCellSize = 65535;

/// Cell commands, mirroring the minitor circuit state machine's wire
/// vocabulary: kCreate opens a circuit on a link, kExtend pushes it one
/// hop further, kRelay carries established-circuit traffic, kDestroy tears
/// down, kPadding is cover traffic. kCreated is the acknowledgement.
enum class CellCommand : std::uint8_t {
  kCreate = 1,
  kCreated = 2,
  kExtend = 3,
  kRelay = 4,
  kDestroy = 5,
  kPadding = 6,
};

/// Returns a stable lowercase name ("create", "relay", ...).
const char* cell_command_name(CellCommand command);

/// A decoded cell: header fields plus the authenticated payload.
struct Cell {
  CircuitId circuit_id = 0;
  CellCommand command = CellCommand::kPadding;
  util::Bytes payload;
};

/// Reusable buffers for the _into variants; one scratch per sealer/opener
/// makes steady-state cell processing allocation-free (the PR-4
/// zero-allocation contract).
struct CellScratch {
  util::Bytes nonce;
  util::Bytes body;
  util::Bytes sealed;
  crypto::AeadScratch aead;
};

class CellCodec {
 public:
  /// Throws std::invalid_argument unless kMinCellSize <= cell_size <=
  /// kMaxCellSize.
  explicit CellCodec(std::size_t cell_size = kDefaultCellSize);

  std::size_t cell_size() const { return cell_size_; }
  /// Payload capacity of one cell.
  std::size_t max_payload() const { return max_payload_; }
  /// Number of cells needed to carry `bytes` payload bytes (>= 1: even an
  /// empty packet costs one cell on the wire).
  std::size_t cells_for(std::size_t bytes) const;

  /// Seals one cell of exactly cell_size() bytes. The nonce is drawn from
  /// `drbg`. Throws if `payload` exceeds max_payload().
  util::Bytes seal(CircuitId circuit_id, CellCommand command,
                   std::span<const std::uint8_t> payload,
                   const util::Bytes& key, crypto::Drbg& drbg) const;

  /// In-place seal: writes the cell into `out` (resized, capacity reused).
  void seal_into(CircuitId circuit_id, CellCommand command,
                 std::span<const std::uint8_t> payload, const util::Bytes& key,
                 crypto::Drbg& drbg, util::Bytes& out,
                 CellScratch& scratch) const;

  /// Authenticates and decodes one cell. Returns nullopt on wrong size,
  /// unknown version/command, tampered header/body, or truncation (all
  /// surface as AEAD tag failure or header rejection).
  std::optional<Cell> open(const util::Bytes& cell,
                           const util::Bytes& key) const;

  /// In-place open: decodes into `out` (payload capacity reused). Returns
  /// false exactly when open() would return nullopt.
  bool open_into(const util::Bytes& cell, const util::Bytes& key, Cell& out,
                 CellScratch& scratch) const;

 private:
  std::size_t cell_size_;
  std::size_t body_size_;     // encrypted body: len prefix + payload + pad
  std::size_t max_payload_;
};

}  // namespace odtn::circuit
