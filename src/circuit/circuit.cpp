#include "circuit/circuit.hpp"

namespace odtn::circuit {

const char* circuit_status_name(CircuitStatus status) {
  switch (status) {
    case CircuitStatus::kCreate:
      return "create";
    case CircuitStatus::kCreated:
      return "created";
    case CircuitStatus::kExtend:
      return "extend";
    case CircuitStatus::kEstablished:
      return "established";
    case CircuitStatus::kTruncated:
      return "truncated";
    case CircuitStatus::kDestroyed:
      return "destroyed";
  }
  return "unknown";
}

bool legal_transition(CircuitStatus from, CircuitStatus to) {
  switch (from) {
    case CircuitStatus::kCreate:
      return to == CircuitStatus::kCreated || to == CircuitStatus::kDestroyed;
    case CircuitStatus::kCreated:
      return to == CircuitStatus::kExtend ||
             to == CircuitStatus::kEstablished ||
             to == CircuitStatus::kTruncated ||
             to == CircuitStatus::kDestroyed;
    case CircuitStatus::kExtend:
      return to == CircuitStatus::kExtend ||
             to == CircuitStatus::kEstablished ||
             to == CircuitStatus::kTruncated ||
             to == CircuitStatus::kDestroyed;
    case CircuitStatus::kEstablished:
      return to == CircuitStatus::kTruncated ||
             to == CircuitStatus::kDestroyed;
    case CircuitStatus::kTruncated:
      return to == CircuitStatus::kExtend || to == CircuitStatus::kDestroyed;
    case CircuitStatus::kDestroyed:
      return false;
  }
  return false;
}

bool Circuit::advance(CircuitStatus next) {
  if (!legal_transition(status, next)) return false;
  status = next;
  return true;
}

}  // namespace odtn::circuit
