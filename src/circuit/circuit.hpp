// Per-circuit state machine, mirroring minitor's CircuitStatus.
//
// A circuit is one message-copy's path through the relay groups, viewed as
// a session: it is created on the first contact crossing, extended one hop
// per relay peel, established when the destination opens the final layer,
// truncated when a copy is lost mid-path (crash, blackhole, timeout), and
// destroyed when the protocol abandons it. The legal-transition table is
// enforced by Circuit::advance — an illegal transition is rejected
// deterministically (the state is left unchanged and false is returned),
// never "repaired".
//
//             +----------------------------------------------+
//             v                                              |
//   kCreate -> kCreated -> kExtend --+--> kEstablished -> kTruncated
//      |          |   \      |  ^    |         |             |
//      |          |    \     +--+    |         |             | (rebuild:
//      |          |     +------------+---------+             |  kExtend)
//      v          v                  v         v             v
//   kDestroyed <-------------------------------+--------------
#pragma once

#include <cstdint>

#include "circuit/cell.hpp"
#include "util/bytes.hpp"

namespace odtn::circuit {

enum class CircuitStatus : std::uint8_t {
  kCreate = 0,       // opened locally; no hop crossed yet
  kCreated = 1,      // first hop acknowledged the circuit
  kExtend = 2,       // extending through further relay hops
  kEstablished = 3,  // destination opened the final layer
  kTruncated = 4,    // a copy/path was lost; may be rebuilt (kExtend)
  kDestroyed = 5,    // terminal
};

/// Returns a stable lowercase name ("create", "established", ...).
const char* circuit_status_name(CircuitStatus status);

/// The legal-transition table (see the diagram above). Self-transitions
/// are legal only for kExtend (each additional hop re-enters it).
bool legal_transition(CircuitStatus from, CircuitStatus to);

/// One circuit's record inside a CircuitManager.
struct Circuit {
  CircuitId id = 0;
  CircuitStatus status = CircuitStatus::kCreate;
  /// Current onion packet (crypto mode only; empty otherwise).
  util::Bytes wire;
  /// Relay layers peeled so far.
  std::size_t hops = 0;
  /// Every peel on this circuit matched the policy's expectation so far.
  bool ok = true;

  /// Advances the state machine. Illegal transitions are rejected: the
  /// status is left unchanged and false is returned.
  bool advance(CircuitStatus next);
};

}  // namespace odtn::circuit
