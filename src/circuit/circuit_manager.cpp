#include "circuit/circuit_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::circuit {

namespace {

/// derive_seed stream tag for the circuit layer's DRBG ("circ").
constexpr std::uint64_t kCircuitDrbgStream = 0x63697263;

// kReal seeds from one rng draw (the legacy DRBG-seed position) forked
// onto the circuit sub-stream; kNone draws nothing and seeds a constant
// (the DRBG is never used).
crypto::Drbg make_drbg(bool enabled, util::Rng& rng) {
  if (!enabled) return crypto::Drbg(util::derive_seed(0, kCircuitDrbgStream));
  return crypto::Drbg(util::derive_seed(rng.next(), kCircuitDrbgStream));
}

}  // namespace

CircuitManager::CircuitManager(const CircuitContext& ctx, util::Rng& rng)
    : ctx_(ctx),
      enabled_(ctx.crypto),
      wire_(ctx.wire && ctx.crypto),
      cells_(ctx.cell_size),
      drbg_(make_drbg(enabled_, rng)) {
  if (ctx_.keys == nullptr || ctx_.codec == nullptr) {
    throw std::invalid_argument("CircuitManager: null keys or codec");
  }
  m_peels_ = metrics::counter(ctx_.metrics, "routing.peels");
  m_peel_failures_ = metrics::counter(ctx_.metrics, "routing.peel_failures");
  if (wire_) {
    m_wire_cells_ = metrics::counter(ctx_.metrics, "circuit.wire_cells");
    m_wire_bytes_ = metrics::counter(ctx_.metrics, "circuit.wire_bytes");
  }
}

CircuitId CircuitManager::open(const util::Bytes& payload, NodeId dest,
                               const std::vector<GroupId>& path,
                               GroupId destination_group) {
  Circuit c;
  c.id = static_cast<CircuitId>(circuits_.size());
  if (enabled_) {
    c.wire = ctx_.codec->build(payload, dest, path, *ctx_.keys, drbg_,
                               destination_group);
  }
  circuits_.push_back(std::move(c));
  return circuits_.back().id;
}

CircuitId CircuitManager::clone(CircuitId id) {
  Circuit c;
  c.id = static_cast<CircuitId>(circuits_.size());
  c.wire = at(id).wire;
  circuits_.push_back(std::move(c));
  return circuits_.back().id;
}

void CircuitManager::truncate(CircuitId id) {
  if (!at(id).advance(CircuitStatus::kTruncated)) {
    at(id).advance(CircuitStatus::kDestroyed);
  }
}

void CircuitManager::advance_on_hop(Circuit& c) {
  if (c.status == CircuitStatus::kCreate) {
    c.advance(CircuitStatus::kCreated);
  } else {
    // Legal from kCreated, kExtend, and kTruncated (rebuild); rejected —
    // deterministically, state unchanged — from anywhere else.
    c.advance(CircuitStatus::kExtend);
  }
}

void CircuitManager::cross_link(Circuit& c, NodeId sender, NodeId receiver,
                                CellCommand command) {
  const util::Bytes& sk = ctx_.keys->session_key(sender, receiver);
  if (!wire_) {
    // Legacy secure link: the whole packet as one AEAD blob. Content is
    // preserved (seal-then-open round trip); only a failed open is
    // observable.
    drbg_.generate_into(crypto::kAeadNonceSize, nonce_);
    crypto::aead_seal_into(sk, nonce_, {}, c.wire, sealed_, link_scratch_);
    if (!crypto::aead_open_into(sk, nonce_, {}, sealed_, opened_,
                                link_scratch_)) {
      link_ok_ = false;
    }
    return;
  }
  // Wire mode: fragment the packet into fixed-size cells, each sealed
  // separately; the receiver ingests them through on_cell() and the
  // reassembly must reproduce the packet bit-for-bit.
  reasm_.clear();
  const std::size_t chunk = cells_.max_payload();
  const std::size_t n = cells_.cells_for(c.wire.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t off = i * chunk;
    const std::size_t len = std::min(chunk, c.wire.size() - off);
    cells_.seal_into(c.id, command,
                     std::span<const std::uint8_t>(c.wire.data() + off, len),
                     sk, drbg_, cell_buf_, cell_scratch_);
    ++wire_cells_;
    wire_bytes_ += cells_.cell_size();
    m_wire_cells_.inc();
    m_wire_bytes_.inc(cells_.cell_size());
    if (ctx_.tap) {
      ctx_.tap(CellEvent{sender, receiver, c.id, command, cells_.cell_size()});
    }
    if (!on_cell(sk, cell_buf_)) link_ok_ = false;
  }
  if (reasm_ != c.wire) link_ok_ = false;
}

bool CircuitManager::on_cell(const util::Bytes& key, const util::Bytes& cell) {
  if (!cells_.open_into(cell, key, cell_out_, cell_scratch_)) return false;
  util::append(reasm_, cell_out_.payload);
  return true;
}

bool CircuitManager::peel_with(Circuit& c, const util::Bytes& key,
                               const Expect& expect) {
  m_peels_.inc();
  auto v = ctx_.codec->peel_view(c.wire, key, drbg_, peel_scratch_);
  bool ok = v.has_value();
  if (ok) {
    switch (expect.kind) {
      case Expect::Kind::kAny:
        break;
      case Expect::Kind::kRelayTo:
        ok = v->type == onion::Peeled::Type::kRelay &&
             v->next_group == expect.next_group;
        break;
      case Expect::Kind::kDeliverTo:
        ok = v->type == onion::Peeled::Type::kDeliver &&
             v->dest == expect.dest;
        break;
      case Expect::Kind::kDeliverGroupTo:
        ok = v->type == onion::Peeled::Type::kDeliverGroup &&
             v->next_group == expect.next_group;
        break;
    }
  }
  if (!ok) {
    c.ok = false;
    m_peel_failures_.inc();
    return false;
  }
  c.wire.assign(v->next_wire.begin(), v->next_wire.end());
  ++c.hops;
  return true;
}

bool CircuitManager::final_peel(Circuit& c, NodeId dst,
                                const util::Bytes& payload) {
  m_peels_.inc();
  auto v =
      ctx_.codec->peel_view(c.wire, ctx_.keys->inbox_key(dst), drbg_,
                            peel_scratch_);
  const bool ok = v.has_value() && v->type == onion::Peeled::Type::kFinal &&
                  v->payload.size() == payload.size() &&
                  std::equal(v->payload.begin(), v->payload.end(),
                             payload.begin());
  if (!ok) {
    c.ok = false;
    m_peel_failures_.inc();
  }
  return ok;
}

bool CircuitManager::extend(CircuitId id, NodeId sender, NodeId receiver,
                            const util::Bytes& key, const Expect& expect) {
  Circuit& c = at(id);
  const CellCommand cmd = (c.status == CircuitStatus::kCreate)
                              ? CellCommand::kCreate
                              : CellCommand::kExtend;
  advance_on_hop(c);
  if (!enabled_) return true;
  cross_link(c, sender, receiver, cmd);
  return peel_with(c, key, expect);
}

void CircuitManager::send(CircuitId id, NodeId sender, NodeId receiver) {
  Circuit& c = at(id);
  if (c.status == CircuitStatus::kCreate) c.advance(CircuitStatus::kCreated);
  if (!enabled_) return;
  cross_link(c, sender, receiver, CellCommand::kRelay);
}

bool CircuitManager::deliver(CircuitId id, NodeId sender, NodeId dst,
                             const util::Bytes& payload) {
  Circuit& c = at(id);
  bool ok = true;
  if (enabled_) {
    cross_link(c, sender, dst, CellCommand::kRelay);
    ok = final_peel(c, dst, payload);
  }
  c.advance(CircuitStatus::kEstablished);
  return ok;
}

bool CircuitManager::deliver_local(CircuitId id, NodeId dst,
                                   const util::Bytes& payload) {
  Circuit& c = at(id);
  bool ok = true;
  if (enabled_) ok = final_peel(c, dst, payload);
  c.advance(CircuitStatus::kEstablished);
  return ok;
}

}  // namespace odtn::circuit
