// CircuitManager — the one audited build/peel/forward implementation the
// onion routing protocols are thin policies over.
//
// The manager owns every cryptographic operation of a message's lifetime:
// building the layered onion (open), crossing a contact under the pair's
// X25519/HKDF session key (send/extend/deliver), peeling a layer at the
// receiver, and the per-circuit state machine (circuit.hpp). Policies —
// single-copy walking, spray-and-wait ticketing, retransmission — decide
// *when* and *between whom* these operations happen; they never touch key
// material or wire bytes themselves.
//
// Two link representations, selected by CircuitContext::wire:
//   * off (default) — the whole onion packet crosses the contact as one
//     AEAD blob, exactly the historical "secure link" of Algorithms 1-2.
//   * on — the packet is fragmented into fixed-size cells (cell.hpp), each
//     sealed separately under the session key; the receiver authenticates
//     and reassembles via on_cell(). Every cell is reported to the
//     optional CellTap (the byte-accurate adversary observation point) and
//     accounted in wire_cells()/wire_bytes().
//
// Determinism: in CryptoMode::kNone the manager draws no randomness and
// performs no crypto — only the state machine advances — so the zero-knob
// configuration's RNG sequence and metrics are untouched. In kReal the
// constructor makes exactly one rng draw (the legacy DRBG-seed position)
// and forks the circuit layer's DRBG onto its own derive_seed sub-stream.
#pragma once

#include <functional>
#include <vector>

#include "circuit/cell.hpp"
#include "circuit/circuit.hpp"
#include "crypto/drbg.hpp"
#include "groups/key_manager.hpp"
#include "metrics/metrics.hpp"
#include "onion/onion.hpp"
#include "util/rng.hpp"

namespace odtn::circuit {

/// One sealed cell crossing a contact, as an on-path observer sees it.
struct CellEvent {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  CircuitId circuit_id = 0;
  CellCommand command = CellCommand::kPadding;
  std::size_t bytes = 0;  // always the codec's cell_size
};

/// Per-cell observer; invoked for every cell a contact carries (wire mode
/// only). The compromised-relay experiments attach one to watch actual
/// ciphertext streams.
using CellTap = std::function<void(const CellEvent&)>;

/// Everything a CircuitManager needs; all pointers must outlive it.
struct CircuitContext {
  const groups::KeyManager* keys = nullptr;
  const onion::OnionCodec* codec = nullptr;
  /// CryptoMode::kReal? False = forwarding decisions only, no crypto.
  bool crypto = false;
  /// Observability sink; "routing.peels"/"routing.peel_failures" counters
  /// are registered here (plus "circuit.wire_*" in wire mode). Null = off.
  metrics::Registry* metrics = nullptr;
  /// Fragment contact crossings into fixed-size cells (requires crypto).
  bool wire = false;
  std::size_t cell_size = kDefaultCellSize;
  CellTap tap;
};

class CircuitManager {
 public:
  /// What a relay peel must produce for the circuit to stay verified.
  /// kAny accepts any layer that opens (a sprayed copy's mid-path peer
  /// cannot predict the layer type it holds).
  struct Expect {
    enum class Kind : std::uint8_t {
      kAny,
      kRelayTo,         // kRelay naming this next group
      kDeliverTo,       // kDeliver naming this destination node
      kDeliverGroupTo,  // kDeliverGroup naming this destination group
    };
    Kind kind = Kind::kAny;
    GroupId next_group = kInvalidGroup;
    NodeId dest = kInvalidNode;

    static Expect any() { return {}; }
    static Expect relay_to(GroupId g) {
      return {Kind::kRelayTo, g, kInvalidNode};
    }
    static Expect deliver_to(NodeId d) {
      return {Kind::kDeliverTo, kInvalidGroup, d};
    }
    static Expect deliver_group(GroupId g) {
      return {Kind::kDeliverGroupTo, g, kInvalidNode};
    }
  };

  /// In kReal mode makes exactly one `rng` draw (DRBG seeding); in kNone
  /// mode draws nothing. Throws std::invalid_argument on a null keys/codec
  /// pointer or an out-of-range cell size.
  CircuitManager(const CircuitContext& ctx, util::Rng& rng);

  bool crypto_enabled() const { return enabled_; }
  bool wire_enabled() const { return wire_; }

  /// Every secure-link crossing so far authenticated and (wire mode)
  /// reassembled correctly.
  bool link_ok() const { return link_ok_; }
  /// Every peel on this circuit matched its Expect.
  bool circuit_ok(CircuitId id) const { return at(id).ok; }
  /// The delivered-copy verification bit policies report as
  /// DeliveryResult::crypto_verified.
  bool verified(CircuitId id) const {
    return enabled_ && link_ok_ && at(id).ok;
  }

  // -- Lifecycle ----------------------------------------------------------

  /// Opens a circuit for `payload` to `dest` through `path` (status
  /// kCreate). In kReal mode this builds the layered onion.
  CircuitId open(const util::Bytes& payload, NodeId dest,
                 const std::vector<GroupId>& path,
                 GroupId destination_group = kInvalidGroup);

  /// A sprayed copy: a fresh circuit (status kCreate) sharing `id`'s
  /// current packet.
  CircuitId clone(CircuitId id);

  CircuitStatus status(CircuitId id) const { return at(id).status; }
  std::size_t hops(CircuitId id) const { return at(id).hops; }
  const util::Bytes& wire(CircuitId id) const { return at(id).wire; }
  std::size_t size() const { return circuits_.size(); }

  /// Advances `id`'s state machine; illegal transitions are rejected
  /// (false, state unchanged).
  bool advance(CircuitId id, CircuitStatus next) {
    return at(id).advance(next);
  }
  /// The copy was lost (crash, blackhole, timeout): kTruncated when legal,
  /// else kDestroyed.
  void truncate(CircuitId id);
  void destroy(CircuitId id) { at(id).advance(CircuitStatus::kDestroyed); }

  // -- The wire surface ---------------------------------------------------

  /// Extends the circuit one hop: crosses the contact, peels one layer at
  /// `receiver` with `key` (a group key), checks `expect`, and advances
  /// the state machine (kCreate -> kCreated, then kExtend). Returns false
  /// — and records a peel failure — iff crypto is on and the peel failed
  /// or mismatched; the packet is then left unchanged (the policy keeps
  /// walking, as the legacy protocols did).
  bool extend(CircuitId id, NodeId sender, NodeId receiver,
              const util::Bytes& key, const Expect& expect);

  /// Crosses the contact without peeling (a plain carrier handoff, or a
  /// pass inside the destination group). Status is unchanged.
  void send(CircuitId id, NodeId sender, NodeId receiver);

  /// Final hop: crosses the contact to `dst`, opens the inbox layer, and
  /// checks the payload round-tripped. Advances to kEstablished. Returns
  /// the crypto verdict (true when crypto is off).
  bool deliver(CircuitId id, NodeId sender, NodeId dst,
               const util::Bytes& payload);

  /// Final open at a node already holding the packet (destination-group
  /// circulation ends without a dedicated contact crossing).
  bool deliver_local(CircuitId id, NodeId dst, const util::Bytes& payload);

  /// Receiver-side ingestion of one sealed cell from the current sender:
  /// authenticates under `key`, strips the framing, and appends the body
  /// to the reassembly buffer. Returns false on tamper/truncation. Driven
  /// internally by send/extend/deliver; exposed for the cell-stream
  /// experiments.
  bool on_cell(const util::Bytes& key, const util::Bytes& cell);
  const util::Bytes& reassembled() const { return reasm_; }

  // -- Wire accounting ----------------------------------------------------

  /// Cells/bytes that crossed contacts so far (wire mode; zero otherwise).
  std::uint64_t wire_cells() const { return wire_cells_; }
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Cells one full onion packet costs per contact crossing.
  std::size_t cells_per_packet() const {
    return cells_.cells_for(ctx_.codec->wire_size());
  }
  const CellCodec& cell_codec() const { return cells_; }

  crypto::Drbg& drbg() { return drbg_; }

 private:
  Circuit& at(CircuitId id) { return circuits_[id]; }
  const Circuit& at(CircuitId id) const { return circuits_[id]; }

  /// Moves `c`'s packet across a contact under the pair's session key;
  /// content-preserving (seal-then-open round trip), so only failures and
  /// wire accounting are observable.
  void cross_link(Circuit& c, NodeId sender, NodeId receiver,
                  CellCommand command);
  void advance_on_hop(Circuit& c);
  bool peel_with(Circuit& c, const util::Bytes& key, const Expect& expect);
  bool final_peel(Circuit& c, NodeId dst, const util::Bytes& payload);

  CircuitContext ctx_;
  bool enabled_ = false;
  bool wire_ = false;
  bool link_ok_ = true;
  CellCodec cells_;
  crypto::Drbg drbg_;
  std::vector<Circuit> circuits_;

  metrics::CounterHandle m_peels_;
  metrics::CounterHandle m_peel_failures_;
  metrics::CounterHandle m_wire_cells_;
  metrics::CounterHandle m_wire_bytes_;
  std::uint64_t wire_cells_ = 0;
  std::uint64_t wire_bytes_ = 0;

  // Reused buffers: steady-state link crossings and peels allocate nothing
  // (the PR-4 zero-allocation contract).
  util::Bytes nonce_;
  util::Bytes sealed_;
  util::Bytes opened_;
  util::Bytes cell_buf_;
  util::Bytes reasm_;
  Cell cell_out_;
  CellScratch cell_scratch_;
  crypto::AeadScratch link_scratch_;
  onion::PeelScratch peel_scratch_;
};

}  // namespace odtn::circuit
