#include "core/anonymous_dtn.hpp"

#include <stdexcept>

namespace odtn::core {

AnonymousDtn::AnonymousDtn(std::unique_ptr<graph::ContactGraph> graph,
                           std::unique_ptr<trace::ContactTrace> trace,
                           std::size_t group_size, std::uint64_t seed)
    : graph_(std::move(graph)), trace_(std::move(trace)), rng_(seed) {
  std::size_t n = 0;
  if (graph_ != nullptr) {
    n = graph_->node_count();
    contacts_ = std::make_unique<sim::PoissonContactModel>(*graph_, rng_);
    rates_ = graph_.get();
  } else if (trace_ != nullptr) {
    n = trace_->node_count();
    contacts_ = std::make_unique<sim::TraceContactModel>(*trace_);
    estimated_rates_ =
        std::make_unique<graph::ContactGraph>(trace_->estimate_rates());
    rates_ = estimated_rates_.get();
  } else {
    throw std::invalid_argument("AnonymousDtn: no contact source");
  }
  directory_ = std::make_unique<groups::GroupDirectory>(n, group_size, &rng_);
  keys_ = std::make_unique<groups::KeyManager>(*directory_,
                                               seed ^ 0x6b21f4d98c3e05a7ULL);
  codec_ = std::make_unique<onion::OnionCodec>();
}

AnonymousDtn AnonymousDtn::over_random_graph(std::size_t nodes,
                                             std::size_t group_size,
                                             std::uint64_t seed,
                                             double min_ict, double max_ict) {
  // odtn-lint: allow(rng) — xor-tweaked sub-stream predates
  // util::derive_seed; the sequence is pinned by published figure tables and
  // byte-identity goldens
  util::Rng graph_rng(seed ^ 0x9a3c1b5d7ULL);
  auto g = std::make_unique<graph::ContactGraph>(
      graph::random_contact_graph(nodes, graph_rng, min_ict, max_ict));
  return AnonymousDtn(std::move(g), nullptr, group_size, seed);
}

AnonymousDtn AnonymousDtn::over_graph(graph::ContactGraph graph,
                                      std::size_t group_size,
                                      std::uint64_t seed) {
  return AnonymousDtn(std::make_unique<graph::ContactGraph>(std::move(graph)),
                      nullptr, group_size, seed);
}

AnonymousDtn AnonymousDtn::over_trace(trace::ContactTrace trace,
                                      std::size_t group_size,
                                      std::uint64_t seed) {
  return AnonymousDtn(nullptr,
                      std::make_unique<trace::ContactTrace>(std::move(trace)),
                      group_size, seed);
}

AnonymousDtn AnonymousDtn::over_random_waypoint(
    const mobility::RandomWaypointParams& params, std::size_t group_size,
    std::uint64_t seed) {
  // odtn-lint: allow(rng) — xor-tweaked sub-stream, pinned like the graph
  // stream above
  util::Rng mob_rng(seed ^ 0x52b9a7e31dULL);
  return over_trace(mobility::random_waypoint_trace(params, mob_rng),
                    group_size, seed);
}

std::size_t AnonymousDtn::node_count() const {
  return contacts_->node_count();
}

routing::DeliveryResult AnonymousDtn::send(NodeId src, NodeId dst,
                                           const util::Bytes& payload,
                                           const SendOptions& options) {
  routing::OnionContext ctx;
  ctx.directory = directory_.get();
  ctx.keys = keys_.get();
  ctx.codec = codec_.get();
  ctx.crypto = routing::CryptoMode::kReal;

  routing::MessageSpec spec = options;  // the shared parameter block
  spec.src = src;
  spec.dst = dst;
  spec.payload = payload;

  if (options.copies == 1) {
    routing::SingleCopyOnionRouting protocol(ctx);
    return protocol.route(*contacts_, spec, rng_);
  }
  routing::MultiCopyOnionRouting protocol(ctx, options.spray);
  return protocol.route(*contacts_, spec, rng_);
}

routing::DeliveryResult AnonymousDtn::send_spray_and_wait(NodeId src,
                                                          NodeId dst,
                                                          std::size_t copies,
                                                          Time ttl,
                                                          Time start) {
  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.start = start;
  spec.ttl = ttl;
  spec.copies = copies;
  routing::SprayAndWaitRouting protocol;
  return protocol.route(*contacts_, spec);
}

routing::DeliveryResult AnonymousDtn::send_epidemic(NodeId src, NodeId dst,
                                                    Time ttl, Time start) {
  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.start = start;
  spec.ttl = ttl;
  routing::EpidemicRouting protocol;
  return protocol.route(*contacts_, spec);
}

routing::TpsResult AnonymousDtn::send_threshold_pivot(
    NodeId src, NodeId dst, const util::Bytes& payload, Time ttl,
    routing::TpsOptions options, Time start) {
  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.start = start;
  spec.ttl = ttl;
  spec.payload = payload;
  routing::ThresholdPivotRouting protocol(*directory_, *keys_, options,
                                          routing::CryptoMode::kReal);
  return protocol.route(*contacts_, spec, rng_);
}

}  // namespace odtn::core
