// AnonymousDtn: the library's top-level facade.
//
// Bundles a contact model (random graph or trace), onion-group setup, key
// material, and the routing protocols behind a small API:
//
//   auto net = AnonymousDtn::over_random_graph(100, /*group_size=*/5, seed);
//   auto r = net.send(src, dst, payload, {.num_relays = 3, .ttl = 1800});
//   if (r.delivered) ...
//
// Examples in examples/ use exactly this API; the figure benches use the
// lower-level core/experiment.hpp runner for analysis-vs-simulation rows.
#pragma once

#include <memory>

#include "adversary/adversary.hpp"
#include "graph/contact_graph.hpp"
#include "groups/group_directory.hpp"
#include "mobility/random_waypoint.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "routing/baselines.hpp"
#include "routing/onion_routing.hpp"
#include "routing/threshold_pivot.hpp"
#include "routing/types.hpp"
#include "sim/contact_model.hpp"
#include "trace/contact_trace.hpp"
#include "util/rng.hpp"

namespace odtn::core {

/// Per-message options for AnonymousDtn::send. The shared message
/// parameters (num_relays K, copies L, ttl T, start, ...) come from
/// routing::MessageSpec; src, dst and payload are arguments of send()
/// itself and overwrite whatever the spec base holds.
struct SendOptions : routing::MessageSpec {
  routing::SprayMode spray = routing::SprayMode::kSprayAndWait;
};

class AnonymousDtn {
 public:
  /// A network over a random contact graph (Table II parameters).
  static AnonymousDtn over_random_graph(std::size_t nodes,
                                        std::size_t group_size,
                                        std::uint64_t seed,
                                        double min_ict = 10.0,
                                        double max_ict = 360.0);

  /// A network over an explicit contact graph.
  static AnonymousDtn over_graph(graph::ContactGraph graph,
                                 std::size_t group_size, std::uint64_t seed);

  /// A network replaying a contact trace.
  static AnonymousDtn over_trace(trace::ContactTrace trace,
                                 std::size_t group_size, std::uint64_t seed);

  /// A network whose contacts come from simulated random-waypoint
  /// mobility (geometry-level contact generation).
  static AnonymousDtn over_random_waypoint(
      const mobility::RandomWaypointParams& params, std::size_t group_size,
      std::uint64_t seed);

  /// Sends `payload` anonymously from src to dst with real onion crypto.
  routing::DeliveryResult send(NodeId src, NodeId dst,
                               const util::Bytes& payload,
                               const SendOptions& options = {});

  /// Non-anonymous baselines over the same network, for comparison.
  routing::DeliveryResult send_spray_and_wait(NodeId src, NodeId dst,
                                              std::size_t copies, Time ttl,
                                              Time start = 0.0);
  routing::DeliveryResult send_epidemic(NodeId src, NodeId dst, Time ttl,
                                        Time start = 0.0);

  /// The Threshold Pivot Scheme alternative (Sec. VI-C of the paper), with
  /// real Shamir share splitting and per-share crypto.
  routing::TpsResult send_threshold_pivot(NodeId src, NodeId dst,
                                          const util::Bytes& payload,
                                          Time ttl,
                                          routing::TpsOptions options = {},
                                          Time start = 0.0);

  std::size_t node_count() const;
  const groups::GroupDirectory& directory() const { return *directory_; }
  const groups::KeyManager& keys() const { return *keys_; }
  const graph::ContactGraph& contact_rates() const { return *rates_; }
  util::Rng& rng() { return rng_; }

 private:
  AnonymousDtn(std::unique_ptr<graph::ContactGraph> graph,
               std::unique_ptr<trace::ContactTrace> trace,
               std::size_t group_size, std::uint64_t seed);

  // Exactly one of graph_/trace_ is the contact source; rates_ points to
  // graph_ or holds trace-estimated rates (for analysis helpers).
  std::unique_ptr<graph::ContactGraph> graph_;
  std::unique_ptr<trace::ContactTrace> trace_;
  std::unique_ptr<graph::ContactGraph> estimated_rates_;
  const graph::ContactGraph* rates_ = nullptr;

  // odtn-lint: allow(rng) — declaration only: seeded in the constructor init
  // list from the facade's top-level seed
  util::Rng rng_;
  std::unique_ptr<sim::ContactModel> contacts_;
  std::unique_ptr<groups::GroupDirectory> directory_;
  std::unique_ptr<groups::KeyManager> keys_;
  std::unique_ptr<onion::OnionCodec> codec_;
};

}  // namespace odtn::core
