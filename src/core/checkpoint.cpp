#include "core/checkpoint.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "metrics/writer.hpp"

namespace odtn::core {

namespace {

constexpr const char* kMagic = "odtn.checkpoint.v1";

struct StatField {
  const char* name;
  util::RunningStats ExperimentResult::*member;
};

constexpr StatField kStatFields[] = {
    {"sim_delivered", &ExperimentResult::sim_delivered},
    {"sim_delay", &ExperimentResult::sim_delay},
    {"sim_transmissions", &ExperimentResult::sim_transmissions},
    {"sim_traceable", &ExperimentResult::sim_traceable},
    {"sim_anonymity", &ExperimentResult::sim_anonymity},
    {"ana_delivery", &ExperimentResult::ana_delivery},
    {"ana_traceable_paper", &ExperimentResult::ana_traceable_paper},
    {"ana_traceable_exact", &ExperimentResult::ana_traceable_exact},
    {"ana_anonymity", &ExperimentResult::ana_anonymity},
    {"ana_cost_bound", &ExperimentResult::ana_cost_bound},
    {"ana_cost_non_anonymous", &ExperimentResult::ana_cost_non_anonymous},
    // Loaded-traffic stats (appended in PR 7; the loader tolerates their
    // absence from older checkpoint files, which zero-traffic configs can
    // still resume from).
    {"sim_throughput", &ExperimentResult::sim_throughput},
    {"sim_p99_delay", &ExperimentResult::sim_p99_delay},
};

std::string fmt(double v) { return metrics::format_double(v); }

/// Exact inverse of format_double: from_chars of a shortest-round-trip
/// string recovers the identical double (correctly-rounded, locale-free).
double parse_double(const std::string& token, const std::string& context) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || token.empty()) {
    throw std::runtime_error("checkpoint: bad number '" + token + "' in " +
                             context);
  }
  return v;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("checkpoint: malformed line '" + line + "'");
}

}  // namespace

std::uint64_t checkpoint_config_hash(const ExperimentConfig& c,
                                     const std::string& scenario_tag) {
  std::ostringstream os;
  os << scenario_tag << "|nodes=" << c.nodes << "|min_ict=" << fmt(c.min_ict)
     << "|max_ict=" << fmt(c.max_ict)
     << "|backend=" << static_cast<int>(c.backend)
     << "|deg=" << c.avg_degree << "|comm=" << c.communities
     << "|shards=" << c.group_shards << "|g=" << c.group_size
     << "|K=" << c.num_relays << "|L=" << c.copies << "|ttl=" << fmt(c.ttl)
     << "|p=" << fmt(c.compromise_fraction)
     << "|gap=" << fmt(c.trace_training_gap) << "|seed=" << c.seed
     << "|crypto=" << static_cast<int>(c.crypto)
     << "|spray=" << static_cast<int>(c.spray)
     << "|metrics=" << (c.collect_metrics ? 1 : 0)
     << "|f.up=" << fmt(c.faults.mean_uptime)
     << "|f.down=" << fmt(c.faults.mean_downtime)
     << "|f.pfail=" << fmt(c.faults.p_fail);
  if (c.faults.gilbert_elliott.has_value()) {
    const auto& ge = *c.faults.gilbert_elliott;
    os << "|f.ge=" << fmt(ge.p_good_to_bad) << "," << fmt(ge.p_bad_to_good)
       << "," << fmt(ge.p_fail_good) << "," << fmt(ge.p_fail_bad);
  }
  os << "|f.bh=" << fmt(c.faults.blackhole_fraction)
     << "|f.abort=" << fmt(c.faults.p_run_abort);
  // Traffic/load fields are appended only when the workload engine is on,
  // preserving every pre-traffic config hash (zero-knob configs resume
  // from checkpoints written by older builds).
  if (c.traffic.enabled()) {
    os << "|t.h=" << fmt(c.traffic.horizon)
       << "|t.fwd=" << static_cast<int>(c.load_forwarder)
       << "|t.cap=" << c.buffer_capacity
       << "|t.pol=" << static_cast<int>(c.buffer_policy)
       << "|t.bw=" << c.bandwidth.messages_per_contact << ","
       << fmt(c.bandwidth.mean_duration) << ","
       << fmt(c.bandwidth.transfer_time);
    for (const auto& f : c.traffic.flows) {
      os << "|t.flow=" << static_cast<int>(f.arrival) << "," << fmt(f.rate)
         << "," << fmt(f.burst_factor) << "," << fmt(f.mean_burst) << ","
         << fmt(f.mean_idle) << "," << static_cast<int>(f.priority) << ","
         << f.src_lo << "," << f.src_hi << "," << f.dst_lo << "," << f.dst_hi
         << "," << f.num_relays << "," << f.copies << "," << fmt(f.ttl);
    }
  }
  // Recovery fields follow the same append-only-when-enabled pattern:
  // zero-knob configs hash identically to builds without the layer.
  if (c.recovery.enabled()) {
    const auto& r = c.recovery;
    os << "|r.ack=" << (r.acks ? 1 : 0) << "|r.to=" << fmt(r.retx_timeout)
       << "|r.max=" << r.retx_max << "|r.bo=" << fmt(r.retx_backoff)
       << "|r.j=" << fmt(r.retx_jitter) << "|r.sa=" << fmt(r.suspicion_alpha)
       << "|r.st=" << fmt(r.suspicion_threshold)
       << "|r.so=" << fmt(r.shed_occupancy)
       << "|r.ss=" << fmt(r.shed_saturation)
       << "|r.sp=" << static_cast<int>(r.shed_priority_floor);
  }
  if (c.utility_failure_penalty > 0.0) {
    os << "|r.ufp=" << fmt(c.utility_failure_penalty);
  }
  // Wire-accurate circuit fields: same append-only-when-enabled pattern,
  // so wire-off configs keep every pre-circuit hash.
  if (c.wire_cells) {
    os << "|w.cells=1|w.cs=" << c.cell_size;
  }
  return fnv1a(os.str());
}

void save_checkpoint(const std::string& path, std::uint64_t config_hash,
                     const CheckpointData& data) {
  const ExperimentResult& r = data.result;
  std::ostringstream os;
  os << kMagic << "\n";
  os << "hash " << config_hash << "\n";
  os << "completed " << data.completed_runs << "\n";
  os << "delivered_runs " << r.delivered_runs << "\n";
  for (const StatField& f : kStatFields) {
    util::RunningStats::State s = (r.*(f.member)).state();
    os << "stat " << f.name << " " << s.n << " " << fmt(s.mean) << " "
       << fmt(s.m2) << " " << fmt(s.min) << " " << fmt(s.max) << "\n";
  }
  for (const ExperimentResult::FailedRun& fr : r.failed_runs) {
    std::string msg = fr.message;
    for (char& ch : msg) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    os << "failed " << fr.run << " " << fr.seed << " " << msg << "\n";
  }
  for (const auto& [name, m] : r.metrics.entries()) {
    os << "metric " << name << " " << static_cast<int>(m.kind) << " "
       << static_cast<int>(m.stability);
    switch (m.kind) {
      case metrics::Kind::kCounter:
        os << " " << m.counter;
        break;
      case metrics::Kind::kGauge:
        os << " " << (m.gauge_set ? 1 : 0) << " " << fmt(m.gauge);
        break;
      case metrics::Kind::kHistogram:
      case metrics::Kind::kTimer: {
        const auto& buckets = m.hist.raw_buckets();
        os << " " << m.hist.count() << " " << fmt(m.hist.sum()) << " "
           << fmt(m.hist.min()) << " " << fmt(m.hist.max()) << " "
           << buckets.size();
        for (const auto& [index, n] : buckets) {
          os << " " << index << " " << n;
        }
        break;
      }
    }
    os << "\n";
  }
  os << "end\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + tmp +
                               " for writing");
    }
    out << os.str();
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

std::optional<CheckpointData> load_checkpoint(const std::string& path,
                                              std::uint64_t config_hash) {
  std::ifstream in(path);
  if (!in) return std::nullopt;  // nothing to resume from

  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not an odtn.checkpoint.v1 file");
  }

  CheckpointData data;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "hash") {
      std::uint64_t h = 0;
      if (!(ls >> h)) malformed(line);
      if (h != config_hash) {
        throw std::runtime_error(
            "checkpoint: " + path +
            " was written by a different experiment configuration");
      }
    } else if (tag == "completed") {
      if (!(ls >> data.completed_runs)) malformed(line);
    } else if (tag == "delivered_runs") {
      if (!(ls >> data.result.delivered_runs)) malformed(line);
    } else if (tag == "stat") {
      std::string name, mean, m2, mn, mx;
      util::RunningStats::State s;
      if (!(ls >> name >> s.n >> mean >> m2 >> mn >> mx)) malformed(line);
      s.mean = parse_double(mean, line);
      s.m2 = parse_double(m2, line);
      s.min = parse_double(mn, line);
      s.max = parse_double(mx, line);
      bool known = false;
      for (const StatField& f : kStatFields) {
        if (name == f.name) {
          data.result.*(f.member) = util::RunningStats::from_state(s);
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::runtime_error("checkpoint: unknown stat '" + name + "'");
      }
    } else if (tag == "failed") {
      ExperimentResult::FailedRun fr;
      if (!(ls >> fr.run >> fr.seed)) malformed(line);
      std::getline(ls, fr.message);
      if (!fr.message.empty() && fr.message.front() == ' ') {
        fr.message.erase(fr.message.begin());
      }
      data.result.failed_runs.push_back(std::move(fr));
    } else if (tag == "metric") {
      std::string name;
      int kind_i = 0, stability_i = 0;
      if (!(ls >> name >> kind_i >> stability_i)) malformed(line);
      metrics::Registry::Metric m;
      m.kind = static_cast<metrics::Kind>(kind_i);
      m.stability = static_cast<metrics::Stability>(stability_i);
      switch (m.kind) {
        case metrics::Kind::kCounter:
          if (!(ls >> m.counter)) malformed(line);
          break;
        case metrics::Kind::kGauge: {
          int set = 0;
          std::string value;
          if (!(ls >> set >> value)) malformed(line);
          m.gauge_set = (set != 0);
          m.gauge = parse_double(value, line);
          break;
        }
        case metrics::Kind::kHistogram:
        case metrics::Kind::kTimer: {
          std::uint64_t count = 0;
          std::string sum, mn, mx;
          std::size_t n_buckets = 0;
          if (!(ls >> count >> sum >> mn >> mx >> n_buckets)) malformed(line);
          std::map<int, std::uint64_t> buckets;
          for (std::size_t i = 0; i < n_buckets; ++i) {
            int index = 0;
            std::uint64_t n = 0;
            if (!(ls >> index >> n)) malformed(line);
            buckets[index] = n;
          }
          m.hist = metrics::Histogram::from_state(
              count, parse_double(sum, line), parse_double(mn, line),
              parse_double(mx, line), std::move(buckets));
          break;
        }
        default:
          malformed(line);
      }
      data.result.metrics.restore(name, m);
    } else {
      malformed(line);
    }
  }
  if (!saw_end) {
    throw std::runtime_error("checkpoint: " + path +
                             " is truncated (no end marker)");
  }
  return data;
}

}  // namespace odtn::core
