// Checkpoint/resume for long experiment sweeps.
//
// Every `checkpoint_interval` runs the engine snapshots its progress — the
// number of completed runs, every folded accumulator (raw Welford state),
// the quarantine list, and the folded metrics registry — to a text file,
// atomically (tmp + rename). A killed sweep restarted with resume = true
// reloads the snapshot and continues from the first unfolded run; because
// runs are seeded by index (derive_seed) and folded in index order, the
// resumed result is byte-identical to an uninterrupted one. Doubles are
// serialized in shortest round-trip form (metrics::format_double) and
// parsed back with strtod, so the round trip is exact, not approximate.
//
// A checkpoint is only valid for the experiment that wrote it: the file
// carries a hash of the outcome-determining config fields plus a scenario
// tag, and load_checkpoint refuses a mismatch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace odtn::core {

/// Hash over the config fields that determine run outcomes (network,
/// protocol, adversary, fault and seed parameters) plus `scenario_tag`
/// ("random_graph" or "trace"). Deliberately excludes runs, threads and the
/// checkpoint knobs themselves: extending a sweep to more runs or resuming
/// with a different thread count is legitimate and changes nothing about
/// the runs already folded.
std::uint64_t checkpoint_config_hash(const ExperimentConfig& config,
                                     const std::string& scenario_tag);

struct CheckpointData {
  /// Runs [0, completed_runs) are folded into `result`.
  std::size_t completed_runs = 0;
  ExperimentResult result;
};

/// Writes `data` to `path` atomically (write `path`.tmp, flush, rename).
/// Throws std::runtime_error when the file cannot be written.
void save_checkpoint(const std::string& path, std::uint64_t config_hash,
                     const CheckpointData& data);

/// Loads a checkpoint written by save_checkpoint. Returns nullopt when the
/// file does not exist (nothing to resume). Throws std::runtime_error on a
/// malformed file or a config-hash mismatch.
std::optional<CheckpointData> load_checkpoint(const std::string& path,
                                              std::uint64_t config_hash);

}  // namespace odtn::core
