// Experiment configuration mirroring Table II of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "faults/faults.hpp"
#include "recovery/recovery.hpp"
#include "routing/onion_routing.hpp"
#include "routing/types.hpp"
#include "sim/network_sim.hpp"
#include "traffic/traffic.hpp"

namespace odtn::core {

/// Contact-rate storage backend for experiments.
///
///  * kDense — the historical O(n²) triangular ContactGraph. Byte-identical
///    to every recorded baseline; the default.
///  * kSparse — the CSR SparseContactGraph. O(n + m) memory; required for
///    the scale regime (n = 10⁵–10⁶), and byte-identical to kDense on
///    complete graphs at paper scale (same RNG draw sequence).
enum class ContactBackend : std::uint8_t { kDense, kSparse };

/// Forwarding family for loaded-traffic experiments (config.traffic):
///  * kOnion      — the paper's onion-group forwarding, per-flow K/L.
///  * kUtility    — routing::UtilityForwarder: replicate by marginal
///    delivery utility, back off from saturated next-hop buffers.
///  * kSprayBlind — the same forwarder with the utility gate and the
///    congestion backoff disabled: congestion-ignorant spray, the control
///    that isolates what utility awareness buys under load.
enum class LoadForwarder : std::uint8_t { kOnion, kUtility, kSprayBlind };

/// "onion", "utility", or "spray-blind".
const char* load_forwarder_name(LoadForwarder f);

/// Default values are the paper's defaults (Table II and Sec. V-A):
/// n = 100 nodes, inter-contact times uniform in [10, 360] minutes,
/// g = 5, K = 3, L = 1, T up to 1800 minutes, 10% compromised nodes.
struct ExperimentConfig {
  // Network (random contact graph).
  std::size_t nodes = 100;
  double min_ict = 10.0;
  double max_ict = 360.0;

  /// Contact storage backend. Sparse-only knobs below must stay 0 on the
  /// dense backend (validated with a one-line error).
  ContactBackend backend = ContactBackend::kDense;
  /// Sparse random graphs: target mean contact degree per node. 0 keeps the
  /// paper's complete graph (only feasible up to a few thousand nodes).
  std::size_t avg_degree = 0;
  /// With avg_degree > 0: number of community blocks (0 = one community).
  std::size_t communities = 0;
  /// Group-directory sharding: nodes are permuted per contiguous shard
  /// instead of globally, lazily — O((K+2) * shard_size) directory work per
  /// run instead of O(n). 0 keeps the explicit global permutation.
  std::size_t group_shards = 0;

  // Protocol parameters.
  std::size_t group_size = 5;    // g
  std::size_t num_relays = 3;    // K
  std::size_t copies = 1;        // L
  double ttl = 1800.0;           // T (same unit as the contact model)

  // Adversary.
  double compromise_fraction = 0.1;  // c / n

  // Trace experiments only: rate training caps network-wide silent gaps at
  // this many time units when estimating contact rates (the paper's
  // "training the traces"). 0 disables the correction (wall-clock rates).
  double trace_training_gap = 1800.0;

  // Harness.
  std::size_t runs = 100;
  std::uint64_t seed = 1;
  /// Worker threads for the experiment engine (0 = all hardware threads).
  /// Each run draws from an RNG seeded with derive_seed(seed, run_index)
  /// and outcomes fold in run order, so results are bit-identical at every
  /// thread count — `threads` only changes wall-clock time.
  std::size_t threads = 1;
  routing::CryptoMode crypto = routing::CryptoMode::kNone;
  routing::SprayMode spray = routing::SprayMode::kSprayAndWait;
  /// Collect odtn::metrics during the experiment: each run writes to its
  /// own per-run Registry (no cross-thread sharing) and the registries fold
  /// into ExperimentResult::metrics in run order, so the collected metrics
  /// are bit-identical at every thread count. Off by default: the engine
  /// then passes null sinks and instrumentation costs one dead branch.
  bool collect_metrics = false;

  // Robustness (see odtn::faults). All-zero (the default) disables the
  // fault layer entirely: no FaultPlan is built, the run RNG draws exactly
  // the same sequence, and results are byte-identical to a fault-free
  // build. When enabled, each run realizes its own plan seeded from the
  // run's RNG stream, so faulty sweeps keep the bit-identical-at-any-
  // thread-count guarantee.
  faults::FaultConfig faults;

  /// When non-empty, the engine writes a progress checkpoint (completed-run
  /// count + folded stats + quarantine list) to this file atomically
  /// (tmp + rename) after every `checkpoint_interval` runs.
  std::string checkpoint_path;
  /// Runs folded per checkpoint chunk (minimum 1).
  std::size_t checkpoint_interval = 16;
  /// Resume from checkpoint_path if it exists. The file is validated
  /// against a hash of the outcome-determining config fields (protocol,
  /// network, faults, seed, scenario — not runs/threads/checkpoint knobs);
  /// a resumed sweep is byte-identical to an uninterrupted one.
  bool resume = false;

  // Heavy traffic (see odtn::traffic). Default-disabled: with no flows the
  // engine runs the historical one-message-per-run realizations, draws the
  // identical RNG sequence, and exports byte-identical results — the same
  // zero-knob contract as the fault layer. When traffic.enabled(), each
  // run samples a contact trace over [0, horizon + max ttl), expands the
  // flows into a TrafficPlan seeded from the run's RNG stream, and pushes
  // the whole workload through sim::run_network_sim. Random-graph
  // scenarios only (dense or sparse backend).
  traffic::TrafficConfig traffic;
  /// Finite contact bandwidth for loaded runs (requires traffic).
  sim::ContactBandwidth bandwidth;
  /// Per-node buffer capacity for loaded runs; 0 = unlimited (requires
  /// traffic to have any effect — validated).
  std::size_t buffer_capacity = 0;
  sim::BufferPolicy buffer_policy = sim::BufferPolicy::kRejectNew;
  /// Forwarding family under load (requires traffic).
  LoadForwarder load_forwarder = LoadForwarder::kOnion;
  /// Utility/spray-blind forwarders only: discount a receiver's utility by
  /// an EWMA of its observed transfer failures (recovery feedback; see
  /// routing::UtilityForwarderConfig::failure_penalty). 0 disables.
  double utility_failure_penalty = 0.0;

  // End-to-end reliability (see odtn::recovery). Default-disabled with the
  // same zero-knob contract as faults and traffic: no recovery RNG stream
  // is derived, no recovery.* metrics register, and every export is
  // byte-identical to a build without the layer. Retransmission and
  // suspicion-biased retry groups apply to both the unloaded onion
  // protocols and loaded runs; ACK anti-packets and overload shedding are
  // network-simulator semantics and require traffic (validated).
  recovery::RecoveryConfig recovery;

  // Wire-accurate circuit layer (see src/circuit). Default-off with the
  // same zero-knob contract as every other layer: the historical one-blob
  // secure links are used, no circuit.* or sim.wire_* metrics register,
  // and every export stays byte-identical. When on, unloaded runs
  // fragment each contact crossing into sealed fixed-size cells (requires
  // CryptoMode::kReal — validated) and loaded runs charge each transfer
  // its cell cost against the contact-bandwidth budget.
  bool wire_cells = false;
  /// On-the-wire cell size in bytes (wire mode only; validated against
  /// circuit::kMinCellSize/kMaxCellSize at run() time).
  std::size_t cell_size = circuit::kDefaultCellSize;
};

}  // namespace odtn::core
