#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "adversary/adversary.hpp"
#include "analysis/anonymity.hpp"
#include "analysis/cost.hpp"
#include "analysis/delivery.hpp"
#include "analysis/traceable.hpp"
#include "graph/contact_graph.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "routing/onion_routing.hpp"
#include "sim/contact_model.hpp"

namespace odtn::core {

namespace {

struct RunContext {
  const ExperimentConfig* cfg;
  ExperimentResult* out;
  util::Rng* rng;
};

// Shared per-run body once a contact model, graph-for-analysis, endpoints
// and start time are fixed.
void run_once(RunContext& rc, sim::ContactModel& contacts,
              const graph::ContactGraph& analysis_graph, NodeId src,
              NodeId dst, Time start) {
  const ExperimentConfig& cfg = *rc.cfg;
  util::Rng& rng = *rc.rng;
  std::size_t n = contacts.node_count();

  groups::GroupDirectory directory(n, cfg.group_size, &rng);
  groups::KeyManager keys(directory, rng.next());
  onion::OnionCodec codec;

  routing::OnionContext ctx;
  ctx.directory = &directory;
  ctx.keys = &keys;
  ctx.codec = &codec;
  ctx.crypto = cfg.crypto;

  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.start = start;
  spec.ttl = cfg.ttl;
  spec.num_relays = cfg.num_relays;
  spec.copies = cfg.copies;
  if (cfg.crypto == routing::CryptoMode::kReal) {
    spec.payload = util::to_bytes("odtn experiment payload");
  }

  // Select the relay groups once so simulation and analysis see the same
  // realization.
  std::vector<GroupId> relay_groups =
      directory.select_relay_groups(src, dst, cfg.num_relays, rng);

  routing::DeliveryResult result;
  if (cfg.copies == 1) {
    routing::SingleCopyOnionRouting protocol(ctx);
    result = protocol.route(contacts, spec, rng, &relay_groups);
  } else {
    routing::MultiCopyOnionRouting protocol(ctx, cfg.spray);
    result = protocol.route(contacts, spec, rng, &relay_groups);
  }

  rc.out->sim_delivered.add(result.delivered ? 1.0 : 0.0);
  rc.out->sim_transmissions.add(static_cast<double>(result.transmissions));
  if (result.delivered) {
    ++rc.out->delivered_runs;
    rc.out->sim_delay.add(result.delay);

    adversary::CompromiseModel compromise =
        adversary::CompromiseModel::from_fraction(n, cfg.compromise_fraction,
                                                  rng);
    rc.out->sim_traceable.add(
        adversary::measured_traceable_rate(src, result.relay_path, compromise));
    rc.out->sim_anonymity.add(adversary::measured_path_anonymity(
        src, result.relays_per_hop, compromise, n, cfg.group_size));
  }

  // Analysis on the same realization.
  auto rates = analysis::opportunistic_onion_rates(analysis_graph, src, dst,
                                                   directory, relay_groups);
  rc.out->ana_delivery.add(
      analysis::delivery_rate(rates, cfg.ttl, cfg.copies));
}

void finish_analysis(const ExperimentConfig& cfg, std::size_t n,
                     ExperimentResult& out) {
  std::size_t eta = cfg.num_relays + 1;
  double p = cfg.compromise_fraction;
  out.ana_traceable_paper = analysis::traceable_rate_paper(eta, p);
  out.ana_traceable_exact = analysis::traceable_rate_exact(eta, p);
  out.ana_anonymity =
      analysis::path_anonymity_model(eta, p, n, cfg.group_size, cfg.copies);
  out.ana_cost_bound =
      cfg.copies == 1
          ? static_cast<double>(analysis::single_copy_cost(cfg.num_relays))
          : static_cast<double>(
                analysis::multi_copy_cost_bound(cfg.num_relays, cfg.copies));
  out.ana_cost_non_anonymous =
      static_cast<double>(analysis::non_anonymous_cost(cfg.copies));
}

}  // namespace

namespace {

// One shard of random-graph runs with its own RNG stream.
ExperimentResult run_random_graph_shard(const ExperimentConfig& config,
                                        std::uint64_t seed,
                                        std::size_t runs) {
  ExperimentResult out;
  util::Rng rng(seed);
  RunContext rc{&config, &out, &rng};

  for (std::size_t run = 0; run < runs; ++run) {
    graph::ContactGraph graph = graph::random_contact_graph(
        config.nodes, rng, config.min_ict, config.max_ict);
    sim::PoissonContactModel contacts(graph, rng);

    NodeId src = static_cast<NodeId>(rng.below(config.nodes));
    NodeId dst = static_cast<NodeId>(rng.below(config.nodes - 1));
    if (dst >= src) ++dst;

    run_once(rc, contacts, graph, src, dst, /*start=*/0.0);
  }
  return out;
}

void merge_results(ExperimentResult& into, const ExperimentResult& from) {
  into.sim_delivered.merge(from.sim_delivered);
  into.sim_delay.merge(from.sim_delay);
  into.sim_transmissions.merge(from.sim_transmissions);
  into.sim_traceable.merge(from.sim_traceable);
  into.sim_anonymity.merge(from.sim_anonymity);
  into.ana_delivery.merge(from.ana_delivery);
  into.delivered_runs += from.delivered_runs;
}

}  // namespace

ExperimentResult run_random_graph_experiment(const ExperimentConfig& config) {
  if (config.runs == 0) {
    throw std::invalid_argument("experiment: runs must be >= 1");
  }
  std::size_t threads = std::max<std::size_t>(1, config.threads);
  threads = std::min(threads, config.runs);

  ExperimentResult out;
  if (threads == 1) {
    out = run_random_graph_shard(config, config.seed, config.runs);
  } else {
    std::vector<ExperimentResult> shards(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    std::size_t base = config.runs / threads;
    std::size_t extra = config.runs % threads;
    for (std::size_t t = 0; t < threads; ++t) {
      std::size_t shard_runs = base + (t < extra ? 1 : 0);
      std::uint64_t shard_seed =
          config.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
      workers.emplace_back([&, t, shard_runs, shard_seed] {
        shards[t] = run_random_graph_shard(config, shard_seed, shard_runs);
      });
    }
    for (auto& w : workers) w.join();
    for (const auto& shard : shards) merge_results(out, shard);
  }
  finish_analysis(config, config.nodes, out);
  return out;
}

ExperimentResult run_trace_experiment(const ExperimentConfig& config,
                                      const trace::ContactTrace& trace) {
  if (config.runs == 0) {
    throw std::invalid_argument("experiment: runs must be >= 1");
  }
  ExperimentResult out;
  util::Rng rng(config.seed);
  RunContext rc{&config, &out, &rng};

  sim::TraceContactModel contacts(trace);
  graph::ContactGraph trained =
      config.trace_training_gap > 0.0
          ? trace.estimate_rates_active(config.trace_training_gap)
          : trace.estimate_rates();

  for (std::size_t run = 0; run < config.runs; ++run) {
    NodeId src = static_cast<NodeId>(rng.below(trace.node_count()));
    NodeId dst = static_cast<NodeId>(rng.below(trace.node_count() - 1));
    if (dst >= src) ++dst;

    // Start at one of the source's contact events ("a source node initiates
    // a message transmission at any time after it has a contact").
    const auto& events = trace.contacts_of(src);
    if (events.empty()) {
      // Isolated node: count as a failed run.
      out.sim_delivered.add(0.0);
      out.sim_transmissions.add(0.0);
      out.ana_delivery.add(0.0);
      continue;
    }
    Time start = events[rng.below(events.size())].time;

    run_once(rc, contacts, trained, src, dst, start);
  }
  finish_analysis(config, trace.node_count(), out);
  return out;
}

}  // namespace odtn::core
