#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "circuit/cell.hpp"
#include "core/checkpoint.hpp"
#include "faults/faults.hpp"
#include "analysis/anonymity.hpp"
#include "analysis/cost.hpp"
#include "analysis/delivery.hpp"
#include "analysis/traceable.hpp"
#include "graph/contact_graph.hpp"
#include "graph/sparse_contact_graph.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "recovery/recovery.hpp"
#include "routing/onion_routing.hpp"
#include "routing/utility_forwarder.hpp"
#include "sim/contact_model.hpp"
#include "sim/network_sim.hpp"
#include "trace/synthetic.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace odtn::core {

const char* load_forwarder_name(LoadForwarder f) {
  switch (f) {
    case LoadForwarder::kOnion: return "onion";
    case LoadForwarder::kUtility: return "utility";
    case LoadForwarder::kSprayBlind: return "spray-blind";
  }
  return "?";
}

void ExperimentResult::merge(const ExperimentResult& other) {
  sim_delivered.merge(other.sim_delivered);
  sim_delay.merge(other.sim_delay);
  sim_transmissions.merge(other.sim_transmissions);
  sim_traceable.merge(other.sim_traceable);
  sim_anonymity.merge(other.sim_anonymity);
  sim_throughput.merge(other.sim_throughput);
  sim_p99_delay.merge(other.sim_p99_delay);
  ana_delivery.merge(other.ana_delivery);
  ana_traceable_paper.merge(other.ana_traceable_paper);
  ana_traceable_exact.merge(other.ana_traceable_exact);
  ana_anonymity.merge(other.ana_anonymity);
  ana_cost_bound.merge(other.ana_cost_bound);
  ana_cost_non_anonymous.merge(other.ana_cost_non_anonymous);
  delivered_runs += other.delivered_runs;
  failed_runs.insert(failed_runs.end(), other.failed_runs.begin(),
                     other.failed_runs.end());
  metrics.merge(other.metrics);
}

namespace {

// Everything one realization contributes to the result. Workers fill these
// into a per-run slot; the engine folds the slots in run-index order on a
// single thread, which keeps the floating-point accumulation independent
// of how runs were scheduled.
struct RunOutcome {
  bool delivered = false;
  double transmissions = 0.0;
  double delay = 0.0;       // delivered only
  double traceable = 0.0;   // delivered only
  double anonymity = 0.0;   // delivered only
  double ana_delivery = 0.0;
  /// Loaded-traffic run (config.traffic enabled): `delivered` means "any
  /// message delivered", `delay` is the run's mean delivery delay, and the
  /// fields below carry the workload-level samples. The per-message
  /// closed-form ana_delivery does not apply and is not folded.
  bool loaded = false;
  double delivery_fraction = 0.0;
  double throughput = 0.0;  // delivered msgs per time unit of horizon
  double p99_delay = 0.0;   // of the run's delivered messages
  /// Quarantine: the run body threw. The run contributes only a FailedRun
  /// record; every other field (including metrics) is dropped.
  bool failed = false;
  std::string error;
  /// Per-run metrics sink (empty unless config.collect_metrics); folded
  /// into ExperimentResult::metrics in run order.
  metrics::Registry metrics;
};

// Shared per-realization kernel, once a contact model, rates-for-analysis,
// endpoints and start time are fixed. Every random draw comes from `rng`,
// which the engine seeds from (config.seed, run index). `reg` is the run's
// private metrics sink (null = off). Backend-neutral: `analysis_graph` is
// the ContactRates surface both the dense and the sparse backend implement.
RunOutcome run_once(const ExperimentConfig& cfg, sim::ContactModel& contacts,
                    const graph::ContactRates& analysis_graph, NodeId src,
                    NodeId dst, Time start, util::Rng& rng,
                    metrics::Registry* reg) {
  RunOutcome out;
  std::size_t n = contacts.node_count();

  // group_shards == 0 is the historical global permutation (same RNG
  // consumption as ever); sharded directories draw one seed and permute
  // lazily per shard.
  groups::GroupDirectory directory =
      cfg.group_shards > 0
          ? groups::GroupDirectory(
                n, cfg.group_size,
                groups::GroupDirectory::Sharded{cfg.group_shards, rng.next()})
          : groups::GroupDirectory(n, cfg.group_size, &rng);
  groups::KeyManager keys(directory, rng.next());
  onion::OnionCodec codec;

  routing::OnionContext ctx;
  ctx.directory = &directory;
  ctx.keys = &keys;
  ctx.codec = &codec;
  ctx.crypto = cfg.crypto;
  ctx.metrics = reg;
  ctx.wire_cells = cfg.wire_cells;
  ctx.cell_size = cfg.cell_size;

  // Recovery layer (retransmission + suspicion-biased retries). The
  // tracker is run-local: it converges within one message's retries. No
  // RNG is drawn here, so the disabled path is untouched.
  std::optional<recovery::SuspicionTracker> suspicion;
  if (cfg.recovery.enabled()) {
    ctx.recovery = &cfg.recovery;
    if (cfg.recovery.suspicion_alpha > 0.0) {
      suspicion.emplace(cfg.recovery.suspicion_alpha,
                        cfg.recovery.suspicion_threshold);
      ctx.suspicion = &*suspicion;
    }
  }

  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.start = start;
  spec.ttl = cfg.ttl;
  spec.num_relays = cfg.num_relays;
  spec.copies = cfg.copies;
  if (cfg.crypto == routing::CryptoMode::kReal) {
    spec.payload = util::to_bytes("odtn experiment payload");
  }

  // Select the relay groups once so simulation and analysis see the same
  // realization.
  std::vector<GroupId> relay_groups =
      directory.select_relay_groups(src, dst, cfg.num_relays, rng);

  // One fresh fault realization per run, seeded from the run's RNG stream
  // so faulty sweeps keep the derive_seed reproducibility story. The
  // endpoints are exempt from the blackhole set (the knob measures relay
  // droppers, not trivially-dead destinations). When faults are disabled no
  // plan is built and no RNG is drawn — the fault-free path is untouched.
  std::optional<faults::FaultPlan> fault_plan;
  if (cfg.faults.enabled()) {
    const NodeId exempt[2] = {src, dst};
    fault_plan.emplace(cfg.faults, n, start + cfg.ttl, rng.next(),
                       std::span<const NodeId>(exempt));
    ctx.faults = &*fault_plan;
  }

  routing::DeliveryResult result;
  if (cfg.copies == 1) {
    routing::SingleCopyOnionRouting protocol(ctx);
    result = protocol.route(contacts, spec, rng, &relay_groups);
  } else {
    routing::MultiCopyOnionRouting protocol(ctx, cfg.spray);
    result = protocol.route(contacts, spec, rng, &relay_groups);
  }

  out.transmissions = static_cast<double>(result.transmissions);
  metrics::counter(reg, "experiment.runs").inc();
  metrics::histogram(reg, "experiment.transmissions")
      .observe(out.transmissions);
  if (cfg.wire_cells) {
    // Registered only in wire mode: the zero-knob export carries no
    // experiment.wire_* entries (byte-identity contract).
    metrics::histogram(reg, "experiment.wire_cells")
        .observe(static_cast<double>(result.wire_cells));
    metrics::histogram(reg, "experiment.wire_bytes")
        .observe(static_cast<double>(result.wire_bytes));
  }
  if (result.delivered) {
    out.delivered = true;
    out.delay = result.delay;
    metrics::counter(reg, "experiment.delivered").inc();
    metrics::histogram(reg, "experiment.delay").observe(result.delay);
    metrics::histogram(reg, "experiment.path_hops")
        .observe(static_cast<double>(result.relay_path.size() + 1));

    adversary::CompromiseModel compromise =
        adversary::CompromiseModel::from_fraction(n, cfg.compromise_fraction,
                                                  rng);
    out.traceable =
        adversary::measured_traceable_rate(src, result.relay_path, compromise);
    out.anonymity = adversary::measured_path_anonymity(
        src, result.relays_per_hop, compromise, n, cfg.group_size);
  }

  // Analysis on the same realization.
  auto rates = analysis::opportunistic_onion_rates(analysis_graph, src, dst,
                                                   directory, relay_groups);
  out.ana_delivery = analysis::delivery_rate(rates, cfg.ttl, cfg.copies);
  return out;
}

// Loaded-traffic realization kernel (config.traffic enabled): one run =
// one whole workload pushed through sim::run_network_sim over a sampled
// contact trace. Every random quantity — the directory, the traffic plan,
// the fault plan, the compromise set — derives from `rng` exactly like
// run_once, so loaded sweeps keep the bit-identical-at-any-thread-count
// contract.
RunOutcome run_loaded(const ExperimentConfig& cfg,
                      const trace::ContactTrace& contact_trace,
                      util::Rng& rng, metrics::Registry* reg) {
  RunOutcome out;
  out.loaded = true;
  const std::size_t n = contact_trace.node_count();

  groups::GroupDirectory directory =
      cfg.group_shards > 0
          ? groups::GroupDirectory(
                n, cfg.group_size,
                groups::GroupDirectory::Sharded{cfg.group_shards, rng.next()})
          : groups::GroupDirectory(n, cfg.group_size, &rng);

  traffic::TrafficPlan plan(cfg.traffic, n, rng.next());

  std::optional<faults::FaultPlan> fault_plan;
  if (cfg.faults.enabled()) {
    // No per-message endpoints to exempt under a whole workload: every
    // node is a source/destination of some flow.
    fault_plan.emplace(cfg.faults, n, contact_trace.end_time(), rng.next(),
                       std::span<const NodeId>());
  }

  const bool onion = cfg.load_forwarder == LoadForwarder::kOnion;
  std::optional<routing::UtilityForwarder> forwarder;
  if (!onion) {
    routing::UtilityForwarderConfig fc;
    if (cfg.load_forwarder == LoadForwarder::kSprayBlind) {
      fc.min_utility_ratio = 0.0;  // replicate to anyone...
      fc.backoff_occupancy = 2.0;  // ...and never back off
    }
    fc.failure_penalty = cfg.utility_failure_penalty;
    forwarder.emplace(n, fc);
  }

  sim::NetworkSimConfig sim_cfg;
  sim_cfg.buffer_capacity = cfg.buffer_capacity;
  sim_cfg.policy = cfg.buffer_policy;
  sim_cfg.metrics = reg;
  sim_cfg.faults = fault_plan ? &*fault_plan : nullptr;
  sim_cfg.bandwidth = cfg.bandwidth;
  sim_cfg.record_paths = onion;  // the anonymity measurement needs paths
  sim_cfg.utility = forwarder ? &*forwarder : nullptr;
  if (cfg.wire_cells) {
    // Loaded runs route abstract copies; wire accounting charges every
    // transfer the number of cells the full onion packet occupies on the
    // contact, against the (cell-denominated) bandwidth budget.
    onion::OnionCodec codec;
    circuit::CellCodec cells(cfg.cell_size);
    sim_cfg.cells_per_message = cells.cells_for(codec.wire_size());
    sim_cfg.cell_size = cfg.cell_size;
  }

  // Recovery layer: the per-message retry/jitter sub-streams derive from
  // one seed drawn here — after every other per-run draw, and only when
  // the layer is on, so disabled runs consume the identical RNG sequence.
  // The suspicion tracker is run-local (shared by all of the run's
  // messages, so later flows avoid groups earlier flows timed out on).
  std::optional<recovery::SuspicionTracker> suspicion;
  if (cfg.recovery.enabled()) {
    sim_cfg.recovery = &cfg.recovery;
    sim_cfg.recovery_seed = rng.next();
    if (cfg.recovery.suspicion_alpha > 0.0) {
      suspicion.emplace(cfg.recovery.suspicion_alpha,
                        cfg.recovery.suspicion_threshold);
      sim_cfg.suspicion = &*suspicion;
    }
  }

  sim::NetworkSimReport report = sim::run_network_sim(
      contact_trace, directory, plan.specs(), plan.priorities(), sim_cfg, rng);

  // Workload-level samples. p99 is exact over this run's delivered delays
  // (nearest-rank on the sorted list) — no histogram approximation.
  std::vector<double> delays;
  delays.reserve(report.outcomes.size());
  double anonymity_sum = 0.0;
  double traceable_sum = 0.0;
  std::size_t delivered = 0;
  std::optional<adversary::CompromiseModel> compromise;
  if (onion) {
    compromise = adversary::CompromiseModel::from_fraction(
        n, cfg.compromise_fraction, rng);
  }
  for (std::size_t m = 0; m < report.outcomes.size(); ++m) {
    const sim::MessageOutcome& o = report.outcomes[m];
    if (!o.delivered) continue;
    ++delivered;
    delays.push_back(o.delay);
    if (onion) {
      const auto& spec = plan.messages()[m].spec;
      traceable_sum += adversary::measured_traceable_rate(
          spec.src, o.relay_path, *compromise);
      anonymity_sum += adversary::measured_path_anonymity(
          spec.src, o.relays_per_hop, *compromise, n, cfg.group_size);
    }
  }

  out.transmissions = static_cast<double>(report.total_transmissions);
  out.delivery_fraction =
      plan.size() == 0
          ? 0.0
          : static_cast<double>(delivered) / static_cast<double>(plan.size());
  out.throughput = static_cast<double>(delivered) / cfg.traffic.horizon;
  if (delivered > 0) {
    out.delivered = true;
    double sum = 0.0;
    for (double d : delays) sum += d;
    out.delay = sum / static_cast<double>(delivered);
    std::sort(delays.begin(), delays.end());
    out.p99_delay = delays[((delays.size() - 1) * 99) / 100];
    if (onion) {
      out.traceable = traceable_sum / static_cast<double>(delivered);
      out.anonymity = anonymity_sum / static_cast<double>(delivered);
    }
  }

  metrics::counter(reg, "traffic.offered").inc(plan.size());
  metrics::counter(reg, "traffic.delivered").inc(delivered);
  metrics::histogram(reg, "traffic.run_throughput").observe(out.throughput);
  metrics::histogram(reg, "traffic.run_p99_delay").observe(out.p99_delay);
  return out;
}

// Closed-form metrics that depend only on the configuration (and node
// count), not on the realization; each run contributes one (identical)
// sample so the analysis side merges like every other accumulator.
struct AnalysisConstants {
  double traceable_paper;
  double traceable_exact;
  double anonymity;
  double cost_bound;
  double cost_non_anonymous;
};

AnalysisConstants analysis_constants(const ExperimentConfig& cfg,
                                     std::size_t n) {
  std::size_t eta = cfg.num_relays + 1;
  double p = cfg.compromise_fraction;
  AnalysisConstants k;
  k.traceable_paper = analysis::traceable_rate_paper(eta, p);
  k.traceable_exact = analysis::traceable_rate_exact(eta, p);
  k.anonymity =
      analysis::path_anonymity_model(eta, p, n, cfg.group_size, cfg.copies);
  k.cost_bound =
      cfg.copies == 1
          ? static_cast<double>(analysis::single_copy_cost(cfg.num_relays))
          : static_cast<double>(
                analysis::multi_copy_cost_bound(cfg.num_relays, cfg.copies));
  k.cost_non_anonymous =
      static_cast<double>(analysis::non_anonymous_cost(cfg.copies));
  return k;
}

// Shards `config.runs` calls of `body(run, rng, reg)` across the worker
// pool and folds the outcomes deterministically. `body` must derive all
// randomness from the passed rng (seeded per run), record metrics only into
// the passed per-run sink (null when collection is off), and must not touch
// shared state.
//
// A throwing body quarantines its run (FailedRun record; the shard
// continues and the fold skips it), so one poisoned realization cannot
// abort a sweep. With config.checkpoint_path set, runs are processed in
// checkpoint_interval-sized chunks and the folded state is snapshotted
// after each chunk; chunking preserves the fold order, so the chunked
// engine — and a resumed one — produces byte-identical results.
template <typename RunBody>
ExperimentResult run_engine(const ExperimentConfig& config, std::size_t n,
                            const char* scenario_tag, const RunBody& body) {
  if (config.runs == 0) {
    throw std::invalid_argument("experiment: runs must be >= 1");
  }
  config.faults.validate();
  // odtn-lint: allow(banned-api) — kWall timer site: wall_time_s is the
  // experiment stopwatch, reported outside the deterministic result fields.
  auto t0 = std::chrono::steady_clock::now();
  const bool collect = config.collect_metrics;
  const bool checkpointing = !config.checkpoint_path.empty();
  const std::uint64_t config_hash =
      checkpointing ? checkpoint_config_hash(config, scenario_tag) : 0;

  // Wall-clock phase timers and pool stats land in this engine-local
  // registry (all Stability::kWall) and are merged into the result after
  // the deterministic fold.
  metrics::Registry engine_reg;

  ExperimentResult out;
  std::size_t start_run = 0;
  if (checkpointing && config.resume) {
    if (auto cp = load_checkpoint(config.checkpoint_path, config_hash)) {
      if (cp->completed_runs > config.runs) {
        throw std::runtime_error(
            "experiment: checkpoint already covers more runs than requested");
      }
      start_run = cp->completed_runs;
      out = std::move(cp->result);
    }
  }

  AnalysisConstants k = analysis_constants(config, n);
  const std::size_t chunk_size =
      checkpointing
          ? std::max<std::size_t>(std::size_t{1}, config.checkpoint_interval)
          : std::max<std::size_t>(std::size_t{1}, config.runs);

  for (std::size_t chunk_start = start_run; chunk_start < config.runs;
       chunk_start += chunk_size) {
    const std::size_t count = std::min(chunk_size, config.runs - chunk_start);
    std::vector<RunOutcome> outcomes(count);
    {
      metrics::ScopedTimer t(
          metrics::timer(collect ? &engine_reg : nullptr,
                         "experiment.phase.simulate_seconds"));
      util::parallel_for(
          count, config.threads,
          [&](std::size_t slot) {
            const std::size_t run = chunk_start + slot;
            util::Rng rng(util::derive_seed(config.seed, run));
            RunOutcome o;
            metrics::Registry reg;
            try {
              if (config.faults.p_run_abort > 0.0 &&
                  rng.chance(config.faults.p_run_abort)) {
                throw faults::InjectedFault(
                    "injected run abort (p_run_abort)");
              }
              o = body(run, rng, collect ? &reg : nullptr);
              o.metrics = std::move(reg);
            } catch (const std::exception& e) {
              o = RunOutcome{};  // quarantine: drop partial samples/metrics
              o.failed = true;
              o.error = e.what();
            }
            outcomes[slot] = std::move(o);
          },
          collect ? &engine_reg : nullptr);
    }

    {
      metrics::ScopedTimer t(metrics::timer(
          collect ? &engine_reg : nullptr, "experiment.phase.fold_seconds"));
      for (std::size_t slot = 0; slot < count; ++slot) {
        const RunOutcome& o = outcomes[slot];
        if (o.failed) {
          const std::size_t run = chunk_start + slot;
          out.failed_runs.push_back(
              {run, util::derive_seed(config.seed, run), o.error});
          continue;
        }
        out.sim_delivered.add(o.loaded ? o.delivery_fraction
                                       : (o.delivered ? 1.0 : 0.0));
        out.sim_transmissions.add(o.transmissions);
        if (o.delivered) {
          ++out.delivered_runs;
          out.sim_delay.add(o.delay);
          out.sim_traceable.add(o.traceable);
          out.sim_anonymity.add(o.anonymity);
        }
        if (o.loaded) {
          out.sim_throughput.add(o.throughput);
          out.sim_p99_delay.add(o.p99_delay);
        } else {
          out.ana_delivery.add(o.ana_delivery);
        }
        out.ana_traceable_paper.add(k.traceable_paper);
        out.ana_traceable_exact.add(k.traceable_exact);
        out.ana_anonymity.add(k.anonymity);
        out.ana_cost_bound.add(k.cost_bound);
        out.ana_cost_non_anonymous.add(k.cost_non_anonymous);
        if (collect) out.metrics.merge(o.metrics);
      }
    }

    if (checkpointing) {
      CheckpointData snapshot;
      snapshot.completed_runs = chunk_start + count;
      snapshot.result = out;  // engine_reg (wall-only) is deliberately absent
      save_checkpoint(config.checkpoint_path, config_hash, snapshot);
    }
  }
  if (collect) out.metrics.merge(engine_reg);
  // odtn-lint: allow(banned-api) — kWall timer site (same stopwatch).
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_time_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

// Picks (src, dst) uniformly among distinct pairs.
void pick_endpoints(util::Rng& rng, std::size_t n, NodeId& src, NodeId& dst) {
  src = static_cast<NodeId>(rng.below(n));
  dst = static_cast<NodeId>(rng.below(n - 1));
  if (dst >= src) ++dst;
}

// Sparse complete graphs store n(n-1)/2 edges explicitly; past a few
// thousand nodes that is strictly worse than the dense triangle. Force the
// avg_degree generator instead.
constexpr std::size_t kSparseCompleteGraphCap = 5000;

// One-line diagnostics for unsupported backend/knob combinations
// (validated at run() time so every entry point — CLI, benches, tests —
// reports the same message).
void validate_backend(const ExperimentConfig& cfg, const Scenario& scenario) {
  if (cfg.backend == ContactBackend::kDense) {
    if (cfg.avg_degree != 0 || cfg.communities != 0) {
      throw std::invalid_argument(
          "experiment: avg_degree/communities require "
          "--contact-backend=sparse");
    }
    if (std::holds_alternative<SparseTraceScenario>(scenario)) {
      throw std::invalid_argument(
          "experiment: streaming-trace scenario requires "
          "--contact-backend=sparse (use an in-memory TraceScenario on the "
          "dense backend)");
    }
    return;
  }
  // Sparse backend.
  if (std::holds_alternative<TraceScenario>(scenario)) {
    throw std::invalid_argument(
        "experiment: in-memory trace scenario runs on the dense backend; "
        "use a streaming sparse-trace scenario with "
        "--contact-backend=sparse");
  }
  if (std::holds_alternative<RandomGraphScenario>(scenario) &&
      cfg.avg_degree == 0 && cfg.nodes > kSparseCompleteGraphCap) {
    throw std::invalid_argument(
        "experiment: sparse complete graph capped at 5000 nodes; set "
        "avg_degree for larger networks");
  }
  if (cfg.communities != 0 && cfg.avg_degree == 0) {
    throw std::invalid_argument(
        "experiment: communities requires avg_degree > 0");
  }
}

// One-line diagnostics for the traffic/load knobs; the zero-knob default
// passes untouched.
void validate_traffic(const ExperimentConfig& cfg, const Scenario& scenario) {
  cfg.bandwidth.validate();
  cfg.recovery.validate();
  if (cfg.utility_failure_penalty < 0.0 || cfg.utility_failure_penalty > 1.0) {
    throw std::invalid_argument(
        "experiment: --utility-failure-penalty must be in [0, 1]");
  }
  if (cfg.utility_failure_penalty > 0.0 &&
      cfg.load_forwarder == LoadForwarder::kOnion) {
    throw std::invalid_argument(
        "experiment: --utility-failure-penalty applies to the utility/"
        "spray-blind forwarders only (--load-forwarder=utility)");
  }
  if (!cfg.traffic.enabled()) {
    cfg.traffic.validate(cfg.nodes);  // catches horizon-without-flows etc.
    if (cfg.bandwidth.enabled() || cfg.buffer_capacity != 0 ||
        cfg.load_forwarder != LoadForwarder::kOnion) {
      throw std::invalid_argument(
          "experiment: bandwidth/buffer/load-forwarder knobs require "
          "--traffic-* flows (they only apply to loaded runs)");
    }
    if (cfg.recovery.acks || cfg.recovery.shedding()) {
      throw std::invalid_argument(
          "experiment: --ack-vaccine/--shed-* are network-simulator "
          "semantics; they require --traffic-* flows");
    }
    return;
  }
  if (!std::holds_alternative<RandomGraphScenario>(scenario)) {
    throw std::invalid_argument(
        "experiment: traffic workloads run on random-graph scenarios only");
  }
  cfg.traffic.validate(cfg.nodes);
  if (cfg.load_forwarder == LoadForwarder::kOnion) {
    for (const auto& f : cfg.traffic.flows) {
      if (f.num_relays == 0) {
        throw std::invalid_argument(
            "experiment: onion load forwarding needs num_relays >= 1 per "
            "flow (utility/spray-blind ignore relay groups)");
      }
    }
  }
}

// One-line diagnostics for the wire-accurate circuit layer; the zero-knob
// default passes untouched.
void validate_wire(const ExperimentConfig& cfg) {
  if (!cfg.wire_cells) return;
  if (cfg.crypto != routing::CryptoMode::kReal) {
    throw std::invalid_argument(
        "experiment: --wire-cells fragments real sealed packets; it "
        "requires CryptoMode::kReal");
  }
  if (cfg.cell_size < circuit::kMinCellSize ||
      cfg.cell_size > circuit::kMaxCellSize) {
    throw std::invalid_argument(
        "experiment: --cell-size must be in [" +
        std::to_string(circuit::kMinCellSize) + ", " +
        std::to_string(circuit::kMaxCellSize) + "]");
  }
}

// Horizon the per-run contact trace must cover: the arrival window plus
// the longest TTL any flow stamps on a message.
Time loaded_trace_horizon(const ExperimentConfig& cfg) {
  Time max_ttl = 0.0;
  for (const auto& f : cfg.traffic.flows) max_ttl = std::max(max_ttl, f.ttl);
  return cfg.traffic.horizon + max_ttl;
}

}  // namespace

ExperimentResult Experiment::run(const Scenario& scenario) const {
  validate_backend(config_, scenario);
  validate_traffic(config_, scenario);
  validate_wire(config_);
  return std::visit(
      [this](const auto& s) -> ExperimentResult {
        using S = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<S, RandomGraphScenario>) {
          return run_random_graph(s);
        } else if constexpr (std::is_same_v<S, TraceScenario>) {
          return run_trace(s);
        } else {
          return run_sparse_trace(s);
        }
      },
      scenario);
}

ExperimentResult Experiment::run_random_graph(
    const RandomGraphScenario&) const {
  const ExperimentConfig& cfg = config_;
  const bool loaded = cfg.traffic.enabled();
  if (cfg.backend == ContactBackend::kSparse) {
    return run_engine(
        cfg, cfg.nodes, "random_graph",
        [&](std::size_t, util::Rng& rng, metrics::Registry* reg) {
          // avg_degree == 0 draws the identical RNG sequence as the dense
          // generator, so paper-scale sparse runs reproduce dense results
          // bit-for-bit; avg_degree > 0 is the O(n·degree) scale regime.
          graph::SparseContactGraph graph =
              cfg.avg_degree == 0
                  ? graph::sparse_random_contact_graph(cfg.nodes, rng,
                                                       cfg.min_ict, cfg.max_ict)
                  : graph::sparse_community_contact_graph(
                        cfg.nodes, cfg.avg_degree,
                        std::max<std::size_t>(std::size_t{1}, cfg.communities),
                        rng, cfg.min_ict, cfg.max_ict);
          if (loaded) {
            // The CSR rates sampler visits pairs in the same (i, j) order
            // as the dense one, so paper-scale loaded runs match across
            // backends bit-for-bit too.
            trace::ContactTrace events = trace::sample_poisson_trace(
                static_cast<const graph::ContactRates&>(graph),
                loaded_trace_horizon(cfg), rng);
            return run_loaded(cfg, events, rng, reg);
          }
          sim::SparseContactModel contacts(graph, rng);

          NodeId src, dst;
          pick_endpoints(rng, cfg.nodes, src, dst);
          return run_once(cfg, contacts, graph, src, dst, /*start=*/0.0, rng,
                          reg);
        });
  }
  return run_engine(cfg, cfg.nodes, "random_graph",
                    [&](std::size_t, util::Rng& rng, metrics::Registry* reg) {
    graph::ContactGraph graph = graph::random_contact_graph(
        cfg.nodes, rng, cfg.min_ict, cfg.max_ict);
    if (loaded) {
      trace::ContactTrace events =
          trace::sample_poisson_trace(graph, loaded_trace_horizon(cfg), rng);
      return run_loaded(cfg, events, rng, reg);
    }
    sim::PoissonContactModel contacts(graph, rng);

    NodeId src, dst;
    pick_endpoints(rng, cfg.nodes, src, dst);
    return run_once(cfg, contacts, graph, src, dst, /*start=*/0.0, rng, reg);
  });
}

ExperimentResult Experiment::run_trace(const TraceScenario& scenario) const {
  if (scenario.trace == nullptr) {
    throw std::invalid_argument("experiment: TraceScenario.trace is null");
  }
  const ExperimentConfig& cfg = config_;
  const trace::ContactTrace& trace = *scenario.trace;

  // Rates are trained once and shared read-only across workers; the phase
  // timer lands in the result's registry after the engine fold.
  metrics::Registry train_reg;
  graph::ContactGraph trained = [&] {
    metrics::ScopedTimer t(
        metrics::timer(cfg.collect_metrics ? &train_reg : nullptr,
                       "experiment.phase.train_seconds"));
    return cfg.trace_training_gap > 0.0
               ? trace.estimate_rates_active(cfg.trace_training_gap)
               : trace.estimate_rates();
  }();

  ExperimentResult result = run_engine(
      cfg, trace.node_count(), "trace",
      [&](std::size_t, util::Rng& rng, metrics::Registry* reg) {
        NodeId src, dst;
        pick_endpoints(rng, trace.node_count(), src, dst);

        // Start at one of the source's contact events ("a source node
        // initiates a message transmission at any time after it has a
        // contact").
        const auto& events = trace.contacts_of(src);
        if (events.empty()) {
          metrics::counter(reg, "experiment.runs").inc();
          metrics::counter(reg, "experiment.isolated_sources").inc();
          return RunOutcome{};  // isolated node: a failed run
        }
        Time start = events[rng.below(events.size())].time;

        sim::TraceContactModel contacts(trace);
        return run_once(cfg, contacts, trained, src, dst, start, rng, reg);
      });
  if (cfg.collect_metrics) result.metrics.merge(train_reg);
  return result;
}

ExperimentResult Experiment::run_sparse_trace(
    const SparseTraceScenario& scenario) const {
  const ExperimentConfig& cfg = config_;
  if (scenario.path.empty()) {
    throw std::invalid_argument("experiment: SparseTraceScenario.path empty");
  }
  if (scenario.nodes < 2) {
    throw std::invalid_argument(
        "experiment: SparseTraceScenario.nodes must be >= 2");
  }

  // ONE streaming pass over the file: no event list, no whole-file buffer —
  // just the trained CSR rates. Runs then sample live Poisson contacts from
  // those rates (the model the training fits), so neither the simulation
  // nor the analysis side ever needs the events again.
  metrics::Registry train_reg;
  trace::SparseTraceSummary summary = [&] {
    metrics::ScopedTimer t(
        metrics::timer(cfg.collect_metrics ? &train_reg : nullptr,
                       "experiment.phase.train_seconds"));
    return trace::ingest_sparse_trace_file(scenario.path, scenario.format,
                                           scenario.nodes,
                                           cfg.trace_training_gap);
  }();

  ExperimentResult result = run_engine(
      cfg, summary.node_count, "sparse_trace",
      [&](std::size_t, util::Rng& rng, metrics::Registry* reg) {
        NodeId src, dst;
        pick_endpoints(rng, summary.node_count, src, dst);

        if (summary.rates.degree(src) == 0) {
          metrics::counter(reg, "experiment.runs").inc();
          metrics::counter(reg, "experiment.isolated_sources").inc();
          return RunOutcome{};  // isolated node: a failed run
        }

        sim::SparseContactModel contacts(summary.rates, rng);
        return run_once(cfg, contacts, summary.rates, src, dst,
                        /*start=*/summary.start_time, rng, reg);
      });
  if (cfg.collect_metrics) result.metrics.merge(train_reg);
  return result;
}

}  // namespace odtn::core
