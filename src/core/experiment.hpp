// Experiment engine: repeated protocol runs vs. the analytical models.
//
// This is the engine behind every figure-reproduction bench. Each run draws
// a fresh realization (contact graph or trace start time, endpoints, relay
// groups, compromise set), simulates the protocol on it, measures the
// paper's metrics on the realized paths, and evaluates the analytical
// models on the *same* realization — exactly how the paper compares
// "Analysis" and "Simulation" curves.
//
// Realizations are independent, so the engine shards them across a worker
// pool (config.threads). Run i draws every random quantity from an RNG
// seeded with util::derive_seed(config.seed, i), and per-run samples are
// folded into the result in run-index order on one thread — so results are
// *bit-identical* at every thread count, and an experiment is reproducible
// from (config, scenario) alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/config.hpp"
#include "metrics/metrics.hpp"
#include "trace/contact_trace.hpp"
#include "trace/trace_reader.hpp"
#include "util/stats.hpp"

namespace odtn::core {

// Every metric — simulation and analysis side — is a mergeable accumulator,
// so sharded results combine uniformly (RunningStats::merge) and expose the
// spread across realizations, not just the mean.
struct ExperimentResult {
  // Simulation side (means over runs).
  util::RunningStats sim_delivered;      // 1 if delivered within T else 0
  util::RunningStats sim_delay;          // delivered runs only
  util::RunningStats sim_transmissions;  // all runs (total network cost)
  util::RunningStats sim_traceable;      // delivered runs only
  util::RunningStats sim_anonymity;      // delivered runs only

  // Loaded-traffic runs only (config.traffic enabled; empty otherwise).
  // Per-run samples: sustained delivered msgs per time unit, and the p99
  // delivery delay of the run's delivered messages. Under load,
  // sim_delivered holds the per-run delivery *fraction* and sim_delay the
  // per-run mean delay — same fields, per-workload instead of per-message.
  util::RunningStats sim_throughput;
  util::RunningStats sim_p99_delay;

  // Analysis side (model evaluated per realization, averaged). The security
  // and cost models depend only on (K, g, L, c/n, n), so their per-run
  // samples coincide; keeping them as accumulators makes shard merging
  // uniform instead of silently averaging bare doubles with wrong weights.
  util::RunningStats ana_delivery;
  util::RunningStats ana_traceable_paper;
  util::RunningStats ana_traceable_exact;
  util::RunningStats ana_anonymity;
  util::RunningStats ana_cost_bound;
  util::RunningStats ana_cost_non_anonymous;

  std::size_t delivered_runs = 0;

  /// Quarantined runs: the run body threw (faults::InjectedFault from the
  /// p_run_abort knob, a parser error, anything std::exception). The sweep
  /// continues; a failed run contributes exactly this record — no samples,
  /// no metrics — and the fold skips it deterministically, so results stay
  /// bit-identical at every thread count. In run-index order.
  struct FailedRun {
    std::size_t run = 0;
    std::uint64_t seed = 0;  // derive_seed(config.seed, run)
    std::string message;
  };
  std::vector<FailedRun> failed_runs;

  /// Wall-clock seconds the engine spent producing this result (not merged;
  /// measured per engine invocation).
  double wall_time_s = 0.0;

  /// Observability (only populated when config.collect_metrics): per-run
  /// "experiment.*" delay/transmission histograms, the "routing.*" event
  /// counters from inside the protocols, plus wall-clock phase timers and
  /// thread-pool stats (Stability::kWall — excluded from deterministic
  /// export). Folded from per-run registries in run order, so the stable
  /// part is bit-identical at every thread count.
  metrics::Registry metrics;

  /// Folds another shard in: every accumulator merges, delivered_runs adds.
  void merge(const ExperimentResult& other);
};

/// Random-contact-graph experiments (Sec. V-A "Random graphs"). Each run:
/// fresh graph, random (src, dst), random relay groups, random compromise
/// set. Graph parameters come from the ExperimentConfig (nodes, min_ict,
/// max_ict).
struct RandomGraphScenario {};

/// Experiments against a fixed contact trace (Sec. V-D/V-E). Per run:
/// random (src, dst), a start time sampled from the source's contact events
/// (the paper starts transmissions "after the source has a contact", i.e.
/// during business hours), random relay groups and compromise set. The
/// analysis side is trained on rates estimated from the trace. The trace
/// must outlive the run() call.
struct TraceScenario {
  const trace::ContactTrace* trace = nullptr;
};

/// Streaming-trace experiments for the scale regime: the trace file is
/// ingested in ONE bounded-memory pass (trace::ingest_sparse_trace_file)
/// that trains a sparse contact-rate graph directly — events are never
/// materialized. Runs then sample live Poisson contacts from the trained
/// rates (sim::SparseContactModel), which is the analytical contact model
/// the training fits; the analysis side reads the same sparse rates.
/// Requires config.backend == ContactBackend::kSparse.
struct SparseTraceScenario {
  std::string path;
  trace::TraceFormat format = trace::TraceFormat::kPlain;
  /// Number of mobile nodes (same meaning as the in-memory parsers').
  std::size_t nodes = 0;
};

/// What an Experiment runs on: one of the realization sources above.
using Scenario =
    std::variant<RandomGraphScenario, TraceScenario, SparseTraceScenario>;

/// The unified entry point:
///
///   core::Experiment exp(config);
///   auto r = exp.run(core::RandomGraphScenario{});
///   auto t = exp.run(core::TraceScenario{&trace});
///
/// run() executes config.runs independent realizations of the scenario,
/// sharded over config.threads workers (0 = all hardware threads), and is
/// bit-identical across thread counts.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config) : config_(config) {}

  const ExperimentConfig& config() const { return config_; }

  ExperimentResult run(const Scenario& scenario) const;

 private:
  ExperimentResult run_random_graph(const RandomGraphScenario& s) const;
  ExperimentResult run_trace(const TraceScenario& s) const;
  ExperimentResult run_sparse_trace(const SparseTraceScenario& s) const;

  ExperimentConfig config_;
};

}  // namespace odtn::core
