// Experiment runner: repeated protocol runs vs. the analytical models.
//
// This is the engine behind every figure-reproduction bench. Each run draws
// a fresh realization (contact graph or trace start time, endpoints, relay
// groups, compromise set), simulates the protocol on it, measures the
// paper's metrics on the realized paths, and evaluates the analytical
// models on the *same* realization — exactly how the paper compares
// "Analysis" and "Simulation" curves.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "trace/contact_trace.hpp"
#include "util/stats.hpp"

namespace odtn::core {

struct ExperimentResult {
  // Simulation side (means over runs).
  util::RunningStats sim_delivered;      // 1 if delivered within T else 0
  util::RunningStats sim_delay;          // delivered runs only
  util::RunningStats sim_transmissions;  // all runs (total network cost)
  util::RunningStats sim_traceable;      // delivered runs only
  util::RunningStats sim_anonymity;      // delivered runs only

  // Analysis side (model evaluated per realization, averaged).
  util::RunningStats ana_delivery;
  double ana_traceable_paper = 0.0;
  double ana_traceable_exact = 0.0;
  double ana_anonymity = 0.0;
  double ana_cost_bound = 0.0;
  double ana_cost_non_anonymous = 0.0;

  std::size_t delivered_runs = 0;
};

/// Runs `config.runs` independent realizations on random contact graphs
/// (Sec. V-A "Random graphs"). Each run: fresh graph, random (src, dst),
/// random relay groups, random compromise set.
ExperimentResult run_random_graph_experiment(const ExperimentConfig& config);

/// Runs against a fixed contact trace (Sec. V-D/V-E). Per run: random
/// (src, dst), a start time sampled from the source's contact events (the
/// paper starts transmissions "after the source has a contact", i.e.
/// during business hours), random relay groups and compromise set. The
/// analysis side is trained on rates estimated from the trace.
ExperimentResult run_trace_experiment(const ExperimentConfig& config,
                                      const trace::ContactTrace& trace);

}  // namespace odtn::core
