#include "crypto/aead.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace odtn::crypto {

namespace {

void poly_key_into(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce, util::Bytes& out) {
  auto block = chacha20_block(key, nonce, 0);
  out.assign(block.begin(), block.begin() + 32);
}

void mac_input_into(std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext,
                    util::Bytes& out) {
  out.clear();
  out.reserve(aad.size() + ciphertext.size() + 32);
  out.insert(out.end(), aad.begin(), aad.end());
  out.resize((out.size() + 15) / 16 * 16, 0);
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  out.resize((out.size() + 15) / 16 * 16, 0);
  util::put_u64le(out, aad.size());
  util::put_u64le(out, ciphertext.size());
}

}  // namespace

util::Bytes aead_seal(const util::Bytes& key, const util::Bytes& nonce,
                      const util::Bytes& aad, const util::Bytes& plaintext) {
  util::Bytes out;
  AeadScratch scratch;
  aead_seal_into(key, nonce, aad, plaintext, out, scratch);
  return out;
}

std::optional<util::Bytes> aead_open(const util::Bytes& key,
                                     const util::Bytes& nonce,
                                     const util::Bytes& aad,
                                     const util::Bytes& sealed) {
  util::Bytes out;
  AeadScratch scratch;
  if (!aead_open_into(key, nonce, aad, sealed, out, scratch)) {
    return std::nullopt;
  }
  return out;
}

void aead_seal_into(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> plaintext, util::Bytes& out,
                    AeadScratch& scratch) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead_seal: key must be 32 bytes");
  }
  if (nonce.size() != kAeadNonceSize) {
    throw std::invalid_argument("aead_seal: nonce must be 12 bytes");
  }
  chacha20_xor_into(key, nonce, 1, plaintext, out);
  mac_input_into(aad, out, scratch.mac_data);
  poly_key_into(key, nonce, scratch.poly_key);
  poly1305_tag_into(scratch.poly_key, scratch.mac_data, scratch.tag);
  out.insert(out.end(), scratch.tag.begin(), scratch.tag.end());
}

bool aead_open_into(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> sealed, util::Bytes& out,
                    AeadScratch& scratch) {
  if (key.size() != kAeadKeySize || nonce.size() != kAeadNonceSize) {
    return false;
  }
  if (sealed.size() < kAeadTagSize) return false;
  const auto ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const auto tag = sealed.last(kAeadTagSize);
  mac_input_into(aad, ciphertext, scratch.mac_data);
  poly_key_into(key, nonce, scratch.poly_key);
  poly1305_tag_into(scratch.poly_key, scratch.mac_data, scratch.tag);
  if (!util::ct_equal_span(scratch.tag, tag)) {
    return false;
  }
  chacha20_xor_into(key, nonce, 1, ciphertext, out);
  return true;
}

}  // namespace odtn::crypto
