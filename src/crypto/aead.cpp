#include "crypto/aead.hpp"

#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace odtn::crypto {

namespace {

util::Bytes poly_key(const util::Bytes& key, const util::Bytes& nonce) {
  auto block = chacha20_block(key, nonce, 0);
  return util::Bytes(block.begin(), block.begin() + 32);
}

util::Bytes mac_input(const util::Bytes& aad, const util::Bytes& ciphertext) {
  util::Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  util::append(mac_data, aad);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  util::append(mac_data, ciphertext);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  util::put_u64le(mac_data, aad.size());
  util::put_u64le(mac_data, ciphertext.size());
  return mac_data;
}

}  // namespace

util::Bytes aead_seal(const util::Bytes& key, const util::Bytes& nonce,
                      const util::Bytes& aad, const util::Bytes& plaintext) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead_seal: key must be 32 bytes");
  }
  if (nonce.size() != kAeadNonceSize) {
    throw std::invalid_argument("aead_seal: nonce must be 12 bytes");
  }
  util::Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  util::Bytes tag = poly1305_tag(poly_key(key, nonce),
                                 mac_input(aad, ciphertext));
  util::append(ciphertext, tag);
  return ciphertext;
}

std::optional<util::Bytes> aead_open(const util::Bytes& key,
                                     const util::Bytes& nonce,
                                     const util::Bytes& aad,
                                     const util::Bytes& sealed) {
  if (key.size() != kAeadKeySize || nonce.size() != kAeadNonceSize) {
    return std::nullopt;
  }
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  util::Bytes ciphertext(sealed.begin(),
                         sealed.end() - static_cast<long>(kAeadTagSize));
  util::Bytes tag(sealed.end() - static_cast<long>(kAeadTagSize),
                  sealed.end());
  util::Bytes expect = poly1305_tag(poly_key(key, nonce),
                                    mac_input(aad, ciphertext));
  if (!util::ct_equal(tag, expect)) return std::nullopt;
  return chacha20_xor(key, nonce, 1, ciphertext);
}

}  // namespace odtn::crypto
