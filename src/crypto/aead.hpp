// AEAD_CHACHA20_POLY1305 (RFC 8439 sec 2.8).
//
// The authenticated encryption used for (a) each onion layer under a group
// key and (b) the per-contact "secure link" of Algorithms 1-2.
#pragma once

#include <optional>

#include "util/bytes.hpp"

namespace odtn::crypto {

constexpr std::size_t kAeadKeySize = 32;
constexpr std::size_t kAeadNonceSize = 12;
constexpr std::size_t kAeadTagSize = 16;

/// Encrypts and authenticates: returns ciphertext || 16-byte tag.
util::Bytes aead_seal(const util::Bytes& key, const util::Bytes& nonce,
                      const util::Bytes& aad, const util::Bytes& plaintext);

/// Verifies and decrypts; returns nullopt if authentication fails (wrong
/// key, wrong nonce, tampered ciphertext, or truncated input).
std::optional<util::Bytes> aead_open(const util::Bytes& key,
                                     const util::Bytes& nonce,
                                     const util::Bytes& aad,
                                     const util::Bytes& sealed);

}  // namespace odtn::crypto
