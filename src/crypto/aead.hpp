// AEAD_CHACHA20_POLY1305 (RFC 8439 sec 2.8).
//
// The authenticated encryption used for (a) each onion layer under a group
// key and (b) the per-contact "secure link" of Algorithms 1-2.
#pragma once

#include <optional>
#include <span>

#include "util/bytes.hpp"

namespace odtn::crypto {

constexpr std::size_t kAeadKeySize = 32;
constexpr std::size_t kAeadNonceSize = 12;
constexpr std::size_t kAeadTagSize = 16;

/// Encrypts and authenticates: returns ciphertext || 16-byte tag.
util::Bytes aead_seal(const util::Bytes& key, const util::Bytes& nonce,
                      const util::Bytes& aad, const util::Bytes& plaintext);

/// Verifies and decrypts; returns nullopt if authentication fails (wrong
/// key, wrong nonce, tampered ciphertext, or truncated input).
std::optional<util::Bytes> aead_open(const util::Bytes& key,
                                     const util::Bytes& nonce,
                                     const util::Bytes& aad,
                                     const util::Bytes& sealed);

/// Reusable intermediate buffers for the _into variants; one scratch per
/// sealer/opener makes steady-state AEAD operations allocation-free (the
/// PR-4 zero-allocation contract).
struct AeadScratch {
  util::Bytes mac_data;
  util::Bytes poly_key;
  util::Bytes tag;
};

/// In-place seal: writes ciphertext || tag into `out` (resized, capacity
/// reused). `out` must not alias the inputs.
void aead_seal_into(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> plaintext, util::Bytes& out,
                    AeadScratch& scratch);

/// In-place open: writes the plaintext into `out`. Returns false exactly
/// when aead_open would return nullopt; `out` is unspecified then.
bool aead_open_into(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> nonce,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> sealed, util::Bytes& out,
                    AeadScratch& scratch);

}  // namespace odtn::crypto
