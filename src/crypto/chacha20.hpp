// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Supplies the keystream for onion-layer encryption and for the DRBG.
// Verified against the RFC 8439 test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace odtn::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;

/// The ChaCha20 block function: produces one 64-byte keystream block for the
/// given key/nonce/counter. Exposed for tests and for Poly1305 key setup.
std::array<std::uint8_t, 64> chacha20_block(const util::Bytes& key,
                                            const util::Bytes& nonce,
                                            std::uint32_t counter);

/// XORs `data` with the ChaCha20 keystream starting at `initial_counter`.
/// Encryption and decryption are the same operation.
util::Bytes chacha20_xor(const util::Bytes& key, const util::Bytes& nonce,
                         std::uint32_t initial_counter,
                         const util::Bytes& data);

/// Span-based block function (identical output; no owning-buffer inputs).
std::array<std::uint8_t, 64> chacha20_block(std::span<const std::uint8_t> key,
                                            std::span<const std::uint8_t> nonce,
                                            std::uint32_t counter);

/// In-place variant of chacha20_xor: writes into `out` (resized, capacity
/// reused), allocation-free in steady state. `out` must not alias `data`.
void chacha20_xor_into(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> nonce,
                       std::uint32_t initial_counter,
                       std::span<const std::uint8_t> data, util::Bytes& out);

}  // namespace odtn::crypto
