#include "crypto/drbg.hpp"

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace odtn::crypto {

Drbg::Drbg(const util::Bytes& seed) { key_ = Sha256::digest(seed); }

Drbg::Drbg(std::uint64_t seed) {
  util::Bytes s;
  util::put_u64le(s, seed);
  util::append(s, util::to_bytes("odtn-drbg-v1"));
  key_ = Sha256::digest(s);
}

util::Bytes Drbg::generate(std::size_t n) {
  util::Bytes out;
  ratchet(n, out);
  return out;
}

void Drbg::ratchet(std::size_t output_len, util::Bytes& out) {
  // Stream = next_key (32 bytes) || output (output_len bytes).
  std::uint8_t nonce[kChaChaNonceSize] = {0};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  ++counter_;
  zeros_.assign(32 + output_len, 0);
  chacha20_xor_into(key_, std::span<const std::uint8_t>(nonce), 0, zeros_,
                    stream_);
  out.assign(stream_.begin() + 32, stream_.end());
  util::secure_zero(key_);
  key_.assign(stream_.begin(), stream_.begin() + 32);
  util::secure_zero(stream_);
}

}  // namespace odtn::crypto
