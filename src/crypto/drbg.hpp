// Deterministic random byte generator built on ChaCha20.
//
// The simulator needs *reproducible* cryptographic material (keys, nonces,
// padding) per experiment seed; this DRBG provides a CSPRNG-quality stream
// from a 32-byte seed. It is a simple fast-key-erasure construction: each
// request generates the output plus a fresh key from the keystream.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace odtn::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary input (hashed to 32 bytes).
  explicit Drbg(const util::Bytes& seed);

  /// Convenience: seeds from a 64-bit integer (simulation seeds).
  explicit Drbg(std::uint64_t seed);

  /// Produces `n` pseudo-random bytes and ratchets the internal key.
  util::Bytes generate(std::size_t n);

  /// In-place variant of generate(): writes `n` bytes into `out` (resized,
  /// capacity reused). Identical output stream; allocation-free in steady
  /// state (the internal keystream buffers are reused across calls).
  void generate_into(std::size_t n, util::Bytes& out) { ratchet(n, out); }

  /// Produces a 32-byte key.
  util::Bytes generate_key() { return generate(32); }

  /// Produces a 12-byte nonce.
  util::Bytes generate_nonce() { return generate(12); }

 private:
  void ratchet(std::size_t output_len, util::Bytes& out);

  util::Bytes key_;        // 32-byte current key
  std::uint64_t counter_ = 0;  // nonce counter (never reused per key)
  util::Bytes zeros_;      // reusable keystream input/output buffers
  util::Bytes stream_;
};

}  // namespace odtn::crypto
