#include "crypto/hmac.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace odtn::crypto {

util::Bytes hmac_sha256(const util::Bytes& key, const util::Bytes& data) {
  util::Bytes k = key;
  if (k.size() > Sha256::kBlockSize) k = Sha256::digest(k);
  k.resize(Sha256::kBlockSize, 0);

  util::Bytes ipad(Sha256::kBlockSize), opad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  util::Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

util::Bytes hkdf_extract(const util::Bytes& salt, const util::Bytes& ikm) {
  if (salt.empty()) {
    return hmac_sha256(util::Bytes(Sha256::kDigestSize, 0), ikm);
  }
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(const util::Bytes& prk, const util::Bytes& info,
                        std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes okm;
  okm.reserve(length);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes block = t;
    util::append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return okm;
}

util::Bytes hkdf(const util::Bytes& ikm, const util::Bytes& salt,
                 const util::Bytes& info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace odtn::crypto
