// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF (RFC 5869).
//
// HKDF is the key-derivation workhorse of the library: onion-group keys,
// per-contact session keys, and per-layer nonces are all derived with
// domain-separated info strings.
#pragma once

#include "util/bytes.hpp"

namespace odtn::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length). 32-byte output.
util::Bytes hmac_sha256(const util::Bytes& key, const util::Bytes& data);

/// HKDF-Extract: PRK = HMAC(salt, ikm). Empty salt behaves per RFC 5869.
util::Bytes hkdf_extract(const util::Bytes& salt, const util::Bytes& ikm);

/// HKDF-Expand: derives `length` bytes (length <= 255*32) from PRK with the
/// given context `info`.
util::Bytes hkdf_expand(const util::Bytes& prk, const util::Bytes& info,
                        std::size_t length);

/// Extract-then-expand convenience.
util::Bytes hkdf(const util::Bytes& ikm, const util::Bytes& salt,
                 const util::Bytes& info, std::size_t length);

}  // namespace odtn::crypto
