#include "crypto/poly1305.hpp"

#include <cstring>
#include <stdexcept>

namespace odtn::crypto {

namespace {

// 26-bit limb representation (after poly1305-donna-32, public domain).
struct Poly1305State {
  std::uint32_t r[5];
  std::uint32_t h[5] = {0, 0, 0, 0, 0};
  std::uint32_t pad[4];
};

inline std::uint32_t load_u32le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void poly_init(Poly1305State& st, const std::uint8_t* key) {
  // Clamp r per RFC 8439 sec 2.5.
  std::uint32_t t0 = load_u32le(key + 0);
  std::uint32_t t1 = load_u32le(key + 4);
  std::uint32_t t2 = load_u32le(key + 8);
  std::uint32_t t3 = load_u32le(key + 12);
  st.r[0] = t0 & 0x03ffffff;
  st.r[1] = ((t0 >> 26) | (t1 << 6)) & 0x03ffff03;
  st.r[2] = ((t1 >> 20) | (t2 << 12)) & 0x03ffc0ff;
  st.r[3] = ((t2 >> 14) | (t3 << 18)) & 0x03f03fff;
  st.r[4] = (t3 >> 8) & 0x000fffff;
  st.pad[0] = load_u32le(key + 16);
  st.pad[1] = load_u32le(key + 20);
  st.pad[2] = load_u32le(key + 24);
  st.pad[3] = load_u32le(key + 28);
}

void poly_block(Poly1305State& st, const std::uint8_t* block,
                std::uint32_t hibit) {
  const std::uint32_t r0 = st.r[0], r1 = st.r[1], r2 = st.r[2], r3 = st.r[3],
                      r4 = st.r[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3],
                h4 = st.h[4];

  // h += message block
  std::uint32_t t0 = load_u32le(block + 0);
  std::uint32_t t1 = load_u32le(block + 4);
  std::uint32_t t2 = load_u32le(block + 8);
  std::uint32_t t3 = load_u32le(block + 12);
  h0 += t0 & 0x03ffffff;
  h1 += ((t0 >> 26) | (t1 << 6)) & 0x03ffffff;
  h2 += ((t1 >> 20) | (t2 << 12)) & 0x03ffffff;
  h3 += ((t2 >> 14) | (t3 << 18)) & 0x03ffffff;
  h4 += (t3 >> 8) | hibit;

  // h *= r (mod 2^130 - 5)
  std::uint64_t d0 = (std::uint64_t)h0 * r0 + (std::uint64_t)h1 * s4 +
                     (std::uint64_t)h2 * s3 + (std::uint64_t)h3 * s2 +
                     (std::uint64_t)h4 * s1;
  std::uint64_t d1 = (std::uint64_t)h0 * r1 + (std::uint64_t)h1 * r0 +
                     (std::uint64_t)h2 * s4 + (std::uint64_t)h3 * s3 +
                     (std::uint64_t)h4 * s2;
  std::uint64_t d2 = (std::uint64_t)h0 * r2 + (std::uint64_t)h1 * r1 +
                     (std::uint64_t)h2 * r0 + (std::uint64_t)h3 * s4 +
                     (std::uint64_t)h4 * s3;
  std::uint64_t d3 = (std::uint64_t)h0 * r3 + (std::uint64_t)h1 * r2 +
                     (std::uint64_t)h2 * r1 + (std::uint64_t)h3 * r0 +
                     (std::uint64_t)h4 * s4;
  std::uint64_t d4 = (std::uint64_t)h0 * r4 + (std::uint64_t)h1 * r3 +
                     (std::uint64_t)h2 * r2 + (std::uint64_t)h3 * r1 +
                     (std::uint64_t)h4 * r0;

  // Partial reduction.
  std::uint32_t c;
  c = (std::uint32_t)(d0 >> 26); h0 = (std::uint32_t)d0 & 0x03ffffff;
  d1 += c; c = (std::uint32_t)(d1 >> 26); h1 = (std::uint32_t)d1 & 0x03ffffff;
  d2 += c; c = (std::uint32_t)(d2 >> 26); h2 = (std::uint32_t)d2 & 0x03ffffff;
  d3 += c; c = (std::uint32_t)(d3 >> 26); h3 = (std::uint32_t)d3 & 0x03ffffff;
  d4 += c; c = (std::uint32_t)(d4 >> 26); h4 = (std::uint32_t)d4 & 0x03ffffff;
  h0 += c * 5; c = h0 >> 26; h0 &= 0x03ffffff;
  h1 += c;

  st.h[0] = h0; st.h[1] = h1; st.h[2] = h2; st.h[3] = h3; st.h[4] = h4;
}

void poly_finish(Poly1305State& st, std::uint8_t out[16]) {
  std::uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3],
                h4 = st.h[4];

  // Full carry.
  std::uint32_t c;
  c = h1 >> 26; h1 &= 0x03ffffff;
  h2 += c; c = h2 >> 26; h2 &= 0x03ffffff;
  h3 += c; c = h3 >> 26; h3 &= 0x03ffffff;
  h4 += c; c = h4 >> 26; h4 &= 0x03ffffff;
  h0 += c * 5; c = h0 >> 26; h0 &= 0x03ffffff;
  h1 += c;

  // Compute h + -p.
  std::uint32_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x03ffffff;
  std::uint32_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x03ffffff;
  std::uint32_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x03ffffff;
  std::uint32_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x03ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  // Select h if h < p, else h - p.
  std::uint32_t mask = (g4 >> 31) - 1;
  g0 &= mask; g1 &= mask; g2 &= mask; g3 &= mask; g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h = h % 2^128
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // tag = (h + pad) % 2^128
  std::uint64_t f;
  f = (std::uint64_t)h0 + st.pad[0]; h0 = (std::uint32_t)f;
  f = (std::uint64_t)h1 + st.pad[1] + (f >> 32); h1 = (std::uint32_t)f;
  f = (std::uint64_t)h2 + st.pad[2] + (f >> 32); h2 = (std::uint32_t)f;
  f = (std::uint64_t)h3 + st.pad[3] + (f >> 32); h3 = (std::uint32_t)f;

  std::uint32_t words[4] = {h0, h1, h2, h3};
  for (int i = 0; i < 4; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(words[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(words[i] >> 24);
  }
}

}  // namespace

util::Bytes poly1305_tag(const util::Bytes& key, const util::Bytes& data) {
  util::Bytes tag;
  poly1305_tag_into(key, data, tag);
  return tag;
}

void poly1305_tag_into(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data, util::Bytes& out) {
  if (key.size() != kPolyKeySize) {
    throw std::invalid_argument("poly1305: key must be 32 bytes");
  }
  Poly1305State st;
  poly_init(st, key.data());

  std::size_t offset = 0;
  while (data.size() - offset >= 16) {
    poly_block(st, data.data() + offset, 1u << 24);
    offset += 16;
  }
  if (offset < data.size()) {
    std::uint8_t last[16] = {0};
    std::size_t rem = data.size() - offset;
    std::memcpy(last, data.data() + offset, rem);
    last[rem] = 1;
    poly_block(st, last, 0);
  }
  out.resize(kPolyTagSize);
  poly_finish(st, out.data());
}

}  // namespace odtn::crypto
