// Poly1305 one-time authenticator (RFC 8439), implemented from scratch.
//
// Combined with ChaCha20 into the AEAD used for every onion layer, so a
// relay that lacks the group key cannot peel (or undetectably tamper with)
// a layer.
#pragma once

#include <span>

#include "util/bytes.hpp"

namespace odtn::crypto {

constexpr std::size_t kPolyKeySize = 32;
constexpr std::size_t kPolyTagSize = 16;

/// Computes the 16-byte Poly1305 tag of `data` under a 32-byte one-time key.
util::Bytes poly1305_tag(const util::Bytes& key, const util::Bytes& data);

/// In-place variant: writes the tag into `out` (resized to 16 bytes,
/// capacity reused), allocation-free in steady state.
void poly1305_tag_into(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data, util::Bytes& out);

}  // namespace odtn::crypto
