// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash underlying HMAC/HKDF key derivation for onion-group keys
// and pairwise session keys. Verified against the NIST test vectors in
// tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace odtn::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input; may be called repeatedly.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const util::Bytes& data) { update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards (reconstruct for a new message).
  util::Bytes finish();

  /// One-shot convenience.
  static util::Bytes digest(const util::Bytes& data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace odtn::crypto
