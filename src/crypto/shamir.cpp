#include "crypto/shamir.hpp"

#include <set>
#include <stdexcept>

namespace odtn::crypto {

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  // Russian-peasant multiplication modulo the AES polynomial 0x11b.
  std::uint8_t p = 0;
  while (b != 0) {
    if (b & 1) p ^= a;
    bool carry = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (carry) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

std::uint8_t gf256_inv(std::uint8_t a) {
  if (a == 0) throw std::invalid_argument("gf256_inv: zero has no inverse");
  // a^254 = a^-1 in GF(2^8) (Fermat). Square-and-multiply over the fixed
  // exponent 254 = 0b11111110.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int exp = 254;
  while (exp > 0) {
    if (exp & 1) result = gf256_mul(result, base);
    base = gf256_mul(base, base);
    exp >>= 1;
  }
  return result;
}

std::vector<Share> shamir_split(const util::Bytes& secret,
                                std::size_t threshold,
                                std::size_t share_count, Drbg& drbg) {
  if (threshold == 0 || threshold > share_count) {
    throw std::invalid_argument("shamir_split: bad threshold");
  }
  if (share_count > 255) {
    throw std::invalid_argument("shamir_split: at most 255 shares");
  }

  std::vector<Share> shares(share_count);
  for (std::size_t j = 0; j < share_count; ++j) {
    shares[j].x = static_cast<std::uint8_t>(j + 1);
    shares[j].data.resize(secret.size());
  }

  // Independent polynomial per secret byte: f(x) = s + a_1 x + ... +
  // a_{t-1} x^{t-1} with uniform coefficients.
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    util::Bytes coeffs = drbg.generate(threshold - 1);
    for (std::size_t j = 0; j < share_count; ++j) {
      std::uint8_t x = shares[j].x;
      // Horner evaluation from the highest coefficient down to the secret.
      std::uint8_t y = 0;
      for (std::size_t c = threshold - 1; c-- > 0;) {
        y = static_cast<std::uint8_t>(gf256_mul(y, x) ^ coeffs[c]);
      }
      y = static_cast<std::uint8_t>(gf256_mul(y, x) ^ secret[byte]);
      shares[j].data[byte] = y;
    }
  }
  return shares;
}

util::Bytes shamir_reconstruct(const std::vector<Share>& shares,
                               std::size_t threshold) {
  if (threshold == 0) {
    throw std::invalid_argument("shamir_reconstruct: bad threshold");
  }
  if (shares.size() < threshold) {
    throw std::invalid_argument("shamir_reconstruct: not enough shares");
  }
  std::set<std::uint8_t> xs;
  std::size_t length = shares.front().data.size();
  for (std::size_t j = 0; j < threshold; ++j) {
    if (shares[j].x == 0) {
      throw std::invalid_argument("shamir_reconstruct: share with x = 0");
    }
    if (!xs.insert(shares[j].x).second) {
      throw std::invalid_argument("shamir_reconstruct: duplicate share point");
    }
    if (shares[j].data.size() != length) {
      throw std::invalid_argument("shamir_reconstruct: share length mismatch");
    }
  }

  // Lagrange interpolation at x = 0 using the first `threshold` shares:
  // s = sum_j y_j * prod_{m != j} x_m / (x_m ^ x_j).
  std::vector<std::uint8_t> weights(threshold);
  for (std::size_t j = 0; j < threshold; ++j) {
    std::uint8_t num = 1, den = 1;
    for (std::size_t m = 0; m < threshold; ++m) {
      if (m == j) continue;
      num = gf256_mul(num, shares[m].x);
      den = gf256_mul(den,
                      static_cast<std::uint8_t>(shares[m].x ^ shares[j].x));
    }
    weights[j] = gf256_mul(num, gf256_inv(den));
  }

  util::Bytes secret(length);
  for (std::size_t byte = 0; byte < length; ++byte) {
    std::uint8_t s = 0;
    for (std::size_t j = 0; j < threshold; ++j) {
      s ^= gf256_mul(weights[j], shares[j].data[byte]);
    }
    secret[byte] = s;
  }
  return secret;
}

}  // namespace odtn::crypto
