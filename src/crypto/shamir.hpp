// Shamir threshold secret sharing over GF(2^8) [Shamir, CACM 1979].
//
// Substrate for the Threshold Pivot Scheme (TPS) of Jansen & Beverly
// (MILCOM 2011), which the paper compares against in Sec. VI-C: a message
// is split into s shares such that any tau of them reconstruct it and
// fewer reveal nothing. Each byte of the secret is shared independently
// with a random degree-(tau-1) polynomial; share j carries the polynomial
// evaluations at x = j.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace odtn::crypto {

struct Share {
  std::uint8_t x = 0;  // evaluation point, 1..255 (0 would leak the secret)
  util::Bytes data;    // one byte per secret byte
};

/// Splits `secret` into `share_count` shares with reconstruction threshold
/// `threshold` (1 <= threshold <= share_count <= 255).
std::vector<Share> shamir_split(const util::Bytes& secret,
                                std::size_t threshold,
                                std::size_t share_count, Drbg& drbg);

/// Reconstructs the secret from any `threshold` (or more) distinct shares.
/// Throws std::invalid_argument on inconsistent/insufficient input. With
/// fewer than threshold shares the output of the underlying polynomial is
/// information-theoretically independent of the secret — tested by the
/// distribution checks in tests/crypto/shamir_test.cpp.
util::Bytes shamir_reconstruct(const std::vector<Share>& shares,
                               std::size_t threshold);

/// GF(2^8) helpers (AES polynomial x^8+x^4+x^3+x+1), exposed for tests.
std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf256_inv(std::uint8_t a);

}  // namespace odtn::crypto
