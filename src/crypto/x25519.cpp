#include "crypto/x25519.hpp"

#include <cstring>
#include <stdexcept>

namespace odtn::crypto {

namespace {

// Field element mod p = 2^255 - 19, as 5 limbs of 51 bits.
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with a bias of 2p added so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
  r.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
  r.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
  r.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
  r.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = __uint128_t;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                      b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  std::uint64_t c;
  r.v[0] = (std::uint64_t)t0 & kMask51; c = (std::uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (std::uint64_t)t1 & kMask51; c = (std::uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (std::uint64_t)t2 & kMask51; c = (std::uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (std::uint64_t)t3 & kMask51; c = (std::uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (std::uint64_t)t4 & kMask51; c = (std::uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  using u128 = __uint128_t;
  Fe r;
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)a.v[i] * s;
  std::uint64_t c;
  r.v[0] = (std::uint64_t)t[0] & kMask51; c = (std::uint64_t)(t[0] >> 51);
  t[1] += c;
  r.v[1] = (std::uint64_t)t[1] & kMask51; c = (std::uint64_t)(t[1] >> 51);
  t[2] += c;
  r.v[2] = (std::uint64_t)t[2] & kMask51; c = (std::uint64_t)(t[2] >> 51);
  t[3] += c;
  r.v[3] = (std::uint64_t)t[3] & kMask51; c = (std::uint64_t)(t[3] >> 51);
  t[4] += c;
  r.v[4] = (std::uint64_t)t[4] & kMask51; c = (std::uint64_t)(t[4] >> 51);
  r.v[0] += c * 19;
  return r;
}

// Constant-time conditional swap.
void fe_cswap(Fe& a, Fe& b, std::uint64_t swap) {
  std::uint64_t mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    std::uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

// a^(p-2) = a^-1 mod p.
Fe fe_invert(const Fe& a) {
  // Addition chain from curve25519 reference implementations.
  Fe z2 = fe_sq(a);                       // 2
  Fe z8 = fe_sq(fe_sq(z2));               // 8
  Fe z9 = fe_mul(z8, a);                  // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  Fe z22 = fe_sq(z11);                    // 22
  Fe z_5_0 = fe_mul(z22, z9);             // 2^5 - 2^0
  Fe t = fe_sq(z_5_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);           // 2^10 - 2^0
  t = fe_sq(z_10_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);          // 2^20 - 2^0
  t = fe_sq(z_20_0);
  for (int i = 1; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);          // 2^40 - 2^0
  t = fe_sq(z_40_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);          // 2^50 - 2^0
  t = fe_sq(z_50_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);         // 2^100 - 2^0
  t = fe_sq(z_100_0);
  for (int i = 1; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);        // 2^200 - 2^0
  t = fe_sq(z_200_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);         // 2^250 - 2^0
  t = fe_sq(z_250_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);                  // 2^255 - 21
}

Fe fe_from_bytes(const std::uint8_t* s) {
  auto load64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  };
  Fe r;
  r.v[0] = load64(s) & kMask51;
  r.v[1] = (load64(s + 6) >> 3) & kMask51;
  r.v[2] = (load64(s + 12) >> 6) & kMask51;
  r.v[3] = (load64(s + 19) >> 1) & kMask51;
  // Top bit of the point encoding is masked per RFC 7748.
  r.v[4] = (load64(s + 24) >> 12) & kMask51;
  return r;
}

void fe_to_bytes(std::uint8_t* s, const Fe& a) {
  // Carry fully, then reduce mod p canonically.
  Fe t = a;
  std::uint64_t c;
  for (int pass = 0; pass < 3; ++pass) {
    c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
    c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
    c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
    c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
    c = t.v[4] >> 51; t.v[4] &= kMask51; t.v[0] += c * 19;
  }
  // Now t < 2^255 + small; subtract p if t >= p (constant time).
  std::uint64_t q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;
  t.v[0] += 19 * q;
  c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
  c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
  c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
  c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
  t.v[4] &= kMask51;

  std::uint64_t out0 = t.v[0] | (t.v[1] << 51);
  std::uint64_t out1 = (t.v[1] >> 13) | (t.v[2] << 38);
  std::uint64_t out2 = (t.v[2] >> 26) | (t.v[3] << 25);
  std::uint64_t out3 = (t.v[3] >> 39) | (t.v[4] << 12);
  auto store64 = [](std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  store64(s, out0);
  store64(s + 8, out1);
  store64(s + 16, out2);
  store64(s + 24, out3);
}

}  // namespace

util::Bytes x25519(const util::Bytes& scalar, const util::Bytes& point) {
  if (scalar.size() != kX25519KeySize || point.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  Fe x1 = fe_from_bytes(point.data());
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    std::uint64_t k_t = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e_ = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    Fe t2 = fe_mul_small(e_, 121665);
    z2 = fe_mul(e_, fe_add(aa, t2));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  Fe out = fe_mul(x2, fe_invert(z2));
  util::Bytes result(kX25519KeySize);
  fe_to_bytes(result.data(), out);
  return result;
}

util::Bytes x25519_base(const util::Bytes& scalar) {
  util::Bytes base(kX25519KeySize, 0);
  base[0] = 9;
  return x25519(scalar, base);
}

KeyPair generate_keypair(util::Rng& rng) {
  KeyPair kp;
  kp.private_key.resize(kX25519KeySize);
  for (auto& b : kp.private_key) {
    b = static_cast<std::uint8_t>(rng.below(256));
  }
  kp.public_key = x25519_base(kp.private_key);
  return kp;
}

util::Bytes shared_secret(const util::Bytes& my_private,
                          const util::Bytes& their_public) {
  return x25519(my_private, their_public);
}

}  // namespace odtn::crypto
