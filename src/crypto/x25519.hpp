// X25519 Diffie-Hellman over Curve25519 (RFC 7748), from scratch.
//
// Gives every DTN node an identity key pair. When two nodes meet, the
// protocol layer establishes the "secure link" of Algorithms 1-2 by ECDH +
// HKDF; the onion layer uses the derived key for hop-by-hop AEAD framing.
// Verified against the RFC 7748 test vectors (including the 1k-iteration
// ladder) in tests/crypto/x25519_test.cpp.
#pragma once

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace odtn::crypto {

constexpr std::size_t kX25519KeySize = 32;

/// Scalar multiplication: out = scalar * point (both 32 bytes, little
/// endian). The scalar is clamped internally per RFC 7748.
util::Bytes x25519(const util::Bytes& scalar, const util::Bytes& point);

/// Computes scalar * basepoint (9).
util::Bytes x25519_base(const util::Bytes& scalar);

struct KeyPair {
  util::Bytes private_key;  // 32 bytes (stored unclamped; clamped on use)
  util::Bytes public_key;   // 32 bytes
};

/// Generates a key pair from the given RNG (deterministic per seed; the
/// simulator needs reproducible identities).
KeyPair generate_keypair(util::Rng& rng);

/// ECDH shared secret: x25519(my_private, their_public).
util::Bytes shared_secret(const util::Bytes& my_private,
                          const util::Bytes& their_public);

}  // namespace odtn::crypto
