#include "faults/faults.hpp"

#include <algorithm>

namespace odtn::faults {

namespace {

void check_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
  }
}

// Safety valve against degenerate configurations (tiny means over a huge
// horizon): churn sampling stops after this many flips per node and the
// node stays in its final state. At the paper's time scales (minutes over
// horizons of days) this is never reached.
constexpr std::size_t kMaxTransitionsPerNode = 1 << 16;

}  // namespace

void FaultConfig::validate() const {
  if (mean_uptime < 0.0 || mean_downtime < 0.0) {
    throw std::invalid_argument("FaultConfig: churn means must be >= 0");
  }
  if ((mean_uptime > 0.0) != (mean_downtime > 0.0)) {
    throw std::invalid_argument(
        "FaultConfig: churn needs both mean_uptime and mean_downtime > 0");
  }
  check_probability(p_fail, "p_fail");
  check_probability(blackhole_fraction, "blackhole_fraction");
  check_probability(p_run_abort, "p_run_abort");
  if (gilbert_elliott.has_value()) {
    check_probability(gilbert_elliott->p_good_to_bad, "ge.p_good_to_bad");
    check_probability(gilbert_elliott->p_bad_to_good, "ge.p_bad_to_good");
    check_probability(gilbert_elliott->p_fail_good, "ge.p_fail_good");
    check_probability(gilbert_elliott->p_fail_bad, "ge.p_fail_bad");
  }
}

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t node_count,
                     Time horizon, std::uint64_t seed,
                     std::span<const NodeId> blackhole_exempt)
    : config_(config),
      node_count_(node_count),
      link_rng_(util::derive_seed(seed, 1)) {
  config_.validate();
  if (node_count == 0) {
    throw std::invalid_argument("FaultPlan: node_count must be >= 1");
  }

  if (config_.churn_enabled()) {
    transitions_.resize(node_count);
    starts_up_.resize(node_count);
    down_times_.resize(node_count);
    const double up_rate = 1.0 / config_.mean_uptime;
    const double down_rate = 1.0 / config_.mean_downtime;
    // Stationary start probability of being up.
    const double p_up =
        config_.mean_uptime / (config_.mean_uptime + config_.mean_downtime);
    for (NodeId v = 0; v < node_count; ++v) {
      // Per-node stream: the schedule of node v depends only on (seed, v),
      // never on query order or on other nodes.
      util::Rng rng(util::derive_seed(seed, 2 + v));
      bool up = rng.chance(p_up);
      starts_up_[v] = up;
      Time t = 0.0;
      auto& flips = transitions_[v];
      while (t < horizon && flips.size() < kMaxTransitionsPerNode) {
        t += rng.exponential(up ? up_rate : down_rate);
        if (t >= horizon) break;
        flips.push_back(t);
        up = !up;
        if (!up) {
          down_times_[v].push_back(t);
          crashes_.push_back({t, v});
        }
      }
    }
    std::sort(crashes_.begin(), crashes_.end(),
              [](const CrashEvent& x, const CrashEvent& y) {
                return x.time != y.time ? x.time < y.time : x.node < y.node;
              });
  }

  if (config_.blackholes_enabled()) {
    blackhole_.assign(node_count, false);
    std::vector<bool> exempt(node_count, false);
    std::size_t exempt_count = 0;
    for (NodeId v : blackhole_exempt) {
      if (v < node_count && !exempt[v]) {
        exempt[v] = true;
        ++exempt_count;
      }
    }
    std::vector<NodeId> eligible;
    eligible.reserve(node_count - exempt_count);
    for (NodeId v = 0; v < node_count; ++v) {
      if (!exempt[v]) eligible.push_back(v);
    }
    std::size_t want = static_cast<std::size_t>(
        config_.blackhole_fraction * static_cast<double>(node_count));
    want = std::min(want, eligible.size());
    util::Rng rng(util::derive_seed(seed, 0));
    for (std::size_t i : rng.sample_without_replacement(eligible.size(), want)) {
      blackhole_[eligible[i]] = true;
    }
    blackhole_count_ = want;
  }
}

bool FaultPlan::node_up(NodeId v, Time t) const {
  if (transitions_.empty()) return true;
  const auto& flips = transitions_[v];
  auto flipped = static_cast<std::size_t>(
      std::upper_bound(flips.begin(), flips.end(), t) - flips.begin());
  return starts_up_[v] == ((flipped & 1) == 0);
}

Time FaultPlan::next_crash_after(NodeId v, Time t) const {
  if (down_times_.empty()) return kTimeInfinity;
  const auto& downs = down_times_[v];
  auto it = std::upper_bound(downs.begin(), downs.end(), t);
  return it == downs.end() ? kTimeInfinity : *it;
}

bool FaultPlan::transfer_fails(NodeId a, NodeId b) {
  if (!config_.link_faults_enabled()) return false;
  if (!config_.gilbert_elliott.has_value()) {
    return link_rng_.chance(config_.p_fail);
  }
  const GilbertElliott& ge = *config_.gilbert_elliott;
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  std::uint64_t key = static_cast<std::uint64_t>(lo) * node_count_ + hi;
  bool& bad = link_bad_[key];
  // Transition first, then emit with the new state's loss probability.
  if (bad) {
    if (link_rng_.chance(ge.p_bad_to_good)) bad = false;
  } else {
    if (link_rng_.chance(ge.p_good_to_bad)) bad = true;
  }
  return link_rng_.chance(bad ? ge.p_fail_bad : ge.p_fail_good);
}

}  // namespace odtn::faults
