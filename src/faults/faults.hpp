// odtn::faults — deterministic, seeded fault injection for the simulator.
//
// The paper's models (Eqs. 6-7, 20) assume every contact completes its
// transfer and every relay stays up. Real DTNs are defined by disruption:
// nodes duty-cycle and crash, radio transfers abort mid-contact, and
// adversarial nodes accept copies they never forward. This layer models all
// three, deterministically: a FaultPlan is a pure function of
// (FaultConfig, node_count, horizon, seed), so a faulty run is exactly as
// reproducible as a fault-free one — the experiment engine stays
// bit-identical at every thread count with faults enabled.
//
// Fault classes:
//   * Node churn — each node alternates exponentially-distributed up/down
//     periods (means mean_uptime / mean_downtime), starting in the
//     stationary state. Every up→down transition is a *crash-reboot*: the
//     node's buffered copies (spray state, relayed copies, onion state)
//     are flushed — lost, not leaked.
//   * Transfer failure — each attempted transfer independently fails with
//     probability p_fail; alternatively a Gilbert-Elliott two-state chain
//     per link models correlated (bursty) loss.
//   * Blackholes — a seeded subset of nodes accepts copies and never
//     forwards them (the adversary layer's dropper counterpart).
//   * Run abort — p_run_abort makes a whole experiment run throw
//     InjectedFault, exercising the engine's quarantine path.
//
// Consumers (sim::NetworkSim, the routing protocols, core::Experiment)
// hold a FaultPlan* that is null when every knob is zero; the null path
// performs no RNG draws and no branches beyond one pointer test, which is
// what keeps fault-free output byte-identical to a build without this
// layer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::faults {

/// Thrown by the run-abort fault (and usable by tests to simulate any
/// mid-run failure); the experiment engine quarantines the run instead of
/// letting it take down the sweep.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Two-state correlated-loss model per link: the chain transitions on every
/// transfer attempt, then the attempt fails with the current state's
/// probability. All four values are probabilities in [0, 1].
struct GilbertElliott {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.0;
  double p_fail_good = 0.0;
  double p_fail_bad = 1.0;
};

struct FaultConfig {
  /// Node churn: mean exponential up/down durations (same time unit as the
  /// contact process). Churn is enabled only when both are > 0.
  double mean_uptime = 0.0;
  double mean_downtime = 0.0;

  /// Independent per-transfer failure probability.
  double p_fail = 0.0;
  /// When set, overrides p_fail with a per-link Gilbert-Elliott chain.
  std::optional<GilbertElliott> gilbert_elliott;

  /// Fraction of nodes (rounded down) that are blackholes.
  double blackhole_fraction = 0.0;

  /// Probability that a whole experiment run throws InjectedFault at start
  /// (harness fault; exercises the engine's quarantine path). Not part of
  /// the network fault plan.
  double p_run_abort = 0.0;

  bool churn_enabled() const { return mean_uptime > 0.0 && mean_downtime > 0.0; }
  bool link_faults_enabled() const {
    return p_fail > 0.0 || gilbert_elliott.has_value();
  }
  bool blackholes_enabled() const { return blackhole_fraction > 0.0; }
  /// Whether a FaultPlan is needed at all (p_run_abort is engine-level and
  /// deliberately excluded).
  bool enabled() const {
    return churn_enabled() || link_faults_enabled() || blackholes_enabled();
  }

  /// Throws std::invalid_argument on out-of-range probabilities or negative
  /// durations.
  void validate() const;
};

/// One realization of the fault processes over [0, horizon): per-node up/down
/// schedules, the blackhole set, and the per-link loss state. Construction
/// is deterministic in (config, node_count, horizon, seed); transfer_fails
/// is stateful but callers query it in simulated-event order, which is
/// itself deterministic per run.
class FaultPlan {
 public:
  /// `blackhole_exempt` lists nodes that must not be blackholes (the
  /// experiment engine exempts the endpoints so the blackhole knob measures
  /// relay droppers, not trivially-dead destinations).
  FaultPlan(const FaultConfig& config, std::size_t node_count, Time horizon,
            std::uint64_t seed,
            std::span<const NodeId> blackhole_exempt = {});

  const FaultConfig& config() const { return config_; }
  std::size_t node_count() const { return node_count_; }

  /// Churn duty cycle: is `v` powered on at time t?
  bool node_up(NodeId v, Time t) const;

  /// First crash (up→down transition) of `v` strictly after `t`;
  /// kTimeInfinity if none before the horizon.
  Time next_crash_after(NodeId v, Time t) const;

  /// Whether `v` crashed in the window (t0, t1].
  bool crashed_in(NodeId v, Time t0, Time t1) const {
    return next_crash_after(v, t0) <= t1;
  }

  bool is_blackhole(NodeId v) const { return !blackhole_.empty() && blackhole_[v]; }
  std::size_t blackhole_count() const { return blackhole_count_; }

  /// Stateful draw: does this transfer attempt over link (a, b) fail?
  /// Consumes RNG state (and advances the link's Gilbert-Elliott chain), so
  /// call it exactly once per attempted transfer, in simulation order.
  bool transfer_fails(NodeId a, NodeId b);

  /// Every crash event in the plan, time-sorted (ties by node id) — the
  /// whole-network simulator drains this to flush crashed buffers.
  struct CrashEvent {
    Time time;
    NodeId node;
  };
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

 private:
  FaultConfig config_;
  std::size_t node_count_;
  /// Per node: times at which the up/down state flips, increasing;
  /// starts_up_[v] gives the state before the first flip.
  std::vector<std::vector<Time>> transitions_;
  std::vector<bool> starts_up_;
  std::vector<std::vector<Time>> down_times_;  // per node, sorted
  std::vector<CrashEvent> crashes_;
  std::vector<bool> blackhole_;
  std::size_t blackhole_count_ = 0;
  // odtn-lint: allow(rng) — declaration only: seeded in the FaultPlan
  // constructor init list from derive_seed(seed, 1)
  util::Rng link_rng_;
  std::unordered_map<std::uint64_t, bool> link_bad_;  // Gilbert-Elliott state
};

}  // namespace odtn::faults
