#include "graph/contact_graph.hpp"

#include <stdexcept>

namespace odtn::graph {

ContactGraph::ContactGraph(std::size_t n) : n_(n) {
  if (n < 2) throw std::invalid_argument("ContactGraph: need >= 2 nodes");
  rates_.assign(n * (n - 1) / 2, 0.0);
}

std::size_t ContactGraph::index(NodeId i, NodeId j) const {
  if (i >= n_ || j >= n_ || i == j) {
    throw std::out_of_range("ContactGraph: bad node pair");
  }
  if (i > j) std::swap(i, j);
  // Row-major upper triangle: row i starts at i*n - i*(i+1)/2 - i... use
  // the standard formula for pair (i, j), i < j:
  std::size_t row_start = static_cast<std::size_t>(i) * (2 * n_ - i - 1) / 2;
  return row_start + (j - i - 1);
}

double ContactGraph::rate(NodeId i, NodeId j) const {
  if (i == j) return 0.0;
  return rates_[index(i, j)];
}

ContactGraph::RowView ContactGraph::row(NodeId i) const {
  if (i >= n_) throw std::out_of_range("ContactGraph: bad node pair");
  return RowView(rates_.data(), n_, i);
}

void ContactGraph::set_rate(NodeId i, NodeId j, double r) {
  if (r < 0.0) throw std::invalid_argument("ContactGraph: negative rate");
  rates_[index(i, j)] = r;
}

void ContactGraph::set_inter_contact_time(NodeId i, NodeId j, double ict) {
  if (!(ict > 0.0)) {
    throw std::invalid_argument("ContactGraph: inter-contact time must be > 0");
  }
  set_rate(i, j, 1.0 / ict);
}

double ContactGraph::rate_to_set(NodeId i, std::span<const NodeId> targets) const {
  const RowView r = row(i);
  double sum = 0.0;
  for (NodeId t : targets) {
    if (t != i) sum += r.rate(t);
  }
  return sum;
}

double ContactGraph::row_rate_sum(NodeId i) const {
  const RowView r = row(i);
  const std::size_t n = n_;
  double sum = 0.0;
  for (NodeId j = 0; j < n; ++j) sum += r.rate(j);
  return sum;
}

double ContactGraph::total_rate() const {
  double sum = 0.0;
  for (double r : rates_) sum += r;
  return sum;
}

std::vector<NodeId> ContactGraph::neighbors(NodeId i) const {
  std::vector<NodeId> out;
  append_neighbors(i, out);
  return out;
}

void ContactGraph::append_neighbors(NodeId i, std::vector<NodeId>& out) const {
  const RowView r = row(i);
  for (NodeId j = 0; j < n_; ++j) {
    if (j != i && r.rate(j) > 0.0) out.push_back(j);
  }
}

ContactGraph random_contact_graph(std::size_t n, util::Rng& rng,
                                  double min_ict, double max_ict) {
  if (!(min_ict > 0.0) || max_ict < min_ict) {
    throw std::invalid_argument("random_contact_graph: bad ICT range");
  }
  ContactGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      g.set_inter_contact_time(i, j, rng.uniform(min_ict, max_ict));
    }
  }
  return g;
}

ContactGraph sparse_contact_graph(std::size_t n, double p, util::Rng& rng,
                                  double min_ict, double max_ict) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("sparse_contact_graph: p out of [0,1]");
  }
  ContactGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.chance(p)) {
        g.set_inter_contact_time(i, j, rng.uniform(min_ict, max_ict));
      }
    }
  }
  return g;
}

ContactGraph community_contact_graph(std::size_t n, std::size_t communities,
                                     double slowdown, util::Rng& rng,
                                     double min_ict, double max_ict) {
  if (communities == 0 || communities > n) {
    throw std::invalid_argument("community_contact_graph: bad community count");
  }
  if (!(slowdown >= 1.0)) {
    throw std::invalid_argument("community_contact_graph: slowdown must be >= 1");
  }
  ContactGraph g(n);
  std::size_t block = (n + communities - 1) / communities;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      double ict = rng.uniform(min_ict, max_ict);
      if (i / block != j / block) ict *= slowdown;
      g.set_inter_contact_time(i, j, ict);
    }
  }
  return g;
}

}  // namespace odtn::graph
