// Contact-graph representation of a DTN (Sec. III-A of the paper).
//
// A DTN is a graph over n nodes where edge (i, j) carries the contact rate
// lambda_ij: contacts between i and j form a Poisson process with that
// rate, i.e. inter-contact times are exponential with mean 1/lambda_ij.
// A zero rate means the pair never meets.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "graph/contact_rates.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::graph {

class ContactGraph final : public ContactRates {
 public:
  /// Creates a graph of `n` isolated nodes (all rates zero).
  explicit ContactGraph(std::size_t n);

  /// Bounds-checked once at construction (via ContactGraph::row), then
  /// reads the fixed node's symmetric rates without re-deriving the
  /// triangular index base per lookup — the row above the diagonal is a
  /// single contiguous slice of the rate array. Invalidated by destroying
  /// the graph (set_rate keeps it valid: storage never moves).
  class RowView {
   public:
    /// Symmetric rate(i, j) for the fixed row node i; 0 for j == i.
    double rate(NodeId j) const {
      if (j >= n_) throw std::out_of_range("ContactGraph: bad node pair");
      if (j > i_) return rates_[row_start_ + (j - i_ - 1)];
      if (j == i_) return 0.0;
      return rates_[static_cast<std::size_t>(j) * (2 * n_ - j - 1) / 2 +
                    (i_ - j - 1)];
    }

   private:
    friend class ContactGraph;
    RowView(const double* rates, std::size_t n, NodeId i)
        : rates_(rates),
          n_(n),
          i_(i),
          row_start_(static_cast<std::size_t>(i) * (2 * n - i - 1) / 2) {}

    const double* rates_;
    std::size_t n_;
    NodeId i_;
    std::size_t row_start_;
  };

  std::size_t node_count() const override { return n_; }

  /// Contact rate between i and j (symmetric). rate(i, i) is always 0.
  double rate(NodeId i, NodeId j) const override;

  /// Rate accessor with the row bounds check and triangular index base
  /// hoisted out of the inner loop; `i` must be a valid node.
  RowView row(NodeId i) const;

  /// Sets the symmetric contact rate; `r` must be >= 0 and i != j.
  void set_rate(NodeId i, NodeId j, double r);

  /// Equivalent: sets rate from a mean inter-contact time (> 0).
  void set_inter_contact_time(NodeId i, NodeId j, double ict);

  /// Sum of rates from `i` into the node set `targets` (skipping i itself):
  /// the aggregate rate at which i meets *any* member — the anycast rate of
  /// the opportunistic onion path model (Eq. 4, first/last cases).
  double rate_to_set(NodeId i,
                     std::span<const NodeId> targets) const override;

  /// Total rate of `i` against all peers, via the contiguous RowView.
  double row_rate_sum(NodeId i) const override;

  /// Total pairwise rate over the whole graph (used by the event-driven
  /// baselines to sample "next contact anywhere").
  double total_rate() const override;

  /// All neighbors of i with non-zero rate.
  std::vector<NodeId> neighbors(NodeId i) const;

  void append_neighbors(NodeId i, std::vector<NodeId>& out) const override;

 private:
  std::size_t index(NodeId i, NodeId j) const;

  std::size_t n_;
  // Upper-triangular dense storage: rates_[index(i,j)] for i < j.
  std::vector<double> rates_;
};

/// Random contact graph of Table II: every pair gets an inter-contact time
/// drawn uniformly from [min_ict, max_ict] (paper: 10..360 minutes).
ContactGraph random_contact_graph(std::size_t n, util::Rng& rng,
                                  double min_ict = 10.0,
                                  double max_ict = 360.0);

/// Sparse variant: each pair is connected with probability `p` (and then
/// gets a uniform inter-contact time). Used for ablations: the paper's model
/// assumes a dense contact graph, and this generator shows where the
/// approximation degrades.
ContactGraph sparse_contact_graph(std::size_t n, double p, util::Rng& rng,
                                  double min_ict = 10.0,
                                  double max_ict = 360.0);

/// Community-structured graph: nodes are split into `communities` equal
/// blocks; intra-community pairs use [min_ict, max_ict], inter-community
/// pairs are `slowdown` times slower. Models the social structure of
/// human-contact DTNs for the example applications.
ContactGraph community_contact_graph(std::size_t n, std::size_t communities,
                                     double slowdown, util::Rng& rng,
                                     double min_ict = 10.0,
                                     double max_ict = 360.0);

}  // namespace odtn::graph
