#include "graph/contact_rates.hpp"

#include <stdexcept>

namespace odtn::graph {

double ContactRates::rate_to_set(NodeId i,
                                 std::span<const NodeId> targets) const {
  double sum = 0.0;
  for (NodeId t : targets) {
    if (t != i) sum += rate(i, t);
  }
  return sum;
}

double ContactRates::mean_set_to_set_rate(std::span<const NodeId> from,
                                          std::span<const NodeId> to) const {
  if (from.empty()) throw std::invalid_argument("mean_set_to_set_rate: empty");
  double sum = 0.0;
  for (NodeId i : from) sum += rate_to_set(i, to);
  return sum / static_cast<double>(from.size());
}

double ContactRates::row_rate_sum(NodeId i) const {
  const std::size_t n = node_count();
  double sum = 0.0;
  for (NodeId j = 0; j < n; ++j) sum += rate(i, j);
  return sum;
}

double ContactRates::total_rate() const {
  const std::size_t n = node_count();
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) sum += rate(i, j);
  }
  return sum;
}

void ContactRates::append_neighbors(NodeId i, std::vector<NodeId>& out) const {
  const std::size_t n = node_count();
  for (NodeId j = 0; j < n; ++j) {
    if (j != i && rate(i, j) > 0.0) out.push_back(j);
  }
}

}  // namespace odtn::graph
