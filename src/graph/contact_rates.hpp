// Backend-neutral read surface over pairwise contact rates.
//
// The analysis layer (Eq. 4 rate aggregation, targeted adversaries, rate
// summaries) historically consumed the dense `graph::ContactGraph`
// directly, which hard-wired O(n²) storage into every caller. ContactRates
// is the abstraction that breaks that coupling: the dense triangular
// ContactGraph and the CSR SparseContactGraph both implement it, so every
// rate consumer runs unchanged on either backend.
//
// Determinism contract: all set-aggregation helpers accumulate in the
// caller-visible enumeration order (span order for rate_to_set /
// mean_set_to_set_rate, ascending node id for row_rate_sum, ascending
// (i, j) with i < j for total_rate). Both backends follow the same order,
// so a sparse graph holding the same rates as a dense one produces
// bit-identical sums — the property the cross-backend equivalence suite
// locks in.
#pragma once

#include <span>
#include <vector>

#include "util/ids.hpp"

namespace odtn::graph {

class ContactRates {
 public:
  virtual ~ContactRates() = default;

  virtual std::size_t node_count() const = 0;

  /// Symmetric contact rate lambda_ij; rate(i, i) is always 0.
  virtual double rate(NodeId i, NodeId j) const = 0;

  /// Sum of rates from `i` into the node set `targets` (skipping i itself),
  /// accumulated in span order: the anycast rate of the opportunistic onion
  /// path model (Eq. 4, first/last cases).
  virtual double rate_to_set(NodeId i, std::span<const NodeId> targets) const;

  /// Average over senders in `from` of the summed rate into `to`
  /// (Eq. 4, middle case): (1/|from|) * sum_{i in from} sum_{j in to} rate.
  double mean_set_to_set_rate(std::span<const NodeId> from,
                              std::span<const NodeId> to) const;

  /// Total rate of node `i` against every other node, accumulated in
  /// ascending peer id (used by the targeted-adversary model to rank nodes
  /// by contact activity).
  virtual double row_rate_sum(NodeId i) const;

  /// Total pairwise rate over the whole graph, accumulated in ascending
  /// (i, j), i < j — the dense triangular storage order.
  virtual double total_rate() const;

  /// Appends the peers of `i` with non-zero rate to `out`, in ascending id
  /// order. O(degree) on sparse backends, O(n) on dense ones.
  virtual void append_neighbors(NodeId i, std::vector<NodeId>& out) const;
};

}  // namespace odtn::graph
