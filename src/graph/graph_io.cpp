#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace odtn::graph {

std::string format_graph(const ContactGraph& graph) {
  std::ostringstream os;
  os.precision(17);
  os << "odtn-graph 1 " << graph.node_count() << "\n";
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    for (NodeId j = i + 1; j < graph.node_count(); ++j) {
      double r = graph.rate(i, j);
      if (r > 0.0) os << i << ' ' << j << ' ' << r << "\n";
    }
  }
  return os.str();
}

ContactGraph parse_graph(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  // Header.
  std::size_t n = 0;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string magic;
    if (!(ls >> magic)) continue;
    int version;
    if (magic != "odtn-graph" || !(ls >> version >> n) || version != 1) {
      throw std::invalid_argument("parse_graph: bad header on line " +
                                  std::to_string(line_no));
    }
    have_header = true;
    break;
  }
  if (!have_header) throw std::invalid_argument("parse_graph: missing header");

  ContactGraph graph(n);
  while (std::getline(is, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    long i, j;
    double rate;
    if (!(ls >> i)) continue;
    if (!(ls >> j >> rate)) {
      throw std::invalid_argument("parse_graph: malformed line " +
                                  std::to_string(line_no));
    }
    if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n ||
        static_cast<std::size_t>(j) >= n) {
      throw std::invalid_argument("parse_graph: unknown node on line " +
                                  std::to_string(line_no));
    }
    if (graph.rate(static_cast<NodeId>(i), static_cast<NodeId>(j)) != 0.0) {
      throw std::invalid_argument("parse_graph: duplicate edge on line " +
                                  std::to_string(line_no));
    }
    graph.set_rate(static_cast<NodeId>(i), static_cast<NodeId>(j), rate);
  }
  return graph;
}

void save_graph_file(const ContactGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph_file: cannot open " + path);
  out << format_graph(graph);
}

ContactGraph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_graph(buf.str());
}

}  // namespace odtn::graph
