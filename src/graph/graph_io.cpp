#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace odtn::graph {

std::string format_graph(const ContactGraph& graph) {
  std::ostringstream os;
  os.precision(17);
  os << "odtn-graph 1 " << graph.node_count() << "\n";
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    for (NodeId j = i + 1; j < graph.node_count(); ++j) {
      double r = graph.rate(i, j);
      if (r > 0.0) os << i << ' ' << j << ' ' << r << "\n";
    }
  }
  return os.str();
}

ContactGraph parse_graph(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  // Header.
  std::size_t n = 0;
  bool have_header = false;
  std::size_t line_no = 0;
  auto next_line = [&] {
    if (!std::getline(is, line)) return false;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    return true;
  };
  while (next_line()) {
    std::istringstream ls(line);
    std::string magic;
    if (!(ls >> magic)) continue;
    int version;
    if (magic != "odtn-graph" || !(ls >> version >> n) || version != 1) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": bad graph header");
    }
    have_header = true;
    break;
  }
  if (!have_header) throw std::invalid_argument("parse_graph: missing header");

  ContactGraph graph(n);
  while (next_line()) {
    std::istringstream ls(line);
    long i, j;
    double rate;
    if (!(ls >> i)) continue;
    if (!(ls >> j >> rate)) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": malformed edge (expected 'i j rate')");
    }
    if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n ||
        static_cast<std::size_t>(j) >= n) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": unknown node");
    }
    if (graph.rate(static_cast<NodeId>(i), static_cast<NodeId>(j)) != 0.0) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": duplicate edge");
    }
    graph.set_rate(static_cast<NodeId>(i), static_cast<NodeId>(j), rate);
  }
  return graph;
}

void save_graph_file(const ContactGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph_file: cannot open " + path);
  out << format_graph(graph);
}

ContactGraph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_graph(buf.str());
  } catch (const std::invalid_argument& e) {
    // One-line file:line diagnostic for CLI consumers.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace odtn::graph
