// Contact-graph (de)serialization.
//
// Lets experiments pin a graph realization to disk — e.g. to re-run a
// figure on the exact graph that produced an anomaly, or to exchange
// calibrated rate matrices between deployments.
#pragma once

#include <string>

#include "graph/contact_graph.hpp"

namespace odtn::graph {

/// Text format: `odtn-graph 1 <n>` header, then one `i j rate` line per
/// non-zero edge. '#' comments allowed.
std::string format_graph(const ContactGraph& graph);

/// Parses the format above; throws std::invalid_argument on malformed
/// input (bad header, unknown nodes, negative rates, duplicate edges).
ContactGraph parse_graph(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on IO failure.
void save_graph_file(const ContactGraph& graph, const std::string& path);
ContactGraph load_graph_file(const std::string& path);

}  // namespace odtn::graph
