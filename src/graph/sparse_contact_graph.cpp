#include "graph/sparse_contact_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::graph {

SparseContactGraph::Builder::Builder(std::size_t n) : n_(n) {
  if (n < 2) {
    throw std::invalid_argument("SparseContactGraph: need >= 2 nodes");
  }
}

void SparseContactGraph::Builder::add_edge(NodeId i, NodeId j, double r) {
  if (i >= n_ || j >= n_ || i == j) {
    throw std::out_of_range("SparseContactGraph: bad node pair");
  }
  if (r < 0.0) {
    throw std::invalid_argument("SparseContactGraph: negative rate");
  }
  if (r == 0.0) return;
  src_.push_back(i);
  dst_.push_back(j);
  rate_.push_back(r);
}

void SparseContactGraph::Builder::add_inter_contact_time(NodeId i, NodeId j,
                                                         double ict) {
  if (!(ict > 0.0)) {
    throw std::invalid_argument(
        "SparseContactGraph: inter-contact time must be > 0");
  }
  add_edge(i, j, 1.0 / ict);
}

SparseContactGraph SparseContactGraph::Builder::build() && {
  SparseContactGraph g(n_);
  const std::size_t m = src_.size();

  struct Entry {
    NodeId node;
    NodeId nbr;
    double r;
    std::uint64_t seq;
  };
  std::vector<Entry> dir;
  dir.reserve(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    dir.push_back({src_[e], dst_[e], rate_[e], e});
    dir.push_back({dst_[e], src_[e], rate_[e], e});
  }
  // seq as the tiebreak makes the later dedup keep the first-added rate for
  // a repeated pair.
  std::sort(dir.begin(), dir.end(), [](const Entry& a, const Entry& b) {
    if (a.node != b.node) return a.node < b.node;
    if (a.nbr != b.nbr) return a.nbr < b.nbr;
    return a.seq < b.seq;
  });

  std::size_t unique = 0;
  for (std::size_t k = 0; k < dir.size(); ++k) {
    if (k == 0 || dir[k].node != dir[k - 1].node ||
        dir[k].nbr != dir[k - 1].nbr) {
      ++unique;
    }
  }

  g.adj_id_.reserve(unique);
  g.adj_rate_.reserve(unique);
  for (std::size_t k = 0; k < dir.size(); ++k) {
    if (k > 0 && dir[k].node == dir[k - 1].node &&
        dir[k].nbr == dir[k - 1].nbr) {
      continue;
    }
    g.adj_id_.push_back(dir[k].nbr);
    g.adj_rate_.push_back(dir[k].r);
    g.row_start_[dir[k].node + 1]++;
  }
  for (std::size_t i = 0; i < n_; ++i) g.row_start_[i + 1] += g.row_start_[i];
  return g;
}

SparseContactGraph::SparseContactGraph(std::size_t n) : n_(n) {
  if (n < 2) {
    throw std::invalid_argument("SparseContactGraph: need >= 2 nodes");
  }
  row_start_.assign(n + 1, 0);
}

std::size_t SparseContactGraph::degree(NodeId i) const {
  if (i >= n_) throw std::out_of_range("SparseContactGraph: bad node pair");
  return static_cast<std::size_t>(row_start_[i + 1] - row_start_[i]);
}

std::span<const NodeId> SparseContactGraph::neighbor_ids(NodeId i) const {
  if (i >= n_) throw std::out_of_range("SparseContactGraph: bad node pair");
  return {adj_id_.data() + row_start_[i],
          static_cast<std::size_t>(row_start_[i + 1] - row_start_[i])};
}

std::span<const double> SparseContactGraph::neighbor_rates(NodeId i) const {
  if (i >= n_) throw std::out_of_range("SparseContactGraph: bad node pair");
  return {adj_rate_.data() + row_start_[i],
          static_cast<std::size_t>(row_start_[i + 1] - row_start_[i])};
}

double SparseContactGraph::rate(NodeId i, NodeId j) const {
  if (i == j) return 0.0;
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("SparseContactGraph: bad node pair");
  }
  const auto ids = neighbor_ids(i);
  const auto it = std::lower_bound(ids.begin(), ids.end(), j);
  if (it == ids.end() || *it != j) return 0.0;
  return adj_rate_[row_start_[i] + static_cast<std::size_t>(it - ids.begin())];
}

double SparseContactGraph::rate_to_set(NodeId i,
                                       std::span<const NodeId> targets) const {
  const auto ids = neighbor_ids(i);  // bounds-checks i
  const auto rates = neighbor_rates(i);
  // Span order with 0.0 for absent pairs: adding +0.0 never changes a
  // non-negative sum, so this matches the dense accumulation bit-for-bit.
  double sum = 0.0;
  for (NodeId t : targets) {
    if (t == i) continue;
    if (t >= n_) throw std::out_of_range("SparseContactGraph: bad node pair");
    const auto it = std::lower_bound(ids.begin(), ids.end(), t);
    if (it != ids.end() && *it == t) {
      sum += rates[static_cast<std::size_t>(it - ids.begin())];
    }
  }
  return sum;
}

double SparseContactGraph::row_rate_sum(NodeId i) const {
  // Ascending row order == dense ascending-j order minus exact zeros.
  double sum = 0.0;
  for (double r : neighbor_rates(i)) sum += r;
  return sum;
}

double SparseContactGraph::total_rate() const {
  // Ascending (i, j), i < j — the dense triangular storage order.
  double sum = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    const auto ids = neighbor_ids(i);
    const auto rates = neighbor_rates(i);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (ids[k] > i) sum += rates[k];
    }
  }
  return sum;
}

void SparseContactGraph::append_neighbors(NodeId i,
                                          std::vector<NodeId>& out) const {
  const auto ids = neighbor_ids(i);
  out.insert(out.end(), ids.begin(), ids.end());
}

std::size_t SparseContactGraph::memory_bytes() const {
  return row_start_.capacity() * sizeof(std::uint64_t) +
         adj_id_.capacity() * sizeof(NodeId) +
         adj_rate_.capacity() * sizeof(double);
}

SparseContactGraph sparse_from_dense(const ContactGraph& dense) {
  const std::size_t n = dense.node_count();
  SparseContactGraph::Builder b(n);
  for (NodeId i = 0; i < n; ++i) {
    const ContactGraph::RowView row = dense.row(i);
    for (NodeId j = i + 1; j < n; ++j) {
      const double r = row.rate(j);
      if (r > 0.0) b.add_edge(i, j, r);
    }
  }
  return std::move(b).build();
}

SparseContactGraph sparse_random_contact_graph(std::size_t n, util::Rng& rng,
                                               double min_ict,
                                               double max_ict) {
  if (!(min_ict > 0.0) || max_ict < min_ict) {
    throw std::invalid_argument("sparse_random_contact_graph: bad ICT range");
  }
  SparseContactGraph::Builder b(n);
  // Identical pair enumeration and draw sequence to random_contact_graph:
  // a run seeded the same way sees the same rates on either backend.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      b.add_inter_contact_time(i, j, rng.uniform(min_ict, max_ict));
    }
  }
  return std::move(b).build();
}

SparseContactGraph sparse_community_contact_graph(
    std::size_t n, std::size_t avg_degree, std::size_t communities,
    util::Rng& rng, double min_ict, double max_ict, double slowdown,
    double intra_fraction) {
  if (n < 2) {
    throw std::invalid_argument("SparseContactGraph: need >= 2 nodes");
  }
  if (avg_degree == 0 || avg_degree >= n) {
    throw std::invalid_argument(
        "sparse_community_contact_graph: avg_degree must be in [1, n)");
  }
  if (communities == 0 || communities > n) {
    throw std::invalid_argument(
        "sparse_community_contact_graph: bad community count");
  }
  if (!(slowdown >= 1.0)) {
    throw std::invalid_argument(
        "sparse_community_contact_graph: slowdown must be >= 1");
  }
  if (!(intra_fraction >= 0.0 && intra_fraction <= 1.0)) {
    throw std::invalid_argument(
        "sparse_community_contact_graph: intra_fraction out of [0,1]");
  }
  if (!(min_ict > 0.0) || max_ict < min_ict) {
    throw std::invalid_argument(
        "sparse_community_contact_graph: bad ICT range");
  }

  const std::size_t block = (n + communities - 1) / communities;
  SparseContactGraph::Builder b(n);
  // Each node proposes ~avg_degree/2 undirected edges, so the realized mean
  // degree approaches avg_degree (minus duplicate-proposal collapse).
  const std::size_t proposals = std::max<std::size_t>(1, avg_degree / 2);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t c = i / block;
    const std::size_t c_begin = c * block;
    const std::size_t c_size = std::min(block, n - c_begin);
    for (std::size_t p = 0; p < proposals; ++p) {
      NodeId j;
      const bool intra = c_size > 1 && rng.chance(intra_fraction);
      do {
        if (intra) {
          j = static_cast<NodeId>(c_begin + rng.below(c_size));
        } else {
          j = static_cast<NodeId>(rng.below(n));
        }
      } while (j == i);
      double ict = rng.uniform(min_ict, max_ict);
      if (i / block != j / block) ict *= slowdown;
      b.add_inter_contact_time(i, j, ict);
    }
  }
  return std::move(b).build();
}

}  // namespace odtn::graph
