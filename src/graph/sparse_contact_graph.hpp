// Sparse CSR contact-rate storage: the million-node backend.
//
// The dense ContactGraph stores all n(n-1)/2 pair rates, which caps
// experiments near the paper's n ≈ 100: at n = 10⁶ the triangle alone is
// ~4 TB. Real contact processes are sparse — Conan et al. (PAPERS.md)
// measure heterogeneous per-pair rates over a contact *graph*, not a
// clique — so this backend stores only the pairs that ever meet, in
// compressed-sparse-row form: a row-offset array plus parallel
// (neighbor id, rate) arrays, both directions materialized so every row
// read is one contiguous slice. Memory is O(n + m) for m undirected edges
// (~24 bytes per directed entry), i.e. bytes/node proportional to average
// degree instead of to n.
//
// Determinism: row neighbor ids are strictly ascending, and every
// aggregation helper accumulates in the ContactRates contract order, so a
// SparseContactGraph holding the same rates as a dense ContactGraph is
// bit-identical to it under every analysis and simulation query (the
// cross-backend equivalence suite asserts this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/contact_graph.hpp"
#include "graph/contact_rates.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::graph {

class SparseContactGraph final : public ContactRates {
 public:
  /// Incremental edge collector. add() order is free; build() sorts into
  /// CSR. Duplicate (i, j) pairs keep the first-added rate.
  class Builder {
   public:
    explicit Builder(std::size_t n);

    /// Records the symmetric rate lambda_ij; r must be >= 0, i != j, both
    /// ids < n. Zero rates are dropped (a pair that never meets is simply
    /// absent, as in the dense representation's default).
    void add_edge(NodeId i, NodeId j, double r);

    /// Equivalent: from a mean inter-contact time (> 0).
    void add_inter_contact_time(NodeId i, NodeId j, double ict);

    std::size_t edge_count() const { return src_.size(); }

    /// Consumes the collected edges and freezes the CSR arrays.
    SparseContactGraph build() &&;

   private:
    std::size_t n_;
    // One entry per *undirected* edge as added (i, j may be in any order).
    std::vector<NodeId> src_;
    std::vector<NodeId> dst_;
    std::vector<double> rate_;
  };

  /// An empty (edgeless) sparse graph over n nodes.
  explicit SparseContactGraph(std::size_t n);

  std::size_t node_count() const override { return n_; }
  /// Number of undirected edges with positive rate.
  std::size_t edge_count() const { return adj_id_.size() / 2; }
  std::size_t degree(NodeId i) const;

  /// O(log degree) binary search in i's row.
  double rate(NodeId i, NodeId j) const override;

  double rate_to_set(NodeId i,
                     std::span<const NodeId> targets) const override;
  double row_rate_sum(NodeId i) const override;
  double total_rate() const override;
  void append_neighbors(NodeId i, std::vector<NodeId>& out) const override;

  /// Row views: i's neighbors (ascending) and the parallel rates.
  std::span<const NodeId> neighbor_ids(NodeId i) const;
  std::span<const double> neighbor_rates(NodeId i) const;

  /// Bytes held by the CSR arrays (the bytes/node accounting the fig_scale
  /// bench records): row offsets + neighbor ids + rates, at capacity.
  std::size_t memory_bytes() const;

 private:
  friend class Builder;

  std::size_t n_ = 0;
  std::vector<std::uint64_t> row_start_;  // n + 1 offsets into adj arrays
  std::vector<NodeId> adj_id_;            // both directions, ascending per row
  std::vector<double> adj_rate_;
};

/// Exact sparse copy of a dense graph (every positive-rate pair).
SparseContactGraph sparse_from_dense(const ContactGraph& dense);

/// The Table II random graph in sparse form: draws the *identical*
/// uniform-ICT sequence as random_contact_graph (every pair, (i, j)
/// ascending), so at paper scale the sparse backend reproduces dense
/// experiments bit-for-bit. O(n²) — intended for equivalence testing and
/// paper-scale runs, not the scale regime.
SparseContactGraph sparse_random_contact_graph(std::size_t n, util::Rng& rng,
                                               double min_ict = 10.0,
                                               double max_ict = 360.0);

/// The scale-regime generator: each node proposes avg_degree/2 partners,
/// drawn inside its community block with probability `intra_fraction` and
/// uniformly otherwise; inter-community pairs get `slowdown`× longer ICTs
/// (the community_contact_graph structure, grown sparsely). O(n ·
/// avg_degree) time and memory — this is what opens n = 10⁵–10⁶.
/// Duplicate proposals collapse (first wins), so realized mean degree is
/// slightly below avg_degree.
SparseContactGraph sparse_community_contact_graph(
    std::size_t n, std::size_t avg_degree, std::size_t communities,
    util::Rng& rng, double min_ict = 10.0, double max_ict = 360.0,
    double slowdown = 10.0, double intra_fraction = 0.9);

}  // namespace odtn::graph
