#include "groups/group_directory.hpp"

#include <stdexcept>

namespace odtn::groups {

GroupDirectory::GroupDirectory(std::size_t n, std::size_t g, util::Rng* rng)
    : g_(g) {
  if (n == 0) throw std::invalid_argument("GroupDirectory: empty network");
  if (g == 0 || g > n) {
    throw std::invalid_argument("GroupDirectory: group size out of range");
  }
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  if (rng != nullptr) rng->shuffle(order);

  std::size_t group_count = (n + g - 1) / g;
  members_.resize(group_count);
  node_to_group_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    GroupId gid = static_cast<GroupId>(pos / g);
    members_[gid].push_back(order[pos]);
    node_to_group_[order[pos]] = gid;
  }
}

GroupId GroupDirectory::group_of(NodeId node) const {
  if (node >= node_to_group_.size()) {
    throw std::out_of_range("GroupDirectory::group_of");
  }
  return node_to_group_[node];
}

const std::vector<NodeId>& GroupDirectory::members(GroupId group) const {
  if (group >= members_.size()) {
    throw std::out_of_range("GroupDirectory::members");
  }
  return members_[group];
}

bool GroupDirectory::in_group(NodeId node, GroupId group) const {
  return group_of(node) == group;
}

std::vector<GroupId> GroupDirectory::select_relay_groups(
    NodeId src, NodeId dst, std::size_t k, util::Rng& rng) const {
  std::vector<GroupId> candidates;
  GroupId src_group = group_of(src);
  GroupId dst_group = group_of(dst);
  for (GroupId g = 0; g < members_.size(); ++g) {
    if (g != src_group && g != dst_group) candidates.push_back(g);
  }
  // With very few groups (e.g. g = n/2), endpoint exclusion may be
  // impossible; fall back to all groups, as ARDEN does in small networks.
  if (candidates.size() < k) {
    candidates.clear();
    for (GroupId g = 0; g < members_.size(); ++g) candidates.push_back(g);
  }
  if (candidates.size() < k) {
    throw std::invalid_argument(
        "select_relay_groups: fewer groups than requested relays");
  }
  auto idx = rng.sample_without_replacement(candidates.size(), k);
  std::vector<GroupId> out;
  out.reserve(k);
  for (auto i : idx) out.push_back(candidates[i]);
  return out;
}

}  // namespace odtn::groups
