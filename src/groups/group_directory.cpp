#include "groups/group_directory.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::groups {

GroupDirectory::GroupDirectory(std::size_t n, std::size_t g, util::Rng* rng)
    : n_(n), g_(g) {
  if (n == 0) throw std::invalid_argument("GroupDirectory: empty network");
  if (g == 0 || g > n) {
    throw std::invalid_argument("GroupDirectory: group size out of range");
  }
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  if (rng != nullptr) rng->shuffle(order);

  group_count_ = (n + g - 1) / g;
  members_.resize(group_count_);
  node_to_group_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    GroupId gid = static_cast<GroupId>(pos / g);
    members_[gid].push_back(order[pos]);
    node_to_group_[order[pos]] = gid;
  }
}

GroupDirectory::GroupDirectory(std::size_t n, std::size_t g,
                               const Sharded& opts)
    : n_(n), g_(g), seed_(opts.seed) {
  if (n == 0) throw std::invalid_argument("GroupDirectory: empty network");
  if (g == 0 || g > n) {
    throw std::invalid_argument("GroupDirectory: group size out of range");
  }
  if (opts.shards == 0 || opts.shards > n) {
    throw std::invalid_argument("GroupDirectory: shard count out of range");
  }
  shard_count_ = opts.shards;
  shard_size_ = (n + shard_count_ - 1) / shard_count_;
  if (shard_size_ < g) {
    throw std::invalid_argument(
        "GroupDirectory: shards smaller than the group size");
  }
  // ceil(n / shard_size) shards actually hold nodes; trailing shards of an
  // oversized request would be empty, which the bound above prevents for
  // all but exact-division edge cases — recompute to the occupied count.
  shard_count_ = (n + shard_size_ - 1) / shard_size_;
  groups_per_full_shard_ = (shard_size_ + g - 1) / g;
  const std::size_t last_size = n - (shard_count_ - 1) * shard_size_;
  group_count_ = (shard_count_ - 1) * groups_per_full_shard_ +
                 (last_size + g - 1) / g;
  shards_.resize(shard_count_);
}

const GroupDirectory::Shard& GroupDirectory::shard(std::size_t s) const {
  std::unique_ptr<Shard>& slot = shards_[s];
  if (!slot) {
    const std::size_t begin = s * shard_size_;
    const std::size_t size = std::min(shard_size_, n_ - begin);
    std::vector<NodeId> order(size);
    for (NodeId i = 0; i < size; ++i) order[i] = static_cast<NodeId>(i);
    util::Rng rng(util::derive_seed(seed_, s));
    rng.shuffle(order);

    auto sh = std::make_unique<Shard>();
    const GroupId base = static_cast<GroupId>(s * groups_per_full_shard_);
    sh->group_of.resize(size);
    sh->members.resize((size + g_ - 1) / g_);
    for (std::size_t pos = 0; pos < size; ++pos) {
      const GroupId gid = base + static_cast<GroupId>(pos / g_);
      sh->group_of[order[pos]] = gid;
      sh->members[pos / g_].push_back(static_cast<NodeId>(begin + order[pos]));
    }
    slot = std::move(sh);
  }
  return *slot;
}

GroupId GroupDirectory::group_of(NodeId node) const {
  if (node >= n_) {
    throw std::out_of_range("GroupDirectory::group_of");
  }
  if (!is_sharded()) return node_to_group_[node];
  const std::size_t s = node / shard_size_;
  return shard(s).group_of[node - s * shard_size_];
}

const std::vector<NodeId>& GroupDirectory::members(GroupId group) const {
  if (group >= group_count_) {
    throw std::out_of_range("GroupDirectory::members");
  }
  if (!is_sharded()) return members_[group];
  const std::size_t s = group / groups_per_full_shard_;
  return shard(s).members[group - s * groups_per_full_shard_];
}

bool GroupDirectory::in_group(NodeId node, GroupId group) const {
  return group_of(node) == group;
}

std::vector<GroupId> GroupDirectory::select_relay_groups(
    NodeId src, NodeId dst, std::size_t k, util::Rng& rng) const {
  const GroupId src_group = group_of(src);
  const GroupId dst_group = group_of(dst);

  if (is_sharded()) {
    // Rejection sampling over the dense group-id space: never enumerates
    // the (possibly huge) group list. k distinct ids, excluding the
    // endpoint groups when enough groups exist (the same fallback rule as
    // the explicit mode below).
    const std::size_t excluded = src_group == dst_group ? 1 : 2;
    const bool exclude_endpoints = group_count_ - excluded >= k;
    if (!exclude_endpoints && group_count_ < k) {
      throw std::invalid_argument(
          "select_relay_groups: fewer groups than requested relays");
    }
    std::vector<GroupId> out;
    out.reserve(k);
    while (out.size() < k) {
      const GroupId gid = static_cast<GroupId>(rng.below(group_count_));
      if (exclude_endpoints && (gid == src_group || gid == dst_group)) {
        continue;
      }
      if (std::find(out.begin(), out.end(), gid) != out.end()) continue;
      out.push_back(gid);
    }
    return out;
  }

  std::vector<GroupId> candidates;
  for (GroupId g = 0; g < members_.size(); ++g) {
    if (g != src_group && g != dst_group) candidates.push_back(g);
  }
  // With very few groups (e.g. g = n/2), endpoint exclusion may be
  // impossible; fall back to all groups, as ARDEN does in small networks.
  if (candidates.size() < k) {
    candidates.clear();
    for (GroupId g = 0; g < members_.size(); ++g) candidates.push_back(g);
  }
  if (candidates.size() < k) {
    throw std::invalid_argument(
        "select_relay_groups: fewer groups than requested relays");
  }
  auto idx = rng.sample_without_replacement(candidates.size(), k);
  std::vector<GroupId> out;
  out.reserve(k);
  for (auto i : idx) out.push_back(candidates[i]);
  return out;
}

}  // namespace odtn::groups
