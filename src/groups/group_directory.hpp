// Onion-group membership (Sec. II-B / III-A of the paper).
//
// The n nodes of the network are partitioned into ceil(n/g) groups of size
// g (the last group may be smaller when g does not divide n — the paper's
// analysis ignores this, the simulator does not). Any node in a group can
// peel the onion layer encrypted to that group.
#pragma once

#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::groups {

class GroupDirectory {
 public:
  /// Partitions nodes 0..n-1 into groups of size g. If `rng` is non-null the
  /// assignment is a random permutation (as in the paper's simulations);
  /// otherwise nodes are assigned in id order (deterministic, for tests).
  GroupDirectory(std::size_t n, std::size_t g, util::Rng* rng = nullptr);

  std::size_t node_count() const { return node_to_group_.size(); }
  std::size_t group_count() const { return members_.size(); }
  /// Nominal group size g (the last group may have fewer members).
  std::size_t nominal_group_size() const { return g_; }

  GroupId group_of(NodeId node) const;
  const std::vector<NodeId>& members(GroupId group) const;
  bool in_group(NodeId node, GroupId group) const;

  /// Selects the K relay groups R_1..R_K for a message (Algorithms 1-2,
  /// line 2): a uniform random choice of K distinct groups, excluding the
  /// groups of the source and destination when enough groups exist (a relay
  /// group containing an endpoint would weaken its anonymity).
  /// Throws if fewer than K candidate groups are available.
  std::vector<GroupId> select_relay_groups(NodeId src, NodeId dst,
                                           std::size_t k,
                                           util::Rng& rng) const;

 private:
  std::size_t g_;
  std::vector<GroupId> node_to_group_;
  std::vector<std::vector<NodeId>> members_;
};

}  // namespace odtn::groups
