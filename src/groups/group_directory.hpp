// Onion-group membership (Sec. II-B / III-A of the paper).
//
// The n nodes of the network are partitioned into ceil(n/g) groups of size
// g (the last group may be smaller when g does not divide n — the paper's
// analysis ignores this, the simulator does not). Any node in a group can
// peel the onion layer encrypted to that group.
//
// Two assignment modes:
//
//  * Explicit (the historical mode): one global random permutation,
//    materialized up front. O(n) per directory — fine at paper scale, and
//    byte-identical to every recorded baseline.
//  * Sharded (the scale mode): nodes are split into contiguous shards and
//    each shard is permuted independently, lazily, from a per-shard seed.
//    A run that touches src, dst and K relay groups materializes at most
//    K + 2 shards, so directory work is O((K + 2) * shard_size) instead of
//    O(n) — the piece that lets group/copy-holder selection avoid ever
//    enumerating a million nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::groups {

class GroupDirectory {
 public:
  /// Explicit mode: partitions nodes 0..n-1 into groups of size g. If `rng`
  /// is non-null the assignment is a random permutation (as in the paper's
  /// simulations); otherwise nodes are assigned in id order (deterministic,
  /// for tests).
  GroupDirectory(std::size_t n, std::size_t g, util::Rng* rng = nullptr);

  /// Sharded-mode options: `shards` contiguous node blocks, each shuffled
  /// lazily with util::derive_seed(seed, shard_index).
  struct Sharded {
    std::size_t shards;
    std::uint64_t seed;
  };

  /// Sharded mode. Group ids are still global and dense: every full shard
  /// contributes ceil(shard_size/g) groups. Each shard's last group may be
  /// smaller than g (the explicit mode only has one such tail group).
  GroupDirectory(std::size_t n, std::size_t g, const Sharded& opts);

  std::size_t node_count() const { return n_; }
  std::size_t group_count() const { return group_count_; }
  /// Nominal group size g (tail groups may have fewer members).
  std::size_t nominal_group_size() const { return g_; }
  bool is_sharded() const { return shard_size_ != 0; }

  GroupId group_of(NodeId node) const;
  const std::vector<NodeId>& members(GroupId group) const;
  bool in_group(NodeId node, GroupId group) const;

  /// Selects the K relay groups R_1..R_K for a message (Algorithms 1-2,
  /// line 2): a uniform random choice of K distinct groups, excluding the
  /// groups of the source and destination when enough groups exist (a relay
  /// group containing an endpoint would weaken its anonymity).
  /// Throws if fewer than K candidate groups are available. Sharded
  /// directories sample by rejection instead of enumerating all groups.
  std::vector<GroupId> select_relay_groups(NodeId src, NodeId dst,
                                           std::size_t k,
                                           util::Rng& rng) const;

 private:
  struct Shard {
    // Local node offset -> global group id.
    std::vector<GroupId> group_of;
    // Per local group: global member node ids.
    std::vector<std::vector<NodeId>> members;
  };
  const Shard& shard(std::size_t s) const;

  std::size_t n_ = 0;
  std::size_t g_ = 0;
  std::size_t group_count_ = 0;

  // Explicit mode.
  std::vector<GroupId> node_to_group_;
  std::vector<std::vector<NodeId>> members_;

  // Sharded mode (shard_size_ == 0 means explicit). The shard cache is
  // materialized on demand; entries are heap-allocated and never replaced,
  // so member references stay stable. Not thread-safe: each simulation run
  // owns its directory.
  std::size_t shard_size_ = 0;
  std::size_t shard_count_ = 0;
  std::size_t groups_per_full_shard_ = 0;
  std::uint64_t seed_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace odtn::groups
