#include "groups/key_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace odtn::groups {

namespace {

util::Bytes derive(const util::Bytes& master, const std::string& label,
                   std::uint64_t index) {
  util::Bytes info = util::to_bytes(label);
  util::put_u64le(info, index);
  return crypto::hkdf(master, /*salt=*/{}, info, 32);
}

}  // namespace

KeyManager::KeyManager(const GroupDirectory& directory, std::uint64_t seed)
    : node_count_(directory.node_count()),
      group_count_(directory.group_count()) {
  util::put_u64le(master_, seed);
  util::append(master_, util::to_bytes("odtn-key-manager-v1"));
}

const util::Bytes& KeyManager::group_key(GroupId group) const {
  if (group >= group_count_) {
    throw std::out_of_range("KeyManager::group_key");
  }
  auto it = group_keys_.find(group);
  if (it == group_keys_.end()) {
    it = group_keys_.emplace(group, derive(master_, "group-key", group)).first;
  }
  return it->second;
}

const crypto::KeyPair& KeyManager::node_identity(NodeId node) const {
  if (node >= node_count_) {
    throw std::out_of_range("KeyManager::node_identity");
  }
  auto it = identities_.find(node);
  if (it == identities_.end()) {
    crypto::KeyPair kp;
    kp.private_key = derive(master_, "identity-key", node);
    kp.public_key = crypto::x25519_base(kp.private_key);
    it = identities_.emplace(node, std::move(kp)).first;
  }
  return it->second;
}

const util::Bytes& KeyManager::inbox_key(NodeId node) const {
  if (node >= node_count_) {
    throw std::out_of_range("KeyManager::inbox_key");
  }
  auto it = inbox_keys_.find(node);
  if (it == inbox_keys_.end()) {
    it = inbox_keys_.emplace(node, derive(master_, "inbox-key", node)).first;
  }
  return it->second;
}

const util::Bytes& KeyManager::session_key(NodeId a, NodeId b) const {
  if (a == b) throw std::invalid_argument("session_key: a == b");
  if (a >= node_count_ || b >= node_count_) {
    throw std::out_of_range("KeyManager::session_key");
  }
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  std::uint64_t cache_key = (std::uint64_t{lo} << 32) | hi;
  auto it = session_cache_.find(cache_key);
  if (it != session_cache_.end()) return it->second;

  util::Bytes shared = crypto::shared_secret(node_identity(lo).private_key,
                                             node_identity(hi).public_key);
  util::Bytes info = util::to_bytes("odtn-session");
  util::put_u32le(info, lo);
  util::put_u32le(info, hi);
  util::Bytes key = crypto::hkdf(shared, /*salt=*/{}, info, 32);
  auto [pos, inserted] = session_cache_.emplace(cache_key, std::move(key));
  (void)inserted;
  return pos->second;
}

}  // namespace odtn::groups
