#include "groups/key_manager.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace odtn::groups {

namespace {

util::Bytes derive(const util::Bytes& master, const std::string& label,
                   std::uint64_t index) {
  util::Bytes info = util::to_bytes(label);
  util::put_u64le(info, index);
  return crypto::hkdf(master, /*salt=*/{}, info, 32);
}

}  // namespace

KeyManager::KeyManager(const GroupDirectory& directory, std::uint64_t seed) {
  util::Bytes master;
  util::put_u64le(master, seed);
  util::append(master, util::to_bytes("odtn-key-manager-v1"));

  group_keys_.reserve(directory.group_count());
  for (GroupId g = 0; g < directory.group_count(); ++g) {
    group_keys_.push_back(derive(master, "group-key", g));
  }

  identity_master_ = master;
  identities_.resize(directory.node_count());
  inbox_keys_.reserve(directory.node_count());
  for (NodeId v = 0; v < directory.node_count(); ++v) {
    inbox_keys_.push_back(derive(master, "inbox-key", v));
  }
}

const util::Bytes& KeyManager::group_key(GroupId group) const {
  if (group >= group_keys_.size()) {
    throw std::out_of_range("KeyManager::group_key");
  }
  return group_keys_[group];
}

const crypto::KeyPair& KeyManager::node_identity(NodeId node) const {
  if (node >= identities_.size()) {
    throw std::out_of_range("KeyManager::node_identity");
  }
  if (!identities_[node].has_value()) {
    crypto::KeyPair kp;
    kp.private_key = derive(identity_master_, "identity-key", node);
    kp.public_key = crypto::x25519_base(kp.private_key);
    identities_[node] = std::move(kp);
  }
  return *identities_[node];
}

const util::Bytes& KeyManager::inbox_key(NodeId node) const {
  if (node >= inbox_keys_.size()) {
    throw std::out_of_range("KeyManager::inbox_key");
  }
  return inbox_keys_[node];
}

const util::Bytes& KeyManager::session_key(NodeId a, NodeId b) const {
  if (a == b) throw std::invalid_argument("session_key: a == b");
  if (a >= identities_.size() || b >= identities_.size()) {
    throw std::out_of_range("KeyManager::session_key");
  }
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  std::uint64_t cache_key = (std::uint64_t{lo} << 32) | hi;
  auto it = session_cache_.find(cache_key);
  if (it != session_cache_.end()) return it->second;

  util::Bytes shared = crypto::shared_secret(node_identity(lo).private_key,
                                             node_identity(hi).public_key);
  util::Bytes info = util::to_bytes("odtn-session");
  util::put_u32le(info, lo);
  util::put_u32le(info, hi);
  util::Bytes key = crypto::hkdf(shared, /*salt=*/{}, info, 32);
  auto [pos, inserted] = session_cache_.emplace(cache_key, std::move(key));
  (void)inserted;
  return pos->second;
}

}  // namespace odtn::groups
