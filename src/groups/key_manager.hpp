// Key material for onion-group routing.
//
// The paper delegates key setup to ARDEN (attribute-based encryption); the
// analysis only requires that (a) every member of group R_k can peel layer
// k and (b) two meeting nodes can establish a secure link. We realize (a)
// with HKDF-derived per-group symmetric keys and (b) with per-node X25519
// identities + ECDH (see DESIGN.md for why this substitution is faithful).
//
// All key material is derived lazily and memoized: each key is a pure
// function derive(master, label, index) of its index, so on-demand
// derivation yields byte-identical keys while a run only ever pays for the
// handful of groups/nodes a message actually touches — constructing a
// KeyManager is O(1) even over a million-node directory.
#pragma once

#include <unordered_map>
#include <vector>

#include "crypto/x25519.hpp"
#include "groups/group_directory.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace odtn::groups {

class KeyManager {
 public:
  /// Binds the key space to `directory`'s sizes; keys derive from a master
  /// seed (deterministic per experiment) on first use.
  KeyManager(const GroupDirectory& directory, std::uint64_t seed);

  /// Symmetric key shared by all members of `group` (32 bytes).
  const util::Bytes& group_key(GroupId group) const;

  /// X25519 identity of `node`.
  const crypto::KeyPair& node_identity(NodeId node) const;

  /// Symmetric key a sender uses for the innermost onion layer addressed to
  /// `node` (32 bytes). Models the end-to-end key the source shares with
  /// the destination (the paper assumes end-to-end encryption exists).
  const util::Bytes& inbox_key(NodeId node) const;

  /// ECDH + HKDF session key for the "secure link" two meeting nodes
  /// establish (Algorithms 1-2, line "establish a secure link"). Symmetric
  /// in (a, b); memoized because the ladder is the costly operation.
  const util::Bytes& session_key(NodeId a, NodeId b) const;

  std::size_t node_count() const { return node_count_; }
  std::size_t group_count() const { return group_count_; }

 private:
  std::size_t node_count_ = 0;
  std::size_t group_count_ = 0;
  util::Bytes master_;
  // Lazy caches. unordered_map references stay valid across inserts, so
  // returned key references are stable. Not thread-safe: each simulation
  // run owns its KeyManager.
  mutable std::unordered_map<GroupId, util::Bytes> group_keys_;
  mutable std::unordered_map<NodeId, crypto::KeyPair> identities_;
  mutable std::unordered_map<NodeId, util::Bytes> inbox_keys_;
  mutable std::unordered_map<std::uint64_t, util::Bytes> session_cache_;
};

}  // namespace odtn::groups
