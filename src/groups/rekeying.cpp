#include "groups/rekeying.hpp"

#include <limits>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace odtn::groups {

namespace {

util::Bytes ratchet_once(const util::Bytes& key) {
  return crypto::hkdf(key, /*salt=*/{}, util::to_bytes("odtn-ratchet"), 32);
}

}  // namespace

GroupKeySchedule::GroupKeySchedule(const GroupDirectory& directory,
                                   std::uint64_t seed) {
  util::Bytes master;
  util::put_u64le(master, seed);
  util::append(master, util::to_bytes("odtn-rekeying-v1"));
  chains_.resize(directory.group_count());
  for (GroupId g = 0; g < directory.group_count(); ++g) {
    util::Bytes info = util::to_bytes("epoch0-group");
    util::put_u32le(info, g);
    chains_[g].base_key = crypto::hkdf(master, {}, info, 32);
    chains_[g].cached_epoch = 0;
    chains_[g].cached_key = chains_[g].base_key;
  }
}

const util::Bytes& GroupKeySchedule::key_at(GroupId group, Epoch epoch) const {
  if (group >= chains_.size()) {
    throw std::out_of_range("GroupKeySchedule::key_at");
  }
  const Chain& c = chains_[group];
  if (epoch < c.base_epoch) {
    throw std::invalid_argument(
        "key_at: epoch precedes the group's last heal (forward security)");
  }
  if (epoch < c.cached_epoch) {
    // Recompute from the base (one-way chain cannot go backwards).
    c.cached_epoch = c.base_epoch;
    c.cached_key = c.base_key;
  }
  while (c.cached_epoch < epoch) {
    c.cached_key = ratchet_once(c.cached_key);
    ++c.cached_epoch;
  }
  return c.cached_key;
}

void GroupKeySchedule::heal(GroupId group, Epoch heal_epoch,
                            const util::Bytes& fresh_entropy) {
  if (group >= chains_.size()) {
    throw std::out_of_range("GroupKeySchedule::heal");
  }
  Chain& c = chains_[group];
  if (heal_epoch <= c.base_epoch) {
    throw std::invalid_argument("heal: epoch must move forward");
  }
  if (fresh_entropy.empty()) {
    throw std::invalid_argument("heal: fresh entropy required");
  }
  util::Bytes ikm = c.base_key;  // bind to the chain's identity
  util::append(ikm, fresh_entropy);
  util::Bytes info = util::to_bytes("odtn-heal");
  util::put_u32le(info, group);
  util::put_u32le(info, heal_epoch);
  c.base_key = crypto::hkdf(ikm, {}, info, 32);
  c.base_epoch = heal_epoch;
  c.cached_epoch = heal_epoch;
  c.cached_key = c.base_key;
}

Epoch GroupKeySchedule::last_heal(GroupId group) const {
  if (group >= chains_.size()) {
    throw std::out_of_range("GroupKeySchedule::last_heal");
  }
  return chains_[group].base_epoch;
}

std::pair<Epoch, Epoch> GroupKeySchedule::exposure_window(
    Epoch captured_epoch, Epoch heal_epoch) {
  constexpr Epoch kMax = std::numeric_limits<Epoch>::max();
  if (heal_epoch == 0 || heal_epoch <= captured_epoch) {
    return {captured_epoch, kMax};  // never healed after capture: open-ended
  }
  return {captured_epoch, heal_epoch - 1};
}

}  // namespace odtn::groups
