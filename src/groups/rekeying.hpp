// Epoch-based group re-keying with forward security.
//
// The paper's adversary keeps everything it ever learned: once a node is
// compromised, its group's layer is peelable forever. Real deployments
// rotate group keys (the paper cites secure key-update schemes [14] as the
// substrate). This module provides a hash-ratchet schedule:
//
//   key(group, e+1) = HKDF(key(group, e), "odtn-ratchet")
//
// One-wayness of the ratchet gives *forward* security: a key captured at
// epoch e derives all keys at epochs >= e but none before — so layers of
// onions sent in past epochs stay sealed. Recovery from compromise
// ("healing") re-seeds a group's chain with fresh entropy, cutting the
// adversary off from future epochs too.
//
// bench-free module; its security properties are asserted by tests and the
// exposure-window analysis below.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "groups/group_directory.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace odtn::groups {

using Epoch = std::uint32_t;

class GroupKeySchedule {
 public:
  /// Derives each group's epoch-0 key from `seed`.
  GroupKeySchedule(const GroupDirectory& directory, std::uint64_t seed);

  std::size_t group_count() const { return chains_.size(); }

  /// Key of `group` at `epoch` (32 bytes). Epochs are absolute; the
  /// schedule caches the latest computed link of each chain, so asking for
  /// increasing epochs is O(delta). Asking for an epoch before the group's
  /// last heal throws std::invalid_argument (those keys are deliberately
  /// irrecoverable from current state).
  const util::Bytes& key_at(GroupId group, Epoch epoch) const;

  /// Re-seeds `group`'s chain with fresh entropy effective at
  /// `heal_epoch`: keys from that epoch on are unrelated to every earlier
  /// key. Heals must move forward in time.
  void heal(GroupId group, Epoch heal_epoch, const util::Bytes& fresh_entropy);

  /// Epoch of the group's most recent heal (0 if never healed).
  Epoch last_heal(GroupId group) const;

  /// Adversary exposure window: given a key captured at `captured_epoch`,
  /// the inclusive range of epochs the adversary can decrypt, assuming the
  /// group heals at `heal_epoch` (or never, if heal_epoch == 0 and the
  /// group was never healed after capture). Returns {captured, heal-1}
  /// clamped appropriately; an unhealed group yields an open range encoded
  /// as {captured, max}.
  static std::pair<Epoch, Epoch> exposure_window(Epoch captured_epoch,
                                                 Epoch heal_epoch);

 private:
  struct Chain {
    Epoch base_epoch = 0;      // epoch of `base_key` (last heal or 0)
    util::Bytes base_key;      // key at base_epoch
    // Cache: latest derived (epoch, key) to keep forward queries O(delta).
    mutable Epoch cached_epoch = 0;
    mutable util::Bytes cached_key;
  };

  std::vector<Chain> chains_;
};

}  // namespace odtn::groups
