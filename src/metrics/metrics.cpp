#include "metrics/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace odtn::metrics {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
    case Kind::kTimer:
      return "timer";
  }
  return "unknown";
}

namespace {

// frexp exponents of finite doubles lie in [-1073, 1024] (subnormals
// included); the bias keeps every index positive, with index 0 reserved
// for the zero/negative point bucket.
constexpr int kExpBias = 1100;
constexpr int kMaxIndex =
    1 + (1024 + kExpBias) * Histogram::kSubBuckets + Histogram::kSubBuckets - 1;

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN
  if (std::isinf(v)) return kMaxIndex;
  int exp;
  double frac = std::frexp(v, &exp);  // frac in [0.5, 1)
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (exp + kExpBias) * kSubBuckets + sub;
}

void Histogram::bucket_bounds(int index, double* lo, double* hi) {
  if (index <= 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  int i = index - 1;
  int exp = i / kSubBuckets - kExpBias;
  int sub = i % kSubBuckets;
  double step = 0.5 / kSubBuckets;
  *lo = std::ldexp(0.5 + sub * step, exp);
  *hi = std::ldexp(0.5 + (sub + 1) * step, exp);
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++counts_[bucket_index(v)];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the q-quantile sample, 1-based.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (const auto& [index, n] : counts_) {
    cumulative += n;
    if (cumulative >= rank) {
      if (index == 0) return 0.0;
      double lo, hi;
      bucket_bounds(index, &lo, &hi);
      // Bucket midpoint, clamped by the exact extremes.
      double mid = 0.5 * (lo + hi);
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max();  // unreachable: counts_ sums to count_
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [index, n] : other.counts_) counts_[index] += n;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (const auto& [index, n] : counts_) {
    Bucket b;
    bucket_bounds(index, &b.lo, &b.hi);
    b.count = n;
    out.push_back(b);
  }
  return out;
}

Registry::Metric& Registry::resolve(const std::string& name, Kind kind,
                                    Stability stability) {
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.stability = stability;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metrics: '" + name + "' registered as " +
                           kind_name(it->second.kind) + ", requested as " +
                           kind_name(kind));
  }
  return it->second;
}

CounterHandle Registry::counter(const std::string& name, Stability stability) {
  return CounterHandle(&resolve(name, Kind::kCounter, stability).counter);
}

GaugeHandle Registry::gauge(const std::string& name, Stability stability) {
  Metric& m = resolve(name, Kind::kGauge, stability);
  return GaugeHandle(&m.gauge, &m.gauge_set);
}

HistogramHandle Registry::histogram(const std::string& name,
                                    Stability stability) {
  return HistogramHandle(&resolve(name, Kind::kHistogram, stability).hist);
}

HistogramHandle Registry::timer(const std::string& name) {
  return HistogramHandle(&resolve(name, Kind::kTimer, Stability::kWall).hist);
}

void Registry::restore(const std::string& name, const Metric& metric) {
  resolve(name, metric.kind, metric.stability) = metric;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    Metric& ours = resolve(name, theirs.kind, theirs.stability);
    ours.counter += theirs.counter;
    if (theirs.gauge_set) {
      ours.gauge = theirs.gauge;
      ours.gauge_set = true;
    }
    ours.hist.merge(theirs.hist);
  }
}

}  // namespace odtn::metrics
