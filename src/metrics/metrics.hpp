// odtn::metrics — deterministic observability for the simulator stack.
//
// A Registry is a named collection of counters, gauges, and log-bucketed
// histograms. It is built for the sharded experiment engine: each worker
// (or each run) writes into its own Registry with no synchronization, and
// shards are folded in run order with Registry::merge — exactly the
// RunningStats pattern — so every exported metric is bit-identical at any
// thread count.
//
// Two classes of metric are distinguished:
//   * stable  — derived purely from simulated state (event counts, virtual
//     delays). These survive the ordered fold unchanged and are what
//     MetricsWriter exports by default.
//   * wall    — wall-clock or scheduling dependent (ScopedTimer phases,
//     thread-pool queue depth / task latency). Kept in the same Registry
//     for profiling but excluded from deterministic export unless asked.
//
// Instrumentation sites hold *handles*, not names: a handle is resolved
// once (one map lookup) and is a single pointer afterwards, so the hot
// path pays one predictable branch plus an add. A null Registry* yields
// inert handles, and defining ODTN_METRICS_DISABLED (cmake
// -DODTN_METRICS=OFF) compiles every handle operation away entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace odtn::metrics {

enum class Kind { kCounter, kGauge, kHistogram, kTimer };

/// Returns "counter", "gauge", "histogram", or "timer".
const char* kind_name(Kind kind);

/// Log-bucketed histogram with quantile queries.
///
/// Positive values land in one of kSubBuckets linearly spaced sub-buckets
/// per power of two (relative bucket width at most 1/kSubBuckets / 0.5 =
/// 12.5%, so bucket-midpoint quantiles are accurate to ~±6% relative);
/// zero and negative values share a point bucket at 0. Buckets are stored sparsely, keyed by index, so an empty
/// histogram is two words and merging is count addition — deterministic
/// under the engine's ordered fold.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty

  /// Empirical quantile (0 <= q <= 1) from bucket midpoints; exact min/max
  /// are returned at q = 0 / q = 1. 0 when empty.
  double quantile(double q) const;

  /// Adds another histogram's buckets and moments.
  void merge(const Histogram& other);

  struct Bucket {
    double lo;  // inclusive
    double hi;  // exclusive (lo == hi == 0 for the zero/negative bucket)
    std::uint64_t count;
  };
  /// Non-empty buckets in increasing value order.
  std::vector<Bucket> buckets() const;

  /// Bucket index a value maps to (exposed for the accuracy tests).
  static int bucket_index(double v);
  /// [lo, hi) bounds of a bucket index.
  static void bucket_bounds(int index, double* lo, double* hi);

  /// Raw sparse (bucket index → count) map — the checkpoint serialization
  /// surface. Unlike buckets(), index keys round-trip exactly.
  const std::map<int, std::uint64_t>& raw_buckets() const { return counts_; }
  /// Rebuilds a histogram from checkpointed state (exact inverse of
  /// reading count()/sum()/min()/max()/raw_buckets()).
  static Histogram from_state(std::uint64_t count, double sum, double min,
                              double max,
                              std::map<int, std::uint64_t> buckets) {
    Histogram h;
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
    h.counts_ = std::move(buckets);
    return h;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<int, std::uint64_t> counts_;
};

class Registry;

// ---------------------------------------------------------------------------
// Handles: the things instrumentation sites actually touch.

class CounterHandle {
 public:
  CounterHandle() = default;

  void inc(std::uint64_t delta = 1) {
#ifndef ODTN_METRICS_DISABLED
    if (value_ != nullptr) *value_ += delta;
#else
    (void)delta;
#endif
  }

 private:
  friend class Registry;
  explicit CounterHandle(std::uint64_t* value) : value_(value) {}
  std::uint64_t* value_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;

  void set(double v) {
#ifndef ODTN_METRICS_DISABLED
    if (value_ != nullptr) {
      *value_ = v;
      *set_ = true;
    }
#else
    (void)v;
#endif
  }

  /// Raises the gauge to v if v is larger (or the gauge is unset) —
  /// high-water marks like peak queue depth.
  void set_max(double v) {
#ifndef ODTN_METRICS_DISABLED
    if (value_ != nullptr && (!*set_ || v > *value_)) {
      *value_ = v;
      *set_ = true;
    }
#else
    (void)v;
#endif
  }

 private:
  friend class Registry;
  GaugeHandle(double* value, bool* set) : value_(value), set_(set) {}
  double* value_ = nullptr;
  bool* set_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;

  void observe(double v) {
#ifndef ODTN_METRICS_DISABLED
    if (hist_ != nullptr) hist_->observe(v);
#else
    (void)v;
#endif
  }

  bool active() const {
#ifndef ODTN_METRICS_DISABLED
    return hist_ != nullptr;
#else
    return false;
#endif
  }

 private:
  friend class Registry;
  explicit HistogramHandle(Histogram* hist) : hist_(hist) {}
  Histogram* hist_ = nullptr;
};

/// RAII wall-clock timer: records elapsed seconds into a timer-kind
/// histogram at scope exit. Inert (no clock calls at all) when the handle
/// is inactive.
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramHandle timer) : timer_(timer) {
    // odtn-lint: allow(banned-api) — kWall timer site: ScopedTimer only ever
    // feeds Stability::kWall histograms, excluded from deterministic export.
    if (timer_.active()) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_.active()) {
      // odtn-lint: allow(banned-api) — kWall timer site (same stopwatch).
      const auto t1 = std::chrono::steady_clock::now();
      timer_.observe(std::chrono::duration<double>(t1 - start_).count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HistogramHandle timer_;
  // odtn-lint: allow(banned-api) — kWall timer state for the stopwatch above.
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Registry.

/// Whether a metric survives the deterministic fold (see file comment).
enum class Stability { kStable, kWall };

class Registry {
 public:
  /// Resolves a metric handle, creating the metric on first use. A name
  /// resolves to exactly one kind for the Registry's lifetime; re-resolving
  /// under a different kind throws std::logic_error.
  CounterHandle counter(const std::string& name,
                        Stability stability = Stability::kStable);
  GaugeHandle gauge(const std::string& name,
                    Stability stability = Stability::kStable);
  HistogramHandle histogram(const std::string& name,
                            Stability stability = Stability::kStable);
  /// Timers are histograms of wall-clock seconds; always Stability::kWall.
  HistogramHandle timer(const std::string& name);

  /// Folds another registry in: counters add, gauges take the other's value
  /// when it was set (so a run-ordered fold keeps the *last* run's value),
  /// histograms merge. Kind conflicts throw std::logic_error.
  void merge(const Registry& other);

  bool empty() const { return metrics_.empty(); }
  std::size_t size() const { return metrics_.size(); }

  // Export surface (MetricsWriter and the tests read through this).
  struct Metric {
    Kind kind = Kind::kCounter;
    Stability stability = Stability::kStable;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    bool gauge_set = false;
    Histogram hist;
  };
  /// Metrics in name order (std::map), which fixes the export byte order.
  const std::map<std::string, Metric>& entries() const { return metrics_; }

  /// Installs a metric with an exact value (checkpoint restore). Re-raises
  /// the usual kind-conflict std::logic_error if `name` already resolved to
  /// a different kind.
  void restore(const std::string& name, const Metric& metric);

 private:
  Metric& resolve(const std::string& name, Kind kind, Stability stability);

  std::map<std::string, Metric> metrics_;
};

// ---------------------------------------------------------------------------
// Null-safe resolution: instrumented layers take a `Registry*` that is
// nullptr when observability is off, and resolve handles through these.
// The name is a C string so the off path never constructs (or worse,
// heap-allocates) a std::string — the conversion happens only behind the
// non-null branch.

inline CounterHandle counter(Registry* reg, const char* name,
                             Stability stability = Stability::kStable) {
  return reg != nullptr ? reg->counter(name, stability) : CounterHandle{};
}

inline GaugeHandle gauge(Registry* reg, const char* name,
                         Stability stability = Stability::kStable) {
  return reg != nullptr ? reg->gauge(name, stability) : GaugeHandle{};
}

inline HistogramHandle histogram(Registry* reg, const char* name,
                                 Stability stability = Stability::kStable) {
  return reg != nullptr ? reg->histogram(name, stability) : HistogramHandle{};
}

inline HistogramHandle timer(Registry* reg, const char* name) {
  return reg != nullptr ? reg->timer(name) : HistogramHandle{};
}

}  // namespace odtn::metrics
