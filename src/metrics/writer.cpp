#include "metrics/writer.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace odtn::metrics {

namespace {

constexpr const char* kSchema = "odtn.metrics.v1";

bool skip(const Registry::Metric& m, const WriteOptions& options) {
  return m.stability == Stability::kWall && !options.include_wall;
}

void quantile_triple(const Histogram& h, double* p50, double* p90,
                     double* p99) {
  *p50 = h.quantile(0.50);
  *p90 = h.quantile(0.90);
  *p99 = h.quantile(0.99);
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void write_jsonl(std::ostream& os, const Registry& reg,
                 const WriteOptions& options) {
  for (const auto& [name, m] : reg.entries()) {
    if (skip(m, options)) continue;
    os << "{\"schema\":\"" << kSchema << "\",\"name\":\"" << name
       << "\",\"kind\":\"" << kind_name(m.kind) << "\"";
    switch (m.kind) {
      case Kind::kCounter:
        os << ",\"value\":" << m.counter;
        break;
      case Kind::kGauge:
        os << ",\"value\":" << format_double(m.gauge_set ? m.gauge : 0.0);
        break;
      case Kind::kHistogram:
      case Kind::kTimer: {
        double p50, p90, p99;
        quantile_triple(m.hist, &p50, &p90, &p99);
        os << ",\"count\":" << m.hist.count()
           << ",\"sum\":" << format_double(m.hist.sum())
           << ",\"mean\":" << format_double(m.hist.mean())
           << ",\"min\":" << format_double(m.hist.min())
           << ",\"max\":" << format_double(m.hist.max())
           << ",\"p50\":" << format_double(p50)
           << ",\"p90\":" << format_double(p90)
           << ",\"p99\":" << format_double(p99) << ",\"buckets\":[";
        bool first = true;
        for (const auto& b : m.hist.buckets()) {
          if (!first) os << ",";
          first = false;
          os << "[" << format_double(b.lo) << "," << format_double(b.hi)
             << "," << b.count << "]";
        }
        os << "]";
        break;
      }
    }
    os << "}\n";
  }
}

void write_csv(std::ostream& os, const Registry& reg,
               const WriteOptions& options) {
  os << "name,kind,value,count,sum,mean,min,max,p50,p90,p99\n";
  for (const auto& [name, m] : reg.entries()) {
    if (skip(m, options)) continue;
    os << name << "," << kind_name(m.kind) << ",";
    switch (m.kind) {
      case Kind::kCounter:
        os << m.counter << ",,,,,,,,";
        break;
      case Kind::kGauge:
        os << format_double(m.gauge_set ? m.gauge : 0.0) << ",,,,,,,,";
        break;
      case Kind::kHistogram:
      case Kind::kTimer: {
        double p50, p90, p99;
        quantile_triple(m.hist, &p50, &p90, &p99);
        os << "," << m.hist.count() << "," << format_double(m.hist.sum())
           << "," << format_double(m.hist.mean()) << ","
           << format_double(m.hist.min()) << "," << format_double(m.hist.max())
           << "," << format_double(p50) << "," << format_double(p90) << ","
           << format_double(p99);
        break;
      }
    }
    os << "\n";
  }
}

std::string to_jsonl(const Registry& reg, const WriteOptions& options) {
  std::ostringstream os;
  write_jsonl(os, reg, options);
  return os.str();
}

void write_file(const std::string& path, const Registry& reg,
                const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("metrics: cannot open output file: " + path);
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_csv(out, reg, options);
  } else {
    write_jsonl(out, reg, options);
  }
}

}  // namespace odtn::metrics
