// MetricsWriter — serializes a Registry as JSON-lines or CSV.
//
// The export is *canonical*: metrics appear in name order, doubles are
// printed with std::to_chars (shortest round-trip form), and wall-clock
// metrics are excluded unless asked for. Exporting the same Registry
// contents therefore always produces the same bytes — the property the
// `--metrics-out` determinism test pins down.
//
// JSONL schema (one self-describing object per line, schema_version 1):
//   {"schema":"odtn.metrics.v1","name":N,"kind":"counter","value":V}
//   {"schema":"odtn.metrics.v1","name":N,"kind":"gauge","value":V}
//   {"schema":"odtn.metrics.v1","name":N,"kind":"histogram"|"timer",
//    "count":C,"sum":S,"mean":M,"min":m,"max":X,
//    "p50":Q1,"p90":Q2,"p99":Q3,"buckets":[[lo,hi,count],...]}
//
// CSV columns: name,kind,value,count,sum,mean,min,max,p50,p90,p99
// (value for counters/gauges; the distribution columns for histograms).
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/metrics.hpp"

namespace odtn::metrics {

struct WriteOptions {
  /// Include Stability::kWall metrics (timers, pool stats). Off by default
  /// so the export is reproducible across thread counts and machines.
  bool include_wall = false;
};

void write_jsonl(std::ostream& os, const Registry& reg,
                 const WriteOptions& options = {});
void write_csv(std::ostream& os, const Registry& reg,
               const WriteOptions& options = {});

/// JSONL export as a string (the determinism tests compare these bytes).
std::string to_jsonl(const Registry& reg, const WriteOptions& options = {});

/// Writes to `path`, picking the format from the extension: ".csv" → CSV,
/// anything else → JSONL. Throws std::runtime_error if the file cannot be
/// opened.
void write_file(const std::string& path, const Registry& reg,
                const WriteOptions& options = {});

/// Shortest round-trip decimal form of a double (std::to_chars); shared by
/// the writer and the bench JSON records so every emitted number is
/// byte-stable.
std::string format_double(double v);

}  // namespace odtn::metrics
