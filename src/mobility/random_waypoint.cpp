#include "mobility/random_waypoint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odtn::mobility {

namespace {

void validate(const RandomWaypointParams& p) {
  if (p.nodes < 2) throw std::invalid_argument("rwp: nodes < 2");
  if (!(p.width > 0.0) || !(p.height > 0.0)) {
    throw std::invalid_argument("rwp: non-positive area");
  }
  if (!(p.min_speed > 0.0) || p.max_speed < p.min_speed) {
    throw std::invalid_argument("rwp: bad speed range (min must be > 0)");
  }
  if (p.min_pause < 0.0 || p.max_pause < p.min_pause) {
    throw std::invalid_argument("rwp: bad pause range");
  }
  if (!(p.range > 0.0)) throw std::invalid_argument("rwp: bad radio range");
  if (!(p.duration > 0.0) || !(p.tick > 0.0)) {
    throw std::invalid_argument("rwp: bad duration/tick");
  }
}

double sq(double v) { return v * v; }

}  // namespace

RandomWaypointModel::RandomWaypointModel(const RandomWaypointParams& params,
                                         util::Rng& rng,
                                         WaypointPolicy policy)
    : params_(params), rng_(&rng), policy_(std::move(policy)) {
  validate(params_);
  nodes_.resize(params_.nodes);
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    auto& n = nodes_[v];
    n.pause_until = 0.0;
    pick_waypoint(n);
    if (policy_) {
      auto [x, y] = policy_(static_cast<NodeId>(v), 0.0);
      n.x = std::clamp(x, 0.0, params_.width);
      n.y = std::clamp(y, 0.0, params_.height);
    } else {
      n.x = rng_->uniform(0.0, params_.width);
      n.y = rng_->uniform(0.0, params_.height);
    }
  }
}

void RandomWaypointModel::pick_waypoint(NodeState& n) {
  if (policy_) {
    NodeId id = static_cast<NodeId>(&n - nodes_.data());
    auto [x, y] = policy_(id, time_);
    n.wx = std::clamp(x, 0.0, params_.width);
    n.wy = std::clamp(y, 0.0, params_.height);
  } else {
    n.wx = rng_->uniform(0.0, params_.width);
    n.wy = rng_->uniform(0.0, params_.height);
  }
  n.speed = rng_->uniform(params_.min_speed, params_.max_speed);
}

void RandomWaypointModel::step() {
  time_ += params_.tick;
  for (auto& n : nodes_) {
    if (time_ < n.pause_until) continue;
    double dx = n.wx - n.x;
    double dy = n.wy - n.y;
    double dist = std::sqrt(dx * dx + dy * dy);
    double stride = n.speed * params_.tick;
    if (dist <= stride) {
      // Arrived: pause, then head for a new waypoint.
      n.x = n.wx;
      n.y = n.wy;
      n.pause_until =
          time_ + rng_->uniform(params_.min_pause, params_.max_pause);
      pick_waypoint(n);
    } else {
      n.x += dx / dist * stride;
      n.y += dy / dist * stride;
    }
  }
}

std::pair<double, double> RandomWaypointModel::position(NodeId v) const {
  if (v >= nodes_.size()) {
    throw std::out_of_range("RandomWaypointModel::position");
  }
  return {nodes_[v].x, nodes_[v].y};
}

std::vector<std::pair<NodeId, NodeId>> RandomWaypointModel::pairs_in_range()
    const {
  std::vector<std::pair<NodeId, NodeId>> out;
  double r2 = sq(params_.range);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (NodeId j = i + 1; j < nodes_.size(); ++j) {
      if (sq(nodes_[i].x - nodes_[j].x) + sq(nodes_[i].y - nodes_[j].y) <=
          r2) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

namespace {

// Runs the model to `duration`, emitting one event per range *entry*.
trace::ContactTrace collect_entry_events(RandomWaypointModel& model,
                                         std::size_t n, double duration) {
  std::vector<trace::ContactEvent> events;
  std::vector<bool> in_range(n * n, false);
  auto idx = [n](NodeId i, NodeId j) { return std::size_t{i} * n + j; };

  while (model.time() < duration) {
    model.step();
    auto now_pairs = model.pairs_in_range();
    std::vector<bool> now(n * n, false);
    for (auto [i, j] : now_pairs) {
      now[idx(i, j)] = true;
      if (!in_range[idx(i, j)]) {
        events.push_back({model.time(), i, j});
      }
    }
    in_range.swap(now);
  }
  return trace::ContactTrace(n, std::move(events));
}

}  // namespace

trace::ContactTrace random_waypoint_trace(const RandomWaypointParams& params,
                                          util::Rng& rng) {
  RandomWaypointModel model(params, rng);
  return collect_entry_events(model, params.nodes, params.duration);
}

trace::ContactTrace working_day_trace(const WorkingDayParams& params,
                                      util::Rng& rng) {
  if (params.days < 1) {
    throw std::invalid_argument("working_day_trace: days < 1");
  }
  if (params.offices == 0 || params.offices > params.base.nodes) {
    throw std::invalid_argument("working_day_trace: bad office count");
  }
  if (!(params.work_end > params.work_start) || params.work_start < 0.0 ||
      params.work_end > 86400.0) {
    throw std::invalid_argument("working_day_trace: bad work window");
  }
  if (!(params.cell_radius > 0.0)) {
    throw std::invalid_argument("working_day_trace: bad cell radius");
  }

  const auto& base = params.base;
  // Anchors: offices on a coarse grid, homes uniform.
  std::vector<std::pair<double, double>> office(params.offices);
  for (std::size_t o = 0; o < params.offices; ++o) {
    office[o] = {rng.uniform(0.15, 0.85) * base.width,
                 rng.uniform(0.15, 0.85) * base.height};
  }
  std::vector<std::pair<double, double>> home(base.nodes);
  std::vector<std::size_t> workplace(base.nodes);
  for (std::size_t v = 0; v < base.nodes; ++v) {
    home[v] = {rng.uniform(0.0, base.width), rng.uniform(0.0, base.height)};
    workplace[v] = v % params.offices;
  }

  auto policy = [&, cell = params.cell_radius, ws = params.work_start,
                 we = params.work_end](NodeId v, double t) {
    double tod = std::fmod(t, 86400.0);
    auto [ax, ay] = (tod >= ws && tod < we) ? office[workplace[v]] : home[v];
    return std::make_pair(ax + rng.uniform(-cell, cell),
                          ay + rng.uniform(-cell, cell));
  };

  RandomWaypointParams run = base;
  run.duration = params.days * 86400.0;
  RandomWaypointModel model(run, rng, policy);
  return collect_entry_events(model, run.nodes, run.duration);
}

}  // namespace odtn::mobility
