// Random-waypoint mobility: contact traces from simulated node movement.
//
// DTN evaluations (e.g. with the ONE simulator) commonly generate contact
// traces from geometric mobility rather than sampling inter-contact times
// directly. This module provides the classic random-waypoint model: each
// node repeatedly picks a uniform waypoint in a rectangle, moves toward it
// at a uniform-random speed, pauses, and repeats. A contact event is
// emitted whenever two nodes move into radio range.
//
// This closes the modeling loop of the paper: Table II *assumes*
// exponential inter-contact times; random-waypoint mobility lets the
// library test that assumption from first principles
// (bench/ablation_mobility).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "trace/contact_trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::mobility {

struct RandomWaypointParams {
  std::size_t nodes = 40;
  double width = 1000.0;    // area, meters
  double height = 1000.0;
  double min_speed = 0.5;   // m/s (> 0: avoids the RWP speed-decay pathology)
  double max_speed = 1.5;
  double min_pause = 0.0;   // s at each waypoint
  double max_pause = 120.0;
  double range = 50.0;      // radio range, meters
  double duration = 43200.0;  // simulated seconds
  double tick = 1.0;        // movement/contact sampling interval, s
};

/// Steppable movement model (exposed for tests; the trace generator below
/// is the typical entry point).
class RandomWaypointModel {
 public:
  /// Chooses the next waypoint for `node` at simulated time `time`.
  /// Returned coordinates are clamped to the area. The default policy
  /// draws uniformly over the whole rectangle (classic RWP).
  using WaypointPolicy =
      std::function<std::pair<double, double>(NodeId node, double time)>;

  RandomWaypointModel(const RandomWaypointParams& params, util::Rng& rng,
                      WaypointPolicy policy = nullptr);

  /// Advances all nodes by one tick.
  void step();

  double time() const { return time_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::pair<double, double> position(NodeId v) const;

  /// Pairs currently within radio range (i < j).
  std::vector<std::pair<NodeId, NodeId>> pairs_in_range() const;

 private:
  struct NodeState {
    double x, y;          // current position
    double wx, wy;        // waypoint
    double speed;         // current leg speed, m/s
    double pause_until;   // absolute time the pause ends
  };

  void pick_waypoint(NodeState& n);

  RandomWaypointParams params_;
  util::Rng* rng_;
  WaypointPolicy policy_;
  std::vector<NodeState> nodes_;
  double time_ = 0.0;
};

/// Runs the model for `params.duration` and records a contact event each
/// time a pair *enters* radio range (the paper's model: one contact event
/// per meeting, long enough to transfer a message).
trace::ContactTrace random_waypoint_trace(const RandomWaypointParams& params,
                                          util::Rng& rng);

/// Working-day variant: each node gets a home cell and an office cell;
/// waypoints are drawn near the office during work hours and near home
/// otherwise, producing the community structure and diurnal rhythm of
/// human-contact DTNs (a geometric sibling of trace::make_diurnal_trace).
struct WorkingDayParams {
  RandomWaypointParams base;  // area/speed/range/tick as above
  int days = 3;
  double work_start = 9 * 3600.0;   // seconds of day
  double work_end = 17 * 3600.0;
  /// Nodes are split evenly across this many office locations.
  std::size_t offices = 3;
  /// Waypoints are drawn uniformly within this radius of the anchor cell.
  double cell_radius = 120.0;
};

trace::ContactTrace working_day_trace(const WorkingDayParams& params,
                                      util::Rng& rng);

}  // namespace odtn::mobility
