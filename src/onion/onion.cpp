#include "onion/onion.hpp"

#include <stdexcept>

#include "crypto/aead.hpp"

namespace odtn::onion {

namespace {

// Layer plaintext header: version(1) type(1) next_group(4) dest(4) len(4).
constexpr std::size_t kHeaderSize = 14;
constexpr std::uint8_t kVersion = 1;
// Per-wrap overhead: 12-byte nonce + 16-byte tag + header.
constexpr std::size_t kWrapOverhead =
    crypto::kAeadNonceSize + crypto::kAeadTagSize + kHeaderSize;

const util::Bytes& onion_aad() {
  static const util::Bytes aad = util::to_bytes("odtn-onion-v1");
  return aad;
}

struct Header {
  std::uint8_t type;
  GroupId next_group;
  NodeId dest;
  std::uint32_t len;
};

void put_header(util::Bytes& out, const Header& h) {
  out.push_back(kVersion);
  out.push_back(h.type);
  util::put_u32le(out, h.next_group);
  util::put_u32le(out, h.dest);
  util::put_u32le(out, h.len);
}

std::optional<Header> parse_header(const util::Bytes& plain) {
  if (plain.size() < kHeaderSize) return std::nullopt;
  if (plain[0] != kVersion) return std::nullopt;
  Header h;
  h.type = plain[1];
  h.next_group = util::get_u32le(plain, 2);
  h.dest = util::get_u32le(plain, 6);
  h.len = util::get_u32le(plain, 10);
  return h;
}

}  // namespace

OnionCodec::OnionCodec(OnionConfig config) : config_(config) {
  if (config_.payload_size == 0 || config_.max_layers == 0) {
    throw std::invalid_argument("OnionCodec: zero payload_size or max_layers");
  }
  wire_size_ = fragment_size(config_.max_layers);
}

std::size_t OnionCodec::fragment_size(std::size_t layers_remaining) const {
  // Final fragment: nonce + tag + header + padded payload.
  std::size_t base = crypto::kAeadNonceSize + crypto::kAeadTagSize +
                     kHeaderSize + config_.payload_size;
  return base + layers_remaining * kWrapOverhead;
}

util::Bytes OnionCodec::seal_layer(const util::Bytes& plaintext,
                                   const util::Bytes& key,
                                   crypto::Drbg& drbg) const {
  util::Bytes nonce = drbg.generate_nonce();
  util::Bytes fragment = nonce;
  util::append(fragment, crypto::aead_seal(key, nonce, onion_aad(), plaintext));
  return fragment;
}

util::Bytes OnionCodec::pad_to_wire(util::Bytes fragment,
                                    crypto::Drbg& drbg) const {
  if (fragment.size() > wire_size_) {
    throw std::logic_error("OnionCodec: fragment exceeds wire size");
  }
  util::Bytes pad = drbg.generate(wire_size_ - fragment.size());
  util::append(fragment, pad);
  return fragment;
}

util::Bytes OnionCodec::build(const util::Bytes& payload, NodeId dest,
                              const std::vector<GroupId>& relay_groups,
                              const groups::KeyManager& keys,
                              crypto::Drbg& drbg,
                              GroupId destination_group) const {
  const bool group_delivery = destination_group != kInvalidGroup;
  if (payload.size() > config_.payload_size) {
    throw std::invalid_argument("OnionCodec::build: payload too large");
  }
  if (relay_groups.empty()) {
    throw std::invalid_argument("OnionCodec::build: need >= 1 relay group");
  }
  if (relay_groups.size() + (group_delivery ? 1 : 0) > config_.max_layers) {
    throw std::invalid_argument("OnionCodec::build: too many relay groups");
  }

  // FINAL layer, sealed with the destination's inbox key.
  util::Bytes plain;
  put_header(plain, Header{static_cast<std::uint8_t>(Peeled::Type::kFinal),
                           kInvalidGroup, dest,
                           static_cast<std::uint32_t>(payload.size())});
  util::append(plain, payload);
  util::Bytes fill = drbg.generate(config_.payload_size - payload.size());
  util::append(plain, fill);
  util::Bytes fragment = seal_layer(plain, keys.inbox_key(dest), drbg);

  if (group_delivery) {
    // Destination-group layer: any member of the destination's group can
    // peel it, learning only that the message circulates in this group.
    Header h;
    h.type = static_cast<std::uint8_t>(Peeled::Type::kDeliverGroup);
    h.next_group = destination_group;
    h.dest = kInvalidNode;
    h.len = static_cast<std::uint32_t>(fragment.size());
    util::Bytes wrapped;
    put_header(wrapped, h);
    util::append(wrapped, fragment);
    fragment = seal_layer(wrapped, keys.group_key(destination_group), drbg);
  }

  // Wrap from the last relay group inward to the first.
  const std::size_t k = relay_groups.size();
  for (std::size_t i = k; i-- > 0;) {
    Header h;
    h.len = static_cast<std::uint32_t>(fragment.size());
    h.dest = kInvalidNode;
    h.next_group = kInvalidGroup;
    if (i == k - 1 && !group_delivery) {
      h.type = static_cast<std::uint8_t>(Peeled::Type::kDeliver);
      h.dest = dest;
    } else {
      h.type = static_cast<std::uint8_t>(Peeled::Type::kRelay);
      h.next_group =
          (i == k - 1) ? destination_group : relay_groups[i + 1];
    }
    util::Bytes wrapped;
    put_header(wrapped, h);
    util::append(wrapped, fragment);
    fragment = seal_layer(wrapped, keys.group_key(relay_groups[i]), drbg);
  }

  return pad_to_wire(std::move(fragment), drbg);
}

util::Bytes OnionCodec::make_decoy(crypto::Drbg& drbg) const {
  return drbg.generate(wire_size_);
}

std::optional<Peeled> OnionCodec::peel(const util::Bytes& wire,
                                       const util::Bytes& key,
                                       crypto::Drbg& drbg) const {
  if (wire.size() != wire_size_) return std::nullopt;

  // Trial decryption over the valid fragment lengths, deepest stack first.
  for (std::size_t layers = config_.max_layers + 1; layers-- > 0;) {
    std::size_t frag_len = fragment_size(layers);
    if (frag_len > wire.size()) continue;
    util::Bytes nonce(wire.begin(), wire.begin() + crypto::kAeadNonceSize);
    util::Bytes sealed(wire.begin() + crypto::kAeadNonceSize,
                       wire.begin() + static_cast<long>(frag_len));
    auto plain = crypto::aead_open(key, nonce, onion_aad(), sealed);
    if (!plain.has_value()) continue;

    auto header = parse_header(*plain);
    if (!header.has_value()) return std::nullopt;

    Peeled result;
    switch (static_cast<Peeled::Type>(header->type)) {
      case Peeled::Type::kFinal: {
        if (kHeaderSize + header->len > plain->size()) return std::nullopt;
        result.type = Peeled::Type::kFinal;
        result.payload.assign(plain->begin() + kHeaderSize,
                              plain->begin() + kHeaderSize + header->len);
        return result;
      }
      case Peeled::Type::kDeliver:
      case Peeled::Type::kDeliverGroup:
      case Peeled::Type::kRelay: {
        if (kHeaderSize + header->len > plain->size()) return std::nullopt;
        result.type = static_cast<Peeled::Type>(header->type);
        result.next_group = header->next_group;
        result.dest = header->dest;
        util::Bytes inner(plain->begin() + kHeaderSize,
                          plain->begin() + kHeaderSize + header->len);
        result.next_wire = pad_to_wire(std::move(inner), drbg);
        return result;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<PeeledView> OnionCodec::peel_view(const util::Bytes& wire,
                                                const util::Bytes& key,
                                                crypto::Drbg& drbg,
                                                PeelScratch& scratch) const {
  if (wire.size() != wire_size_) return std::nullopt;

  const std::span<const std::uint8_t> wire_span(wire);
  for (std::size_t layers = config_.max_layers + 1; layers-- > 0;) {
    std::size_t frag_len = fragment_size(layers);
    if (frag_len > wire.size()) continue;
    auto nonce = wire_span.first(crypto::kAeadNonceSize);
    auto sealed = wire_span.subspan(crypto::kAeadNonceSize,
                                    frag_len - crypto::kAeadNonceSize);
    if (!crypto::aead_open_into(key, nonce, onion_aad(), sealed, scratch.plain,
                                scratch.aead)) {
      continue;
    }

    auto header = parse_header(scratch.plain);
    if (!header.has_value()) return std::nullopt;
    if (kHeaderSize + header->len > scratch.plain.size()) return std::nullopt;

    PeeledView result;
    switch (static_cast<Peeled::Type>(header->type)) {
      case Peeled::Type::kFinal: {
        result.type = Peeled::Type::kFinal;
        result.payload = std::span<const std::uint8_t>(scratch.plain)
                             .subspan(kHeaderSize, header->len);
        return result;
      }
      case Peeled::Type::kDeliver:
      case Peeled::Type::kDeliverGroup:
      case Peeled::Type::kRelay: {
        result.type = static_cast<Peeled::Type>(header->type);
        result.next_group = header->next_group;
        result.dest = header->dest;
        scratch.next.assign(scratch.plain.begin() + kHeaderSize,
                            scratch.plain.begin() + kHeaderSize + header->len);
        drbg.generate_into(wire_size_ - scratch.next.size(), scratch.pad);
        scratch.next.insert(scratch.next.end(), scratch.pad.begin(),
                            scratch.pad.end());
        result.next_wire = std::span<const std::uint8_t>(scratch.next);
        return result;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace odtn::onion
