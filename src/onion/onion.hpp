// Layered onion packets for group onion routing (Sec. II-A/II-B).
//
// The source seals the payload for the destination, then wraps one layer
// per relay group, outermost layer first peeled. Any member of relay group
// R_k holds the group key that peels layer k, realizing the paper's
// "anycast" property: the holder may hand the onion to *any* member of the
// next group.
//
// Construction (from inside out):
//   FINAL   layer -> sealed with the destination's inbox key; carries the
//                    application payload (padded to a fixed size).
//   DELIVER layer -> sealed with group key of R_K; names the destination.
//   RELAY   layers -> sealed with group keys of R_{K-1}..R_1; each names
//                    the next relay group only.
//
// Wire-size invariance: each AEAD wrap adds a constant 42-byte overhead,
// so fragments shrink as layers peel — which would leak a packet's position
// on its path. We therefore pad every transmitted packet with random bytes
// up to a constant wire size, and a peeler discovers its fragment's true
// extent by *trial decryption* over the (at most max_layers+1) valid
// fragment lengths; the AEAD tag rejects every wrong guess. Nothing on the
// wire distinguishes hop positions. (Sphinx achieves the same property
// with a keystream trick; trial decryption is simpler and the try count is
// tiny. The trade-off is documented in DESIGN.md.)
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "groups/key_manager.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace odtn::onion {

struct OnionConfig {
  /// Fixed application-payload capacity of every onion.
  std::size_t payload_size = 256;
  /// Maximum number of relay layers (K) an onion may carry; determines the
  /// constant wire size.
  std::size_t max_layers = 12;
};

/// What a peeler learns from removing one layer.
struct Peeled {
  enum class Type : std::uint8_t {
    kRelay = 1,         // forward to any member of `next_group`
    kDeliver = 2,       // hand `next_wire` to node `dest`
    kFinal = 3,         // we are the destination; `payload` is the message
    kDeliverGroup = 4,  // circulate `next_wire` within group `next_group`
                        // until the (hidden) destination opens it — ARDEN's
                        // destination-anonymity option (Sec. V of the paper:
                        // "the last hop forms an onion group")
  };

  Type type;
  GroupId next_group = kInvalidGroup;  // kRelay only
  NodeId dest = kInvalidNode;          // kDeliver only
  util::Bytes payload;                 // kFinal only
  util::Bytes next_wire;               // kRelay/kDeliver: padded packet to pass on
};

/// Reusable buffers for peel_view(); one scratch per peeler makes
/// steady-state peeling allocation-free (the PR-4 zero-allocation contract).
struct PeelScratch {
  util::Bytes plain;  // decrypted layer (header || inner fragment)
  util::Bytes next;   // re-padded next wire packet
  util::Bytes pad;    // fresh random padding
  crypto::AeadScratch aead;
};

/// Zero-copy result of peel_view(): the spans point into the PeelScratch
/// passed to the call and are valid until its next use.
struct PeeledView {
  Peeled::Type type;
  GroupId next_group = kInvalidGroup;        // kRelay/kDeliverGroup only
  NodeId dest = kInvalidNode;                // kDeliver only
  std::span<const std::uint8_t> payload;     // kFinal only
  std::span<const std::uint8_t> next_wire;   // kRelay/kDeliver/kDeliverGroup
};

class OnionCodec {
 public:
  explicit OnionCodec(OnionConfig config = {});

  const OnionConfig& config() const { return config_; }

  /// Every packet on the wire has exactly this many bytes.
  std::size_t wire_size() const { return wire_size_; }

  /// Builds a full onion for `payload` addressed to `dest` via the relay
  /// groups R_1..R_K (`relay_groups` ordered first-hop first). Throws if the
  /// payload exceeds payload_size or the layer count exceeds max_layers.
  ///
  /// If `destination_group` is valid, the last relay layer names that group
  /// instead of the destination node, and an extra layer sealed with the
  /// destination group's key is added: relays never learn which member is
  /// the destination (ARDEN's destination-anonymity option). The caller
  /// must pass the group `dest` belongs to.
  util::Bytes build(const util::Bytes& payload, NodeId dest,
                    const std::vector<GroupId>& relay_groups,
                    const groups::KeyManager& keys, crypto::Drbg& drbg,
                    GroupId destination_group = kInvalidGroup) const;

  /// Attempts to peel one layer with `key` (a group key, or the node's
  /// inbox key for the final layer). Returns nullopt if the key does not
  /// open any fragment of the packet — i.e. the caller is not a member of
  /// the layer's group. Re-pads `next_wire` with fresh random bytes.
  std::optional<Peeled> peel(const util::Bytes& wire, const util::Bytes& key,
                             crypto::Drbg& drbg) const;

  /// Allocation-free variant of peel(): all intermediate buffers live in
  /// `scratch` and the returned view borrows from it. Draws the DRBG
  /// identically to peel() (one padding draw on relay-type success, none on
  /// failure or final delivery), so the two are interchangeable bit-for-bit.
  std::optional<PeeledView> peel_view(const util::Bytes& wire,
                                      const util::Bytes& key,
                                      crypto::Drbg& drbg,
                                      PeelScratch& scratch) const;

  /// Fragment length of a packet with `layers_remaining` wraps above the
  /// final layer (exposed for tests).
  std::size_t fragment_size(std::size_t layers_remaining) const;

  /// A decoy: uniformly random bytes of exactly wire_size(). On the wire
  /// it is indistinguishable from a real onion (every real packet is an
  /// AEAD ciphertext plus random padding), yet no key peels it. Decoys are
  /// cover traffic: a relay that also emits decoys prevents an observer
  /// from counting how many *real* onions it handles.
  util::Bytes make_decoy(crypto::Drbg& drbg) const;

 private:
  util::Bytes seal_layer(const util::Bytes& plaintext, const util::Bytes& key,
                         crypto::Drbg& drbg) const;
  util::Bytes pad_to_wire(util::Bytes fragment, crypto::Drbg& drbg) const;

  OnionConfig config_;
  std::size_t wire_size_;
};

}  // namespace odtn::onion
