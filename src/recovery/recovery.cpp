#include "recovery/recovery.hpp"

#include <stdexcept>

#include "groups/group_directory.hpp"

namespace odtn::recovery {

void RecoveryConfig::validate() const {
  if (retx_timeout < 0.0) {
    throw std::invalid_argument("recovery: retx_timeout must be >= 0");
  }
  if (retx_timeout > 0.0 && retx_max == 0) {
    throw std::invalid_argument(
        "recovery: retx_max must be >= 1 when retransmission is on");
  }
  if (retx_backoff < 1.0) {
    throw std::invalid_argument("recovery: retx_backoff must be >= 1");
  }
  if (retx_jitter < 0.0 || retx_jitter >= 1.0) {
    throw std::invalid_argument("recovery: retx_jitter must be in [0, 1)");
  }
  if (suspicion_alpha < 0.0 || suspicion_alpha > 1.0) {
    throw std::invalid_argument("recovery: suspicion_alpha must be in [0, 1]");
  }
  if (suspicion_alpha > 0.0 && retx_timeout <= 0.0) {
    throw std::invalid_argument(
        "recovery: the suspicion tracker learns from retransmission "
        "timeouts; set retx_timeout > 0");
  }
  if (suspicion_threshold <= 0.0 || suspicion_threshold > 1.0) {
    throw std::invalid_argument(
        "recovery: suspicion_threshold must be in (0, 1]");
  }
  if (shed_occupancy < 0.0 || shed_occupancy > 1.0 || shed_saturation < 0.0 ||
      shed_saturation > 1.0) {
    throw std::invalid_argument(
        "recovery: shed thresholds must be fractions in [0, 1]");
  }
}

SuspicionTracker::SuspicionTracker(double alpha, double threshold)
    : alpha_(alpha), threshold_(threshold) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("SuspicionTracker: alpha must be in (0, 1]");
  }
  if (threshold <= 0.0 || threshold > 1.0) {
    throw std::invalid_argument(
        "SuspicionTracker: threshold must be in (0, 1]");
  }
}

void SuspicionTracker::record(GroupId group, bool acked) {
  double& s = score_[group];  // default-inserts 0 (unsuspected)
  const bool was = s >= threshold_;
  s = (1.0 - alpha_) * s + alpha_ * (acked ? 0.0 : 1.0);
  if ((s >= threshold_) != was) ++flips_;
}

double SuspicionTracker::suspicion(GroupId group) const {
  auto it = score_.find(group);
  return it == score_.end() ? 0.0 : it->second;
}

bool SuspicionTracker::suspected(GroupId group) const {
  return suspicion(group) >= threshold_;
}

std::size_t SuspicionTracker::suspected_count() const {
  std::size_t n = 0;
  for (const auto& [g, s] : score_) n += (s >= threshold_);
  return n;
}

std::vector<GroupId> select_relay_groups_avoiding(
    const groups::GroupDirectory& directory, const SuspicionTracker& tracker,
    NodeId src, NodeId dst, std::size_t k, util::Rng& rng,
    std::size_t attempts) {
  std::vector<GroupId> best;
  std::size_t best_tainted = static_cast<std::size_t>(-1);
  for (std::size_t a = 0; a < attempts; ++a) {
    std::vector<GroupId> draw =
        directory.select_relay_groups(src, dst, k, rng);
    std::size_t tainted = 0;
    for (GroupId g : draw) tainted += tracker.suspected(g);
    if (tainted < best_tainted) {
      best_tainted = tainted;
      best = std::move(draw);
      if (best_tainted == 0) break;
    }
  }
  return best;
}

SaturationWindow::SaturationWindow(std::size_t window)
    : bits_(window == 0 ? 1 : window, 0) {}

void SaturationWindow::record(bool saturated) {
  if (filled_ == bits_.size()) {
    ones_ -= bits_[next_];
  } else {
    ++filled_;
  }
  bits_[next_] = saturated ? 1 : 0;
  ones_ += bits_[next_];
  next_ = (next_ + 1) % bits_.size();
}

double SaturationWindow::fraction() const {
  return filled_ == 0
             ? 0.0
             : static_cast<double>(ones_) / static_cast<double>(filled_);
}

}  // namespace odtn::recovery
