// End-to-end reliability for onion DTN routing (odtn::recovery).
//
// The paper's protocols are fire-and-forget: K onion layers, L copies,
// and hope. A copy that lands on a crashed, blackholed, or saturated
// relay is silently lost and the sender never learns. This subsystem adds
// the feedback loop a deployed system needs, in four pieces:
//
//  (1) Delivery ACKs ("vaccine" anti-packets): when a message reaches its
//      destination, an ACK record is born there and spreads epidemically
//      at every surviving contact. A node that learns the ACK
//      garbage-collects its outstanding copies of the message (freeing
//      buffer space); when the ACK reaches the source, pending
//      retransmissions are canceled.
//  (2) Sender-side retransmission: without an ACK by a configurable
//      timeout the source re-onions the message through *freshly sampled*
//      relay groups, with exponential backoff and seeded jitter. All
//      randomness comes from util::derive_seed sub-streams (one per
//      message), so loaded faulty sweeps stay bit-identical at every
//      --threads value.
//  (3) A per-relay-group suspicion tracker: an EWMA of unacked sends per
//      group. Timed-out generations penalize their groups; acked
//      generations exonerate them. Group selection for retries is biased
//      away from suspected groups, steering traffic around blackholes and
//      chronically-down relays.
//  (4) Overload shedding: priority-aware admission control. When recent
//      contacts saturate or the source buffer crosses an occupancy
//      threshold, the lowest-priority flows are shed at injection instead
//      of collapsing delivery for everyone.
//
// The zero-knob default disables everything: no RNG draws, no metrics
// entries, byte-identical behavior to a build without this layer — the
// same contract as odtn::faults and odtn::traffic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::groups {
class GroupDirectory;
}

namespace odtn::recovery {

/// All-zero defaults disable the subsystem entirely (enabled() == false).
struct RecoveryConfig {
  // (1) Delivery ACKs propagate back through contacts as anti-packets and
  // garbage-collect outstanding copies. Anti-packets are metadata-sized
  // and do not consume contact bandwidth budget.
  bool acks = false;

  // (2) Retransmission: without a source-side ACK by `retx_timeout` time
  // units after the send, the source re-onions through fresh relay
  // groups. 0 disables. Each retry multiplies the timeout by
  // `retx_backoff` and perturbs it by a seeded uniform draw in
  // [-retx_jitter, +retx_jitter] (fraction of the interval).
  double retx_timeout = 0.0;
  std::size_t retx_max = 3;
  double retx_backoff = 2.0;
  double retx_jitter = 0.1;

  // (3) Suspicion tracker: EWMA weight of each send outcome per relay
  // group (0 disables; requires retx_timeout > 0, which provides the
  // timeout events the tracker learns from). Groups whose EWMA of
  // unacked sends exceeds `suspicion_threshold` are avoided when
  // resampling relay groups.
  double suspicion_alpha = 0.0;
  double suspicion_threshold = 0.75;

  // (4) Overload shedding (admission control at injection time). A
  // message of priority class >= `shed_priority_floor` is shed when
  // either signal crosses its threshold: source-buffer occupancy
  // fraction >= `shed_occupancy` (needs a finite buffer capacity), or
  // the fraction of recently saturated contacts >= `shed_saturation`.
  // 0 disables each signal. Class 0 (most urgent) is never shed with
  // the default floor.
  double shed_occupancy = 0.0;
  double shed_saturation = 0.0;
  std::uint8_t shed_priority_floor = 1;

  bool shedding() const {
    return shed_occupancy > 0.0 || shed_saturation > 0.0;
  }
  bool enabled() const {
    return acks || retx_timeout > 0.0 || suspicion_alpha > 0.0 || shedding();
  }
  /// Throws std::invalid_argument (one-line message) on bad knobs.
  void validate() const;
};

/// Per-relay-group EWMA of unacked sends. `record(g, acked)` folds one
/// send outcome; a group whose score crosses `threshold` upward (or back
/// down) counts one flip. Scores start at 0 (unsuspected), so the tracker
/// must observe failures before it avoids anything — no prior knowledge
/// of the blackhole set leaks in. Ordered map: iteration and lookup are
/// deterministic, and the group universe may be huge (sharded
/// directories) while the touched set stays small.
class SuspicionTracker {
 public:
  SuspicionTracker(double alpha, double threshold);

  /// Folds one send outcome for `group`: EWMA steps toward 1 when the
  /// send timed out unacked, toward 0 when it was acked.
  void record(GroupId group, bool acked);

  /// Current EWMA of unacked sends (0 for never-seen groups).
  double suspicion(GroupId group) const;
  bool suspected(GroupId group) const;
  /// Threshold crossings in either direction since construction.
  std::size_t flips() const { return flips_; }
  std::size_t suspected_count() const;

 private:
  double alpha_;
  double threshold_;
  std::map<GroupId, double> score_;
  std::size_t flips_ = 0;
};

/// Suspicion-biased relay-group selection: draws up to `attempts`
/// candidate sets via GroupDirectory::select_relay_groups and returns the
/// first set containing no suspected group; if every draw is tainted, the
/// set with the fewest suspected groups wins (first minimum — ties break
/// toward the earlier draw, deterministically). Always draws from `rng`
/// in a data-independent pattern apart from the early exit.
std::vector<GroupId> select_relay_groups_avoiding(
    const groups::GroupDirectory& directory, const SuspicionTracker& tracker,
    NodeId src, NodeId dst, std::size_t k, util::Rng& rng,
    std::size_t attempts = 4);

/// Sliding window over the saturation bit of the last `window` contacts —
/// the congestion signal shed_saturation consults. fraction() is 0 until
/// at least one contact has been recorded.
class SaturationWindow {
 public:
  explicit SaturationWindow(std::size_t window = 64);
  void record(bool saturated);
  double fraction() const;

 private:
  std::vector<std::uint8_t> bits_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t ones_ = 0;
};

}  // namespace odtn::recovery
