#include "routing/alar.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"

namespace odtn::routing {

AlarRouting::AlarRouting(AlarOptions options, CryptoMode crypto,
                         const groups::KeyManager* keys)
    : options_(options), crypto_(crypto), keys_(keys) {
  if (options_.segments == 0 || options_.segments > 255) {
    throw std::invalid_argument("AlarRouting: bad segment count");
  }
  if (options_.threshold == 0 || options_.threshold > options_.segments) {
    throw std::invalid_argument("AlarRouting: bad threshold");
  }
  if (crypto_ == CryptoMode::kReal && keys_ == nullptr) {
    throw std::invalid_argument("AlarRouting: kReal requires a KeyManager");
  }
}

AlarResult AlarRouting::route(const trace::ContactTrace& trace,
                              const MessageSpec& spec, util::Rng& rng) {
  (void)rng;
  if (spec.src == spec.dst) {
    throw std::invalid_argument("route: src == dst");
  }
  if (spec.src >= trace.node_count() || spec.dst >= trace.node_count()) {
    throw std::invalid_argument("route: unknown endpoint");
  }
  const std::size_t n = trace.node_count();
  const std::size_t s = options_.segments;
  const Time deadline = spec.start + spec.ttl;

  AlarResult result;
  result.initial_receivers.assign(s, kInvalidNode);

  // Real crypto: Shamir-split the payload; seal each segment to dst.
  crypto::Drbg drbg(spec.src ^ (static_cast<std::uint64_t>(spec.dst) << 20) ^
                    0x5a17bd02ULL);
  std::vector<util::Bytes> sealed(s);
  std::vector<crypto::Share> shares;
  if (crypto_ == CryptoMode::kReal) {
    shares = crypto::shamir_split(spec.payload, options_.threshold, s, drbg);
    for (std::size_t i = 0; i < s; ++i) {
      util::Bytes plain;
      plain.push_back(shares[i].x);
      util::append(plain, shares[i].data);
      util::Bytes nonce = drbg.generate_nonce();
      sealed[i] = nonce;
      util::append(sealed[i], crypto::aead_seal(keys_->inbox_key(spec.dst),
                                                nonce, {}, plain));
    }
  }

  // holdings[v] = bitmask of segments node v carries. The source holds all
  // segments but, per ALAR, releases each to a *different* first receiver
  // and stops advertising it afterwards (that is the localization
  // defense: no bystander sees the source emit twice... per segment).
  std::vector<std::uint64_t> holdings(n, 0);
  // The source holds every segment from the start (it only *releases*
  // them, never floods, and must not be re-infected by the epidemic).
  holdings[spec.src] =
      s >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << s) - 1);
  std::vector<bool> was_initial_receiver(n, false);
  std::size_t next_segment_to_release = 0;
  std::size_t dst_segments = 0;

  auto give = [&](NodeId from, NodeId to, std::size_t seg, Time t) {
    holdings[to] |= (std::uint64_t{1} << seg);
    ++result.transmissions;
    if (to == spec.dst) {
      ++dst_segments;
      if (dst_segments == options_.threshold && !result.delivered) {
        result.delivered = true;
        result.delay = t - spec.start;
      }
    }
    (void)from;
  };

  // Events are time-sorted: jump straight to the message's start instead of
  // scanning the pre-start prefix.
  const auto& events = trace.events();
  auto first = std::lower_bound(events.begin(), events.end(), spec.start,
                                [](const trace::ContactEvent& e, Time t) {
                                  return e.time < t;
                                });
  for (auto it = first; it != events.end(); ++it) {
    const auto& event = *it;
    if (event.time >= deadline) break;
    if (result.delivered) break;

    for (auto [u, v] : {std::pair<NodeId, NodeId>{event.a, event.b},
                        std::pair<NodeId, NodeId>{event.b, event.a}}) {
      // Source release phase: hand the next unreleased segment to a node
      // that has not served as an initial receiver yet (each segment gets
      // a *different* first receiver — the anti-localization property).
      if (u == spec.src && next_segment_to_release < s && v != spec.src &&
          !was_initial_receiver[v] && v != spec.dst) {
        was_initial_receiver[v] = true;
        result.initial_receivers[next_segment_to_release] = v;
        give(u, v, next_segment_to_release, event.time);
        ++next_segment_to_release;
        continue;
      }
      // Epidemic phase: u passes every segment v lacks.
      std::uint64_t missing = holdings[u] & ~holdings[v];
      if (u == spec.src) missing = 0;  // source only releases, never floods
      for (std::size_t seg = 0; seg < s && missing != 0; ++seg) {
        std::uint64_t bit = std::uint64_t{1} << seg;
        if (missing & bit) {
          give(u, v, seg, event.time);
          missing &= ~bit;
          if (result.delivered) break;
        }
      }
      if (result.delivered) break;
    }
  }

  result.segments_at_destination = dst_segments;

  if (result.delivered && crypto_ == CryptoMode::kReal) {
    // Destination-side reconstruction from the first `threshold` segments
    // (order does not matter for Shamir).
    std::vector<crypto::Share> received;
    std::uint64_t dst_mask = holdings[spec.dst];
    for (std::size_t i = 0; i < s && received.size() < options_.threshold;
         ++i) {
      if (!(dst_mask & (std::uint64_t{1} << i))) continue;
      util::Bytes nonce(sealed[i].begin(), sealed[i].begin() + 12);
      util::Bytes body(sealed[i].begin() + 12, sealed[i].end());
      auto plain =
          crypto::aead_open(keys_->inbox_key(spec.dst), nonce, {}, body);
      if (!plain.has_value() || plain->empty()) continue;
      crypto::Share share;
      share.x = (*plain)[0];
      share.data.assign(plain->begin() + 1, plain->end());
      received.push_back(std::move(share));
    }
    result.crypto_verified =
        received.size() >= options_.threshold &&
        crypto::shamir_reconstruct(received, options_.threshold) ==
            spec.payload;
  }

  return result;
}

}  // namespace odtn::routing
