// ALAR — Anti-Localization Anonymous Routing (Lu et al., Comput. Netw.
// 2010), the third anonymous-DTN scheme in the paper's related work
// (Sec. VI-C): "an Epidemic-like protocol that hides the source location
// by dividing a message into several segments and then sending them to
// different receivers; meanwhile the sender's identifier is not
// protected."
//
// The source splits the message into `segments` Shamir shares (threshold
// configurable; ALAR's original scheme needs all segments, tau = s). Each
// segment is handed to a *different* first receiver — so no single
// bystander observes the source transmitting the whole message, which is
// what defeats localization — and from there spreads epidemically. The
// destination reconstructs once `threshold` distinct segments arrive.
//
// Simulated over an explicit contact trace (for random graphs, sample one
// with trace::sample_poisson_trace): segment spreading is a joint process
// on shared contacts, which an event walk captures exactly.
#pragma once

#include "crypto/shamir.hpp"
#include "groups/key_manager.hpp"
#include "routing/types.hpp"
#include "trace/contact_trace.hpp"
#include "util/rng.hpp"

namespace odtn::routing {

struct AlarOptions {
  std::size_t segments = 4;   // s: segments the message is divided into
  std::size_t threshold = 4;  // tau: segments dst needs (ALAR: tau = s)
};

struct AlarResult {
  bool delivered = false;
  Time delay = kTimeInfinity;
  /// Total transmissions over all segment epidemics (the flooding price).
  std::size_t transmissions = 0;
  /// Segments the destination had received by the deadline.
  std::size_t segments_at_destination = 0;
  /// First receiver of each segment (kInvalidNode if never handed off).
  std::vector<NodeId> initial_receivers;
  /// kReal mode: destination reconstructed the original payload.
  bool crypto_verified = false;
};

class AlarRouting {
 public:
  explicit AlarRouting(AlarOptions options = {},
                       CryptoMode crypto = CryptoMode::kNone,
                       const groups::KeyManager* keys = nullptr);

  /// Routes one message over the trace. `spec.num_relays`/`spec.copies`
  /// are ignored (ALAR has its own segment parameters). In
  /// CryptoMode::kReal a KeyManager must have been supplied.
  AlarResult route(const trace::ContactTrace& trace, const MessageSpec& spec,
                   util::Rng& rng);

  const AlarOptions& options() const { return options_; }

 private:
  AlarOptions options_;
  CryptoMode crypto_;
  const groups::KeyManager* keys_;
};

}  // namespace odtn::routing
