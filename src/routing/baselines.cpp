#include "routing/baselines.hpp"

#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace odtn::routing {

namespace {

void check_endpoints(const MessageSpec& spec) {
  if (spec.src == spec.dst) throw std::invalid_argument("route: src == dst");
}

}  // namespace

DeliveryResult DirectDelivery::route(sim::ContactModel& contacts,
                                     const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  auto ev = contacts.first_cross_contact(std::span<const NodeId>(&spec.src, 1),
                                         std::span<const NodeId>(&spec.dst, 1),
                                         spec.start, spec.start + spec.ttl);
  if (ev.has_value()) {
    result.delivered = true;
    result.delay = ev->time - spec.start;
    result.transmissions = 1;
  }
  return result;
}

DeliveryResult SprayAndWaitRouting::route(sim::ContactModel& contacts,
                                          const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument("SprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  std::unordered_set<NodeId> holders = {spec.src};
  std::size_t tickets = spec.copies - 1;  // copies the source may spray
  std::vector<NodeId> holder_list;  // scratch, reused across iterations
  std::vector<NodeId> excluded;

  while (true) {
    // Wait phase event: any holder meets dst. Spray phase event: source
    // meets a non-holder (while tickets remain). Take whichever is first.
    holder_list.assign(holders.begin(), holders.end());
    auto deliver = contacts.first_cross_contact(
        holder_list, std::span<const NodeId>(&spec.dst, 1), now, deadline);
    std::optional<sim::CrossContact> spray;
    if (tickets > 0) {
      // Complement plan: anyone who is not dst and not already a holder —
      // built without enumerating all n nodes.
      excluded.assign(holder_list.begin(), holder_list.end());
      excluded.push_back(spec.dst);
      spray = contacts.first_cross_contact_complement(
          std::span<const NodeId>(&spec.src, 1), excluded, now, deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;  // deadline with no delivery

    now = spray->time;
    holders.insert(spray->b);
    --tickets;
    ++result.transmissions;
  }
}

DeliveryResult BinarySprayAndWaitRouting::route(sim::ContactModel& contacts,
                                                const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument(
        "BinarySprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  // holder -> remaining tickets.
  std::unordered_map<NodeId, std::size_t> tickets = {{spec.src, spec.copies}};
  std::vector<NodeId> holder_list;  // scratch, reused across iterations
  std::vector<NodeId> sprayers;
  std::vector<NodeId> excluded;

  while (true) {
    // Delivery event: any holder meets dst.
    holder_list.clear();
    for (const auto& [v, t] : tickets) holder_list.push_back(v);
    auto deliver = contacts.first_cross_contact(
        holder_list, std::span<const NodeId>(&spec.dst, 1), now, deadline);

    // Spray event: a holder with > 1 tickets meets a ticketless node.
    sprayers.clear();
    for (const auto& [v, t] : tickets) {
      if (t > 1) sprayers.push_back(v);
    }
    std::optional<sim::CrossContact> spray;
    if (!sprayers.empty()) {
      // Complement plan: ticketless nodes other than dst, without the O(n)
      // enumeration.
      excluded.assign(holder_list.begin(), holder_list.end());
      excluded.push_back(spec.dst);
      spray = contacts.first_cross_contact_complement(sprayers, excluded, now,
                                                      deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;

    now = spray->time;
    std::size_t& t = tickets[spray->a];
    std::size_t give = t / 2;
    t -= give;
    tickets[spray->b] = give;
    ++result.transmissions;
  }
}

DeliveryResult EpidemicRouting::route(sim::ContactModel& contacts,
                                      const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  std::unordered_set<NodeId> infected = {spec.src};
  std::vector<NodeId> holders;  // scratch, reused across iterations

  while (infected.size() < contacts.node_count()) {
    holders.assign(infected.begin(), infected.end());
    // Complement plan: every still-susceptible node is "not yet infected" —
    // the infected set doubles as the exclusion list.
    auto ev = contacts.first_cross_contact_complement(holders, holders, now,
                                                      deadline);
    if (!ev.has_value()) break;

    now = ev->time;
    infected.insert(ev->b);
    ++result.transmissions;
    if (ev->b == spec.dst && !result.delivered) {
      result.delivered = true;
      result.delay = now - spec.start;
    }
  }
  return result;
}

}  // namespace odtn::routing
