#include "routing/baselines.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace odtn::routing {

namespace {

void check_endpoints(const MessageSpec& spec) {
  if (spec.src == spec.dst) throw std::invalid_argument("route: src == dst");
}

}  // namespace

DeliveryResult DirectDelivery::route(sim::ContactModel& contacts,
                                     const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  auto ev = contacts.first_cross_contact(std::span<const NodeId>(&spec.src, 1),
                                         std::span<const NodeId>(&spec.dst, 1),
                                         spec.start, spec.start + spec.ttl);
  if (ev.has_value()) {
    result.delivered = true;
    result.delay = ev->time - spec.start;
    result.transmissions = 1;
  }
  return result;
}

DeliveryResult SprayAndWaitRouting::route(sim::ContactModel& contacts,
                                          const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument("SprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  // Holders in spray order (source first). A vector, not a hash set: the
  // holder list seeds the contact plan's pair enumeration, and the prefix-sum
  // pick maps RNG draws through that order — hash-iteration order here would
  // tie results to the stdlib's hash/bucket scheme instead of the program.
  // Membership never needs checking: the complement plan below excludes every
  // current holder, so a sprayed node is new by construction.
  std::vector<NodeId> holders = {spec.src};
  std::size_t tickets = spec.copies - 1;  // copies the source may spray
  std::vector<NodeId> excluded;

  while (true) {
    // Wait phase event: any holder meets dst. Spray phase event: source
    // meets a non-holder (while tickets remain). Take whichever is first.
    auto deliver = contacts.first_cross_contact(
        holders, std::span<const NodeId>(&spec.dst, 1), now, deadline);
    std::optional<sim::CrossContact> spray;
    if (tickets > 0) {
      // Complement plan: anyone who is not dst and not already a holder —
      // built without enumerating all n nodes.
      excluded.assign(holders.begin(), holders.end());
      excluded.push_back(spec.dst);
      spray = contacts.first_cross_contact_complement(
          std::span<const NodeId>(&spec.src, 1), excluded, now, deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;  // deadline with no delivery

    now = spray->time;
    holders.push_back(spray->b);
    --tickets;
    ++result.transmissions;
  }
}

DeliveryResult BinarySprayAndWaitRouting::route(sim::ContactModel& contacts,
                                                const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument(
        "BinarySprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  // Holders and their remaining tickets, as parallel vectors in spray order
  // (source first). Not a hash map: the holder and sprayer lists seed the
  // contact plan's pair enumeration, so hash-iteration order would leak the
  // stdlib's bucket scheme into RNG draw mapping. The holder population is
  // bounded by `copies`, so the linear index scan below is trivially cheap.
  std::vector<NodeId> holder_list = {spec.src};
  std::vector<std::size_t> ticket_count = {spec.copies};
  std::vector<NodeId> sprayers;
  std::vector<NodeId> excluded;

  while (true) {
    // Delivery event: any holder meets dst.
    auto deliver = contacts.first_cross_contact(
        holder_list, std::span<const NodeId>(&spec.dst, 1), now, deadline);

    // Spray event: a holder with > 1 tickets meets a ticketless node.
    sprayers.clear();
    for (std::size_t i = 0; i < holder_list.size(); ++i) {
      if (ticket_count[i] > 1) sprayers.push_back(holder_list[i]);
    }
    std::optional<sim::CrossContact> spray;
    if (!sprayers.empty()) {
      // Complement plan: ticketless nodes other than dst, without the O(n)
      // enumeration.
      excluded.assign(holder_list.begin(), holder_list.end());
      excluded.push_back(spec.dst);
      spray = contacts.first_cross_contact_complement(sprayers, excluded, now,
                                                      deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;

    now = spray->time;
    const auto at = static_cast<std::size_t>(
        std::find(holder_list.begin(), holder_list.end(), spray->a) -
        holder_list.begin());
    std::size_t& t = ticket_count[at];
    std::size_t give = t / 2;
    t -= give;
    holder_list.push_back(spray->b);
    ticket_count.push_back(give);
    ++result.transmissions;
  }
}

DeliveryResult EpidemicRouting::route(sim::ContactModel& contacts,
                                      const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  // Infection order is the iteration order fed to the contact plan (see the
  // spray-and-wait note above); a vector keeps it a property of the run, not
  // of the hash table. The complement plan excludes every infected node, so
  // each event's ev->b is new by construction — no membership test needed.
  std::vector<NodeId> infected = {spec.src};

  while (infected.size() < contacts.node_count()) {
    // Complement plan: every still-susceptible node is "not yet infected" —
    // the infected set doubles as the exclusion list.
    auto ev = contacts.first_cross_contact_complement(infected, infected, now,
                                                      deadline);
    if (!ev.has_value()) break;

    now = ev->time;
    infected.push_back(ev->b);
    ++result.transmissions;
    if (ev->b == spec.dst && !result.delivered) {
      result.delivered = true;
      result.delay = now - spec.start;
    }
  }
  return result;
}

}  // namespace odtn::routing
