#include "routing/baselines.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace odtn::routing {

namespace {

void check_endpoints(const MessageSpec& spec) {
  if (spec.src == spec.dst) throw std::invalid_argument("route: src == dst");
}

}  // namespace

DeliveryResult DirectDelivery::route(sim::ContactModel& contacts,
                                     const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  auto ev = contacts.first_contact(spec.src, {spec.dst}, spec.start,
                                   spec.start + spec.ttl);
  if (ev.has_value()) {
    result.delivered = true;
    result.delay = ev->time - spec.start;
    result.transmissions = 1;
  }
  return result;
}

DeliveryResult SprayAndWaitRouting::route(sim::ContactModel& contacts,
                                          const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument("SprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  std::unordered_set<NodeId> holders = {spec.src};
  std::size_t tickets = spec.copies - 1;  // copies the source may spray

  while (true) {
    // Wait phase event: any holder meets dst. Spray phase event: source
    // meets a non-holder (while tickets remain). Take whichever is first.
    std::vector<NodeId> holder_list(holders.begin(), holders.end());
    auto deliver = contacts.first_cross_contact(holder_list, {spec.dst}, now,
                                                deadline);
    std::optional<sim::CrossContact> spray;
    if (tickets > 0) {
      std::vector<NodeId> others;
      for (NodeId v = 0; v < contacts.node_count(); ++v) {
        if (v != spec.dst && holders.count(v) == 0) others.push_back(v);
      }
      spray = contacts.first_contact(spec.src, others, now, deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;  // deadline with no delivery

    now = spray->time;
    holders.insert(spray->b);
    --tickets;
    ++result.transmissions;
  }
}

DeliveryResult BinarySprayAndWaitRouting::route(sim::ContactModel& contacts,
                                                const MessageSpec& spec) {
  check_endpoints(spec);
  if (spec.copies == 0) {
    throw std::invalid_argument(
        "BinarySprayAndWaitRouting: copies must be >= 1");
  }
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  // holder -> remaining tickets.
  std::unordered_map<NodeId, std::size_t> tickets = {{spec.src, spec.copies}};

  while (true) {
    // Delivery event: any holder meets dst.
    std::vector<NodeId> holder_list;
    holder_list.reserve(tickets.size());
    for (const auto& [v, t] : tickets) holder_list.push_back(v);
    auto deliver =
        contacts.first_cross_contact(holder_list, {spec.dst}, now, deadline);

    // Spray event: a holder with > 1 tickets meets a ticketless node.
    std::vector<NodeId> sprayers;
    for (const auto& [v, t] : tickets) {
      if (t > 1) sprayers.push_back(v);
    }
    std::optional<sim::CrossContact> spray;
    if (!sprayers.empty()) {
      std::vector<NodeId> others;
      for (NodeId v = 0; v < contacts.node_count(); ++v) {
        if (v != spec.dst && tickets.count(v) == 0) others.push_back(v);
      }
      spray = contacts.first_cross_contact(sprayers, others, now, deadline);
    }

    if (deliver.has_value() &&
        (!spray.has_value() || deliver->time <= spray->time)) {
      result.delivered = true;
      result.delay = deliver->time - spec.start;
      ++result.transmissions;
      return result;
    }
    if (!spray.has_value()) return result;

    now = spray->time;
    std::size_t& t = tickets[spray->a];
    std::size_t give = t / 2;
    t -= give;
    tickets[spray->b] = give;
    ++result.transmissions;
  }
}

DeliveryResult EpidemicRouting::route(sim::ContactModel& contacts,
                                      const MessageSpec& spec) {
  check_endpoints(spec);
  DeliveryResult result;
  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;

  std::unordered_set<NodeId> infected = {spec.src};

  while (infected.size() < contacts.node_count()) {
    std::vector<NodeId> holders(infected.begin(), infected.end());
    std::vector<NodeId> susceptible;
    for (NodeId v = 0; v < contacts.node_count(); ++v) {
      if (infected.count(v) == 0) susceptible.push_back(v);
    }
    auto ev = contacts.first_cross_contact(holders, susceptible, now, deadline);
    if (!ev.has_value()) break;

    now = ev->time;
    infected.insert(ev->b);
    ++result.transmissions;
    if (ev->b == spec.dst && !result.delivered) {
      result.delivered = true;
      result.delay = now - spec.start;
    }
  }
  return result;
}

}  // namespace odtn::routing
