// Non-anonymous DTN routing baselines.
//
// The paper compares the onion protocols' forwarding cost against plain
// (non-anonymous) DTN routing (Fig. 11), and its related-work section is
// built on these classics — so the library ships them as first-class
// protocols:
//
//  * DirectDelivery — the source holds the message until it meets the
//    destination. 1 transmission; the 2L-cost reference point uses its
//    sprayed variant.
//  * SprayAndWaitRouting — source spray-and-wait [Spyropoulos et al. 2005]:
//    the source sprays L-1 copies to the first distinct nodes it meets and
//    every holder waits for the destination. Cost <= 2L - 1.
//  * EpidemicRouting — flooding [Vahdat & Becker 2000]: every holder copies
//    the message at every contact with a node that lacks it. Maximal
//    delivery rate, maximal cost.
#pragma once

#include "routing/types.hpp"
#include "sim/contact_model.hpp"
#include "util/rng.hpp"

namespace odtn::routing {

class DirectDelivery {
 public:
  /// `spec.num_relays` and `spec.copies` are ignored (K = 0, L = 1).
  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec);
};

class SprayAndWaitRouting {
 public:
  /// Uses `spec.copies` as L; `spec.num_relays` is ignored.
  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec);
};

class EpidemicRouting {
 public:
  /// Floods until delivery or deadline. `transmissions` counts every copy
  /// made (including those after first delivery up to the stop condition:
  /// epidemic keeps spreading until the deadline, but the simulation stops
  /// early once every node is infected).
  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec);
};

/// Binary spray-and-wait [Spyropoulos et al. 2005, the variant shown
/// optimal in their analysis]: a holder with t > 1 tickets hands floor(t/2)
/// to the first ticketless node it meets and keeps the rest; holders with
/// one ticket wait for the destination. Spreads copies exponentially
/// faster than source spray while keeping the same 2L - 1 cost bound.
class BinarySprayAndWaitRouting {
 public:
  /// Uses `spec.copies` as L; `spec.num_relays` is ignored.
  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec);
};

}  // namespace odtn::routing
