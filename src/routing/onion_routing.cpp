#include "routing/onion_routing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "faults/faults.hpp"
#include "recovery/recovery.hpp"

namespace odtn::routing {

namespace {

using circuit::CircuitId;
using circuit::CircuitManager;
using Expect = circuit::CircuitManager::Expect;

// All cryptographic work — onion build, secure-link crossings, layer peels,
// cell framing — lives in circuit::CircuitManager; the protocols below are
// pure forwarding policies deciding *when* and *between whom* the manager's
// wire operations happen.
circuit::CircuitContext circuit_context(const OnionContext& ctx) {
  circuit::CircuitContext cc;
  cc.keys = ctx.keys;
  cc.codec = ctx.codec;
  cc.crypto = (ctx.crypto == CryptoMode::kReal);
  cc.metrics = ctx.metrics;
  cc.wire = ctx.wire_cells;
  cc.cell_size = ctx.cell_size;
  cc.tap = ctx.cell_tap;
  return cc;
}

// Placeholder key for CryptoMode::kNone: the manager returns before touching
// it, and the historical code path never resolved key material either.
const util::Bytes& empty_key() {
  static const util::Bytes k;
  return k;
}

// One copy of the message in flight.
struct Walker {
  NodeId holder;
  /// Number of onion layers peeled so far; hop h < K means the copy still
  /// needs to reach relay group R_{h+1}; h == K means next stop is dst.
  std::size_t hop = 0;
  /// Which retransmission generation's relay groups this copy follows
  /// (0 = the original send). Fixed at spray time.
  std::size_t gen = 0;
  Time arrival = 0.0;        // when the current holder received the copy
  std::vector<NodeId> path;  // relays visited (r_1..)
  CircuitId circ = 0;        // this copy's circuit in the manager
  bool delivered = false;
  bool lost = false;      // copy destroyed by a fault (crash or blackhole)
  Time retry_from = 0.0;  // after a failed transfer, re-query from here

  // Prepared (holder -> current targets) query, rebuilt only when the hop
  // advances or the global seen-set grows (plan_version tracks the
  // latter); fault retries and lose-the-race iterations reuse it as-is.
  sim::ContactQuery plan;
  std::uint64_t plan_version = 0;
  std::size_t plan_hop = static_cast<std::size_t>(-1);
};

// Observability handles shared by both protocols; inert when reg is null.
// (The peel counters moved into CircuitManager with the peels themselves.)
struct RoutingMetrics {
  metrics::CounterHandle forwards;
  metrics::CounterHandle tickets;
  metrics::CounterHandle deliveries;
  metrics::HistogramHandle hop_delay;

  static RoutingMetrics resolve(metrics::Registry* reg) {
    RoutingMetrics rm;
    rm.forwards = metrics::counter(reg, "routing.forwards");
    rm.tickets = metrics::counter(reg, "routing.tickets_spent");
    rm.deliveries = metrics::counter(reg, "routing.deliveries");
    rm.hop_delay = metrics::histogram(reg, "routing.hop_delay");
    return rm;
  }
};

// Fault-event counters, resolved only when a FaultPlan is attached so a
// fault-free run's metrics export carries no faults.* entries.
struct FaultMetrics {
  metrics::CounterHandle suppressed;
  metrics::CounterHandle transfer_failures;
  metrics::CounterHandle lost_to_crash;
  metrics::CounterHandle blackhole_absorbed;
  metrics::CounterHandle source_flushes;

  static FaultMetrics resolve(const OnionContext& ctx) {
    FaultMetrics fm;
    if (ctx.faults == nullptr) return fm;
    metrics::Registry* reg = ctx.metrics;
    fm.suppressed = metrics::counter(reg, "faults.contacts_suppressed");
    fm.transfer_failures = metrics::counter(reg, "faults.transfer_failures");
    fm.lost_to_crash = metrics::counter(reg, "faults.copies_lost_to_crash");
    fm.blackhole_absorbed = metrics::counter(reg, "faults.blackhole_absorbed");
    fm.source_flushes = metrics::counter(reg, "faults.source_flushes");
    return fm;
  }
};

// Smallest representable time strictly after t: after a suppressed or
// failed contact the protocol re-queries from here, so a trace replay
// moves past the consumed event while the (memoryless) Poisson model is
// unaffected.
Time skip_past(Time t) { return std::nextafter(t, kTimeInfinity); }

// The recovery config iff source-side retransmission is configured; null
// keeps the historical zero-recovery code path (no extra RNG draws, no
// recovery.* metrics).
const recovery::RecoveryConfig* retx_config(const OnionContext& ctx) {
  return (ctx.recovery != nullptr && ctx.recovery->retx_timeout > 0.0)
             ? ctx.recovery
             : nullptr;
}

// Length of the next retransmission window: the backed-off base interval,
// desynchronized by +-retx_jitter (one uniform draw iff jitter is on).
Time retx_window(const recovery::RecoveryConfig& rc, double base,
                 util::Rng& rng) {
  double win = base;
  if (rc.retx_jitter > 0.0) {
    win *= 1.0 + rc.retx_jitter * (2.0 * rng.uniform01() - 1.0);
  }
  return win;
}

// Fresh relay groups for a retransmission: suspicion-biased when a tracker
// is attached, plain re-selection otherwise.
std::vector<GroupId> retry_groups_for(const OnionContext& ctx,
                                      const groups::GroupDirectory& dir,
                                      NodeId src, NodeId dst, std::size_t k,
                                      util::Rng& rng) {
  if (ctx.suspicion != nullptr) {
    return recovery::select_relay_groups_avoiding(dir, *ctx.suspicion, src,
                                                  dst, k, rng);
  }
  return dir.select_relay_groups(src, dst, k, rng);
}

}  // namespace

SingleCopyOnionRouting::SingleCopyOnionRouting(const OnionContext& context)
    : ctx_(context) {
  if (ctx_.directory == nullptr || ctx_.keys == nullptr ||
      ctx_.codec == nullptr) {
    throw std::invalid_argument("OnionContext: null component");
  }
}

DeliveryResult SingleCopyOnionRouting::route(
    sim::ContactModel& contacts, const MessageSpec& spec, util::Rng& rng,
    const std::vector<GroupId>* forced_groups) {
  if (spec.copies != 1) {
    throw std::invalid_argument("SingleCopyOnionRouting: copies must be 1");
  }
  if (spec.src == spec.dst) {
    throw std::invalid_argument("route: src == dst");
  }
  const std::size_t k = spec.num_relays;
  const auto& dir = *ctx_.directory;

  DeliveryResult result;
  result.relay_groups = forced_groups != nullptr
                            ? *forced_groups
                            : dir.select_relay_groups(spec.src, spec.dst, k, rng);
  if (result.relay_groups.size() != k) {
    throw std::invalid_argument("route: wrong relay group count");
  }
  result.relays_per_hop.assign(k, {});

  const bool group_mode = spec.destination_group_delivery;
  const GroupId dst_group = group_mode ? dir.group_of(spec.dst) : kInvalidGroup;

  // kReal: one rng draw here (the DRBG-seed position); kNone: none.
  CircuitManager cm(circuit_context(ctx_), rng);
  auto key_for = [&](GroupId g) -> const util::Bytes& {
    return cm.crypto_enabled() ? ctx_.keys->group_key(g) : empty_key();
  };
  CircuitId circ = 0;

  const Time deadline = spec.start + spec.ttl;
  NodeId holder = spec.src;
  Time now = spec.start;
  Time hold_since = spec.start;  // when `holder` received the copy
  Time horizon = deadline;       // current attempt's time budget
  RoutingMetrics rm = RoutingMetrics::resolve(ctx_.metrics);
  faults::FaultPlan* fp = ctx_.faults;
  FaultMetrics fm = FaultMetrics::resolve(ctx_);
  const recovery::RecoveryConfig* rc = retx_config(ctx_);
  metrics::CounterHandle m_retx;
  if (rc != nullptr) {
    m_retx = metrics::counter(ctx_.metrics, "recovery.retransmits");
  }

  // One prepared (holder -> targets) query per hop, reused across fault
  // retries; `targets` is the hop's scratch buffer.
  sim::ContactQuery plan;
  std::vector<NodeId> targets;

  // Finds the holder's next usable contact via the current `plan`: skips
  // contacts with a powered-down endpoint and retries failed transfers at
  // the next contact. Returns nullopt when the attempt's horizon passes or
  // the holder crash-reboots first (its buffered onion state is flushed,
  // not leaked).
  auto next_good_contact = [&](NodeId from,
                               Time after) -> std::optional<sim::CrossContact> {
    for (;;) {
      auto contact = contacts.first_cross_contact(plan, after, horizon);
      if (fp == nullptr || !contact.has_value()) return contact;
      const Time t = contact->time;
      if (fp->crashed_in(from, hold_since, t)) {
        fm.lost_to_crash.inc();
        return std::nullopt;  // copy lost in the crash
      }
      if (!fp->node_up(from, t) || !fp->node_up(contact->b, t)) {
        fm.suppressed.inc();
        after = skip_past(t);
        continue;
      }
      if (fp->transfer_fails(from, contact->b)) {
        fm.transfer_failures.inc();
        after = skip_past(t);
        continue;
      }
      return contact;
    }
  };

  // One end-to-end copy: opens a fresh circuit over `groups` (re-onioning
  // when crypto is on) and walks it from the source starting at `from`,
  // bounded by `horizon`. Returns true iff the destination received the
  // copy; a false return leaves `result` holding the partial path (cost
  // counters always accumulate) and the circuit truncated.
  auto attempt = [&](const std::vector<GroupId>& groups, Time from) -> bool {
    holder = spec.src;
    now = from;
    hold_since = from;
    circ = cm.open(spec.payload, spec.dst, groups, dst_group);

    // Relay phase: hops through R_1..R_K.
    for (std::size_t hop = 0; hop < k; ++hop) {
      targets.clear();
      for (NodeId m : dir.members(groups[hop])) {
        if (m != holder) targets.push_back(m);
      }
      contacts.prepare(plan, std::span<const NodeId>(&holder, 1), targets);
      auto contact = next_good_contact(holder, now);
      if (!contact.has_value()) return false;  // horizon passed: Algorithm 1 FAIL

      NodeId receiver = contact->b;
      rm.hop_delay.observe(contact->time - now);
      now = contact->time;
      ++result.transmissions;
      rm.forwards.inc();

      // Peel at the receiver; the layer must name the hop we expect next.
      // A mismatch taints the circuit but the walk continues (the policy
      // cannot detect the failure — there is no in-band error channel).
      const bool last = (hop + 1 == k);
      const Expect expect = !last ? Expect::relay_to(groups[hop + 1])
                            : group_mode ? Expect::relay_to(dst_group)
                                         : Expect::deliver_to(spec.dst);
      cm.extend(circ, holder, receiver, key_for(groups[hop]), expect);

      result.relay_path.push_back(receiver);
      result.relays_per_hop[hop].push_back(receiver);
      if (fp != nullptr && fp->is_blackhole(receiver)) {
        fm.blackhole_absorbed.inc();
        return false;  // the relay accepts the copy but never forwards it
      }
      holder = receiver;
      hold_since = now;
    }

    // Delivery phase.
    if (!group_mode) {
      contacts.prepare(plan, std::span<const NodeId>(&holder, 1),
                       std::span<const NodeId>(&spec.dst, 1));
      auto contact = next_good_contact(holder, now);
      if (!contact.has_value()) return false;
      rm.hop_delay.observe(contact->time - now);
      now = contact->time;
      ++result.transmissions;
      rm.forwards.inc();
      cm.deliver(circ, holder, spec.dst, spec.payload);
    } else {
      // Destination-group phase: the R_K relay hands the onion to *any*
      // member of the destination's group; the packet then walks the group
      // (skipping members that already held it) until the destination opens
      // the final layer. Relays and carriers learn only the group.
      std::unordered_set<NodeId> visited = {holder};
      bool group_layer_peeled = false;
      while (holder != spec.dst) {
        targets.clear();
        for (NodeId m : dir.members(dst_group)) {
          if (m != holder && visited.count(m) == 0) targets.push_back(m);
        }
        contacts.prepare(plan, std::span<const NodeId>(&holder, 1), targets);
        auto contact = next_good_contact(holder, now);
        if (!contact.has_value()) return false;
        NodeId receiver = contact->b;
        rm.hop_delay.observe(contact->time - now);
        now = contact->time;
        ++result.transmissions;
        rm.forwards.inc();
        if (group_layer_peeled) ++result.intra_group_hops;

        if (!group_layer_peeled) {
          cm.extend(circ, holder, receiver, key_for(dst_group),
                    Expect::deliver_group(dst_group));
        } else {
          cm.send(circ, holder, receiver);
        }
        if (receiver == spec.dst) {
          cm.deliver_local(circ, spec.dst, spec.payload);
        }
        group_layer_peeled = true;
        visited.insert(receiver);
        if (receiver != spec.dst && fp != nullptr &&
            fp->is_blackhole(receiver)) {
          fm.blackhole_absorbed.inc();
          return false;  // absorbed inside the destination group
        }
        holder = receiver;
        hold_since = now;
      }
    }
    return true;
  };

  // Attempt loop. The first attempt uses the original (analysis-shared,
  // never biased) groups; each retransmission re-onions through a fresh
  // selection after the previous attempt's timeout window elapses. The
  // final permitted attempt runs to the message deadline. With recovery
  // off this is exactly one attempt bounded by the deadline.
  double base_interval = rc != nullptr ? rc->retx_timeout : 0.0;
  Time attempt_start = spec.start;
  std::vector<GroupId> retry_groups;
  const std::vector<GroupId>* groups = &result.relay_groups;
  for (std::size_t a = 0;; ++a) {
    const bool final_attempt = rc == nullptr || a == rc->retx_max;
    horizon = final_attempt
                  ? deadline
                  : std::min(deadline, attempt_start +
                                           retx_window(*rc, base_interval, rng));
    if (attempt(*groups, attempt_start)) {
      result.delivered = true;
      result.delay = now - spec.start;
      result.crypto_verified = cm.verified(circ);
      rm.deliveries.inc();
      if (ctx_.suspicion != nullptr && rc != nullptr) {
        for (GroupId g : *groups) ctx_.suspicion->record(g, true);
      }
      break;
    }
    cm.truncate(circ);  // the attempt's copy is gone (timeout or fault)
    if (final_attempt || horizon >= deadline) break;  // out of time budget
    // Timed out: the source assumes the copy is lost (there is no ACK
    // channel in the abstract model), suspects this attempt's groups, and
    // retransmits through a fresh selection.
    if (ctx_.suspicion != nullptr) {
      for (GroupId g : *groups) ctx_.suspicion->record(g, false);
    }
    retry_groups = retry_groups_for(ctx_, dir, spec.src, spec.dst, k, rng);
    groups = &retry_groups;
    result.relay_path.clear();  // only the delivered copy's path is reported
    ++result.retransmissions;
    m_retx.inc();
    attempt_start = horizon;
    base_interval *= rc->retx_backoff;
  }
  result.wire_cells = cm.wire_cells();
  result.wire_bytes = cm.wire_bytes();
  return result;
}

MultiCopyOnionRouting::MultiCopyOnionRouting(const OnionContext& context,
                                             SprayMode mode)
    : ctx_(context), mode_(mode) {
  if (ctx_.directory == nullptr || ctx_.keys == nullptr ||
      ctx_.codec == nullptr) {
    throw std::invalid_argument("OnionContext: null component");
  }
}

DeliveryResult MultiCopyOnionRouting::route(
    sim::ContactModel& contacts, const MessageSpec& spec, util::Rng& rng,
    const std::vector<GroupId>* forced_groups) {
  if (spec.copies == 0) {
    throw std::invalid_argument("MultiCopyOnionRouting: copies must be >= 1");
  }
  if (spec.destination_group_delivery) {
    throw std::invalid_argument(
        "MultiCopyOnionRouting: destination-group delivery is single-copy "
        "only");
  }
  if (spec.src == spec.dst) {
    throw std::invalid_argument("route: src == dst");
  }
  const std::size_t k = spec.num_relays;
  const std::size_t l = spec.copies;
  const auto& dir = *ctx_.directory;

  DeliveryResult result;
  result.relay_groups = forced_groups != nullptr
                            ? *forced_groups
                            : dir.select_relay_groups(spec.src, spec.dst, k, rng);
  result.relays_per_hop.assign(k, {});

  // kReal: one rng draw here (the DRBG-seed position); kNone: none.
  CircuitManager cm(circuit_context(ctx_), rng);
  auto key_for = [&](GroupId g) -> const util::Bytes& {
    return cm.crypto_enabled() ? ctx_.keys->group_key(g) : empty_key();
  };

  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;
  RoutingMetrics rm = RoutingMetrics::resolve(ctx_.metrics);
  faults::FaultPlan* fp = ctx_.faults;
  FaultMetrics fm = FaultMetrics::resolve(ctx_);
  Time source_retry_from = spec.start;
  Time source_since = spec.start;  // crash window start for the source

  // Retransmission generations: gens[g] are the relay groups generation g
  // follows, gen_circuits[g] the template circuit holding its built onion
  // (sprayed copies are clones of it). Generation 0 is the original
  // (analysis-shared, never biased) selection; the source sprays the
  // newest generation, and copies of old generations keep racing.
  const recovery::RecoveryConfig* rc = retx_config(ctx_);
  metrics::CounterHandle m_retx;
  std::vector<std::vector<GroupId>> gens = {result.relay_groups};
  std::vector<CircuitId> gen_circuits = {
      cm.open(spec.payload, spec.dst, gens[0])};
  std::size_t cur_gen = 0;
  double base_interval = 0.0;
  Time next_retx = kTimeInfinity;
  if (rc != nullptr) {
    m_retx = metrics::counter(ctx_.metrics, "recovery.retransmits");
    base_interval = rc->retx_timeout;
    next_retx = spec.start + retx_window(*rc, base_interval, rng);
  }

  // Nodes that have ever held (or been handed) the message; Forward() in
  // Algorithm 2 declines peers that already have m. `seen_version` bumps
  // on every insertion so cached query plans know when to rebuild.
  std::unordered_set<NodeId> seen = {spec.src};
  std::uint64_t seen_version = 1;

  // Source's remaining spray tickets (copies it may still hand out).
  // In kSprayAndWait the source retains one copy for itself and sprays the
  // other l-1 to arbitrary nodes; in kDirectToFirstGroup all l tickets go
  // to members of R_1.
  std::size_t source_tickets = (mode_ == SprayMode::kSprayAndWait) ? l - 1 : l;
  bool source_active = source_tickets > 0;

  std::vector<Walker> walkers;
  if (mode_ == SprayMode::kSprayAndWait) {
    // The source's own copy behaves like a carrier waiting for R_1.
    Walker w;
    w.holder = spec.src;
    w.hop = 0;
    w.arrival = spec.start;
    w.circ = cm.clone(gen_circuits[0]);
    walkers.push_back(std::move(w));
  }

  std::vector<NodeId> targets;  // scratch for plan (re)builds

  // Refreshes a walker's prepared query if its hop advanced or the seen
  // set grew since the plan was built; otherwise keeps the plan (and its
  // buffers) untouched. Targets: the walker's next relay group minus
  // nodes that already have m, or dst once all layers are peeled.
  auto ensure_walker_plan = [&](Walker& w) {
    if (w.plan_version == seen_version && w.plan_hop == w.hop) return;
    targets.clear();
    if (w.hop < k) {
      for (NodeId m : dir.members(gens[w.gen][w.hop])) {
        if (m != w.holder && seen.count(m) == 0) targets.push_back(m);
      }
    } else if (seen.count(spec.dst) == 0) {
      // Forward() declines peers that already have m — once one copy has
      // been delivered, dst is in `seen` and later copies are not re-sent.
      targets.push_back(spec.dst);
    }
    contacts.prepare(w.plan, std::span<const NodeId>(&w.holder, 1), targets);
    w.plan_version = seen_version;
    w.plan_hop = w.hop;
  };

  // The source sprayer's prepared query, rebuilt only when `seen` grows or
  // a retransmission starts a new generation (whose R_1 differs).
  sim::ContactQuery spray_plan;
  std::uint64_t spray_plan_version = 0;
  std::size_t spray_plan_gen = 0;
  std::vector<NodeId> excluded;  // scratch for complement plans
  auto ensure_spray_plan = [&] {
    if (spray_plan_version == seen_version && spray_plan_gen == cur_gen) return;
    if (mode_ == SprayMode::kDirectToFirstGroup) {
      targets.clear();
      for (NodeId m : dir.members(gens[cur_gen][0])) {
        if (seen.count(m) == 0) targets.push_back(m);
      }
      contacts.prepare(spray_plan, std::span<const NodeId>(&spec.src, 1),
                       targets);
    } else {
      // Spray to anyone new: a complement plan ("everyone except dst and
      // the seen set") instead of enumerating all n nodes — on sparse
      // backends this costs O(degree(src)), not O(n).
      // odtn-lint: allow(unordered-iter) — the excluded list is a pure
      // membership filter: prepare_complement stamps it into a bitmap and
      // enumerates candidates in ascending node-id order, so the order the
      // exclusions arrive in never reaches the plan (pair order, prefix
      // sums, or RNG draw mapping).
      excluded.assign(seen.begin(), seen.end());
      excluded.push_back(spec.dst);
      contacts.prepare_complement(
          spray_plan, std::span<const NodeId>(&spec.src, 1), excluded);
    }
    spray_plan_version = seen_version;
    spray_plan_gen = cur_gen;
  };

  while (true) {
    // Find the earliest pending event across the source sprayer and all
    // live walkers. Re-querying from `now` each iteration is exact for the
    // Poisson model (memorylessness) and a plain re-scan for traces.
    struct Pending {
      Time time;
      int agent;  // -1 = source sprayer, otherwise walker index
      NodeId receiver;
    };
    std::optional<Pending> best;

    if (source_active) {
      ensure_spray_plan();
      auto ev = contacts.first_cross_contact(
          spray_plan, std::max(now, source_retry_from), deadline);
      if (ev.has_value()) best = Pending{ev->time, -1, ev->b};
    }
    for (std::size_t i = 0; i < walkers.size(); ++i) {
      if (walkers[i].delivered || walkers[i].lost) continue;
      ensure_walker_plan(walkers[i]);
      auto ev = contacts.first_cross_contact(
          walkers[i].plan, std::max(now, walkers[i].retry_from), deadline);
      if (ev.has_value() && (!best || ev->time < best->time)) {
        best = Pending{ev->time, static_cast<int>(i), ev->b};
      }
    }
    // A pending retransmission fires if it comes due before the earliest
    // contact (or if every copy is stuck): the source assumes the message
    // is lost, suspects the current generation's groups, and sprays a new
    // generation through a fresh (bias-aware) selection. Old-generation
    // copies keep racing.
    if (rc != nullptr && !result.delivered &&
        result.retransmissions < rc->retx_max && next_retx < deadline &&
        (!best.has_value() || next_retx <= best->time)) {
      now = std::max(now, next_retx);
      if (ctx_.suspicion != nullptr) {
        for (GroupId g : gens[cur_gen]) ctx_.suspicion->record(g, false);
      }
      gens.push_back(retry_groups_for(ctx_, dir, spec.src, spec.dst, k, rng));
      cur_gen = gens.size() - 1;
      gen_circuits.push_back(cm.open(spec.payload, spec.dst, gens[cur_gen]));
      source_tickets = (mode_ == SprayMode::kSprayAndWait) ? l - 1 : l;
      source_active = source_tickets > 0;
      source_since = now;  // a reboot regenerates the message at the app layer
      if (mode_ == SprayMode::kSprayAndWait) {
        Walker w;
        w.holder = spec.src;
        w.hop = 0;
        w.gen = cur_gen;
        w.arrival = now;
        w.circ = cm.clone(gen_circuits[cur_gen]);
        walkers.push_back(std::move(w));
      }
      ++result.retransmissions;
      m_retx.inc();
      base_interval *= rc->retx_backoff;
      next_retx = now + retx_window(*rc, base_interval, rng);
      continue;
    }
    if (!best.has_value()) break;  // every copy is stuck until the deadline
    now = best->time;

    if (best->agent == -1) {
      if (fp != nullptr) {
        if (fp->crashed_in(spec.src, source_since, now)) {
          // The source crash-rebooted: its remaining spray tickets (copies
          // it had yet to hand out) were flushed with its buffer. A later
          // retransmission re-arms the source from the reboot onward.
          fm.source_flushes.inc();
          source_tickets = 0;
          source_active = false;
          source_since = now;
          continue;
        }
        if (!fp->node_up(spec.src, now) || !fp->node_up(best->receiver, now)) {
          fm.suppressed.inc();
          source_retry_from = skip_past(now);
          continue;
        }
        if (fp->transfer_fails(spec.src, best->receiver)) {
          // Failed handoff: the spray ticket is NOT consumed; the source
          // retries at its next contact.
          fm.transfer_failures.inc();
          source_retry_from = skip_past(now);
          continue;
        }
      }
      // Source hands out one copy.
      ++result.transmissions;
      rm.forwards.inc();
      rm.tickets.inc();
      seen.insert(best->receiver);
      ++seen_version;
      --source_tickets;
      if (source_tickets == 0) source_active = false;

      Walker w;
      w.holder = best->receiver;
      w.gen = cur_gen;
      w.arrival = now;
      w.circ = cm.clone(gen_circuits[cur_gen]);
      if (mode_ == SprayMode::kDirectToFirstGroup) {
        // Receiver is a member of R_1 and peels layer 1 immediately. A
        // sprayed copy's peer cannot predict the layer type it holds, so
        // any layer that opens is accepted (Expect::any, as the legacy
        // protocol checked only that the peel succeeded).
        cm.extend(w.circ, spec.src, best->receiver,
                  key_for(gens[cur_gen][0]), Expect::any());
        w.hop = 1;
        w.path.push_back(best->receiver);
        result.relays_per_hop[0].push_back(best->receiver);
      } else {
        // Receiver is a plain carrier; it cannot peel anything.
        cm.send(w.circ, spec.src, best->receiver);
        w.hop = 0;
      }
      if (fp != nullptr && fp->is_blackhole(best->receiver)) {
        // The receiver banks the copy forever: the ticket is spent and the
        // peer counts as holding m, but no live walker results.
        fm.blackhole_absorbed.inc();
        cm.truncate(w.circ);
        w.lost = true;
      }
      walkers.push_back(std::move(w));
      continue;
    }

    // A walker forwards its copy.
    Walker& w = walkers[static_cast<std::size_t>(best->agent)];
    NodeId receiver = best->receiver;
    if (fp != nullptr) {
      if (fp->crashed_in(w.holder, w.arrival, now)) {
        fm.lost_to_crash.inc();
        cm.truncate(w.circ);
        w.lost = true;  // the holder's buffered copy died in the crash
        continue;
      }
      if (!fp->node_up(w.holder, now) || !fp->node_up(receiver, now)) {
        fm.suppressed.inc();
        w.retry_from = skip_past(now);
        continue;
      }
      if (fp->transfer_fails(w.holder, receiver)) {
        fm.transfer_failures.inc();
        w.retry_from = skip_past(now);
        continue;
      }
    }
    ++result.transmissions;
    rm.forwards.inc();
    rm.hop_delay.observe(now - w.arrival);
    seen.insert(receiver);
    ++seen_version;

    if (w.hop < k) {
      cm.extend(w.circ, w.holder, receiver, key_for(gens[w.gen][w.hop]),
                Expect::any());
      w.path.push_back(receiver);
      result.relays_per_hop[w.hop].push_back(receiver);
      w.holder = receiver;
      w.arrival = now;
      ++w.hop;
      if (fp != nullptr && fp->is_blackhole(receiver)) {
        fm.blackhole_absorbed.inc();
        cm.truncate(w.circ);
        w.lost = true;  // relay accepts the copy but never forwards it
      }
    } else {
      // Delivered to dst.
      cm.deliver(w.circ, w.holder, spec.dst, spec.payload);
      w.delivered = true;
      rm.deliveries.inc();
      if (!result.delivered) {
        result.delivered = true;
        result.delay = now - spec.start;
        result.relay_path = w.path;
        result.crypto_verified = cm.verified(w.circ);
        if (ctx_.suspicion != nullptr && rc != nullptr) {
          // The delivering generation's groups are exonerated.
          for (GroupId g : gens[w.gen]) ctx_.suspicion->record(g, true);
        }
      }
    }
  }

  result.wire_cells = cm.wire_cells();
  result.wire_bytes = cm.wire_bytes();
  return result;
}

}  // namespace odtn::routing
