// Onion-based anonymous routing for DTNs: the paper's abstract protocols.
//
// SingleCopyOnionRouting implements Algorithm 1 (ARDEN-like): exactly one
// copy hops through K randomly-chosen relay onion groups; at each contact,
// the holder forwards iff the peer belongs to the next group.
//
// MultiCopyOnionRouting implements Algorithm 2: up to L copies, managed
// with spray-and-wait-style tickets. Two spray strategies are provided:
//   * kDirectToFirstGroup — Algorithm 2 read literally: the source hands
//     every copy directly to (distinct) members of R_1.
//   * kSprayAndWait — the simulation section's "source spray-and-wait"
//     augmentation: the source sprays L-1 copies to the first nodes it
//     meets (any node); each sprayed holder then waits for a member of R_1.
//     This matches the cost bound 1 + 2(L-1) + KL <= (K+2)L of Sec. IV-C.
// After the first hop both modes behave identically (each holder has one
// ticket).
#pragma once

#include "circuit/circuit_manager.hpp"
#include "crypto/drbg.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "metrics/metrics.hpp"
#include "onion/onion.hpp"
#include "routing/types.hpp"
#include "sim/contact_model.hpp"
#include "util/rng.hpp"

namespace odtn::faults {
class FaultPlan;
}
namespace odtn::recovery {
struct RecoveryConfig;
class SuspicionTracker;
}

namespace odtn::routing {

/// Context shared by the onion protocols: group membership, keys, codec.
/// All references must outlive the protocol objects.
struct OnionContext {
  const groups::GroupDirectory* directory;
  const groups::KeyManager* keys;
  const onion::OnionCodec* codec;
  CryptoMode crypto = CryptoMode::kNone;
  /// Observability sink (see odtn::metrics). When non-null the protocols
  /// record "routing.*" counters (forwards, peels, peel failures, spray
  /// tickets, deliveries) and the "routing.hop_delay" histogram. Values are
  /// simulated time, so they survive the deterministic fold. Null = off.
  metrics::Registry* metrics = nullptr;
  /// Fault model (see odtn::faults), typically one plan per experiment
  /// run. The protocols react robustly: a failed mid-contact transfer
  /// consumes no spray ticket and is retried at the next contact, a
  /// contact with a powered-down peer is skipped, a crash-reboot of the
  /// current holder loses the copy (onion state is flushed, not leaked),
  /// and a blackhole relay absorbs the copy. Null = fault-free; the
  /// protocols then perform no fault branches or RNG draws, keeping
  /// results byte-identical to a build without the fault layer.
  faults::FaultPlan* faults = nullptr;
  /// End-to-end reliability (see odtn::recovery). With retx_timeout > 0
  /// the source retransmits an undelivered message after a (backed-off,
  /// jittered) timeout, re-onioning it through freshly sampled relay
  /// groups. Single-copy: each retransmission supersedes the outstanding
  /// copy (the walk restarts — the abstract model has no ACK channel, so
  /// the source assumes the copy is lost at timeout). Multi-copy: each
  /// retransmission sprays a new generation of copies that races the old
  /// ones. The first relay-group selection is never biased (it is shared
  /// with the fault-blind analysis); only retry selections consult the
  /// suspicion tracker. Null or disabled = the protocols draw no recovery
  /// RNG and behave byte-identically to a build without the layer.
  const recovery::RecoveryConfig* recovery = nullptr;
  /// Suspicion state biasing retry relay-group selection; typically shared
  /// across a run's messages so later flows avoid groups earlier flows
  /// timed out on. Null = unbiased retries even when recovery is on.
  recovery::SuspicionTracker* suspicion = nullptr;
  /// Wire-accurate mode (see src/circuit): every contact crossing is
  /// fragmented into fixed-size AEAD cells, accounted in
  /// DeliveryResult::wire_cells/wire_bytes and observable through
  /// `cell_tap`. Requires CryptoMode::kReal; off = the historical
  /// one-blob secure link, byte-identical to builds without the layer.
  bool wire_cells = false;
  std::size_t cell_size = circuit::kDefaultCellSize;
  circuit::CellTap cell_tap{};
};

class SingleCopyOnionRouting {
 public:
  explicit SingleCopyOnionRouting(const OnionContext& context);

  /// Routes one message. `spec.copies` must be 1. If `forced_groups` is
  /// non-null it overrides random relay-group selection (used by tests and
  /// by the analysis-vs-simulation benches, which must evaluate both on the
  /// same group realization).
  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec,
                       util::Rng& rng,
                       const std::vector<GroupId>* forced_groups = nullptr);

 private:
  OnionContext ctx_;
};

enum class SprayMode {
  kDirectToFirstGroup,
  kSprayAndWait,
};

class MultiCopyOnionRouting {
 public:
  MultiCopyOnionRouting(const OnionContext& context,
                        SprayMode mode = SprayMode::kSprayAndWait);

  DeliveryResult route(sim::ContactModel& contacts, const MessageSpec& spec,
                       util::Rng& rng,
                       const std::vector<GroupId>* forced_groups = nullptr);

 private:
  OnionContext ctx_;
  SprayMode mode_;
};

}  // namespace odtn::routing
