#include "routing/prophet.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace odtn::routing {

PredictabilityTable::PredictabilityTable(std::size_t n,
                                         const ProphetOptions& options)
    : n_(n), options_(options) {
  if (n < 2) throw std::invalid_argument("PredictabilityTable: n < 2");
  if (!(options_.p_init > 0.0) || options_.p_init > 1.0 ||
      options_.beta < 0.0 || options_.beta > 1.0 ||
      !(options_.gamma > 0.0) || options_.gamma > 1.0 ||
      !(options_.aging_unit > 0.0)) {
    throw std::invalid_argument("PredictabilityTable: bad options");
  }
  p_.assign(n * n, 0.0);
  last_update_.assign(n, 0.0);
}

double PredictabilityTable::get(NodeId a, NodeId b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("PredictabilityTable::get");
  return p_[a * n_ + b];
}

void PredictabilityTable::age_row(NodeId a, Time now) {
  double elapsed = now - last_update_[a];
  if (elapsed <= 0.0) return;
  double factor = std::pow(options_.gamma, elapsed / options_.aging_unit);
  for (std::size_t b = 0; b < n_; ++b) p_[a * n_ + b] *= factor;
  last_update_[a] = now;
}

void PredictabilityTable::on_contact(NodeId a, NodeId b, Time now) {
  if (a >= n_ || b >= n_ || a == b) {
    throw std::invalid_argument("PredictabilityTable::on_contact");
  }
  age_row(a, now);
  age_row(b, now);

  // Direct reinforcement (symmetric encounters).
  p_[a * n_ + b] += (1.0 - p_[a * n_ + b]) * options_.p_init;
  p_[b * n_ + a] += (1.0 - p_[b * n_ + a]) * options_.p_init;

  // Transitivity: each side learns from the other's table.
  for (std::size_t c = 0; c < n_; ++c) {
    if (c == a || c == b) continue;
    double via_b = p_[a * n_ + b] * p_[b * n_ + c] * options_.beta;
    p_[a * n_ + c] += (1.0 - p_[a * n_ + c]) * via_b;
    double via_a = p_[b * n_ + a] * p_[a * n_ + c] * options_.beta;
    p_[b * n_ + c] += (1.0 - p_[b * n_ + c]) * via_a;
  }
}

ProphetRouting::ProphetRouting(ProphetOptions options)
    : options_(options) {
  // Validate via the table's constructor rules.
  PredictabilityTable probe(2, options_);
}

ProphetResult ProphetRouting::route(const trace::ContactTrace& trace,
                                    const MessageSpec& spec) {
  if (spec.src == spec.dst) {
    throw std::invalid_argument("route: src == dst");
  }
  if (spec.src >= trace.node_count() || spec.dst >= trace.node_count()) {
    throw std::invalid_argument("route: unknown endpoint");
  }

  const Time deadline = spec.start + spec.ttl;
  PredictabilityTable table(trace.node_count(), options_);
  std::unordered_set<NodeId> holders = {spec.src};

  ProphetResult result;
  for (const auto& event : trace.events()) {
    if (event.time >= deadline) break;
    // Predictabilities learn from the whole trace prefix, including events
    // before the message exists.
    table.on_contact(event.a, event.b, event.time);
    if (event.time < spec.start) continue;
    // Delivered: the table would keep training, but nothing reads it again
    // and the holder set is frozen, so stop replaying the trace.
    if (result.delivered) break;

    for (auto [u, v] : {std::pair<NodeId, NodeId>{event.a, event.b},
                        std::pair<NodeId, NodeId>{event.b, event.a}}) {
      if (holders.count(u) == 0 || holders.count(v) > 0) continue;
      if (v == spec.dst) {
        holders.insert(v);
        ++result.transmissions;
        result.delivered = true;
        result.delay = event.time - spec.start;
        break;
      }
      // Forwarding rule: copy to peers with strictly better
      // predictability toward the destination.
      if (table.get(v, spec.dst) > table.get(u, spec.dst)) {
        holders.insert(v);
        ++result.transmissions;
      }
    }
  }
  result.carriers = holders.size();
  return result;
}

}  // namespace odtn::routing
