// PRoPHET — Probabilistic Routing Protocol using History of Encounters and
// Transitivity (Lindgren, Doria, Schelen, 2003).
//
// The paper's related work (Sec. VI-A) observes that "the use of past
// contact history significantly improves the delivery rate for a given
// forwarding cost". PRoPHET is the canonical instance of that family and
// serves here as the history-based, non-anonymous baseline: each node
// maintains delivery predictabilities P(a, b) updated on encounters
// (direct reinforcement), decayed over time (aging), and propagated
// through relays (transitivity). A holder forwards a copy to a peer whose
// predictability toward the destination exceeds its own.
//
// Trace-driven: predictabilities must be learned from the same contact
// sequence the message rides, so routing consumes an explicit
// ContactTrace (for random graphs, use trace::sample_poisson_trace).
#pragma once

#include <vector>

#include "routing/types.hpp"
#include "trace/contact_trace.hpp"

namespace odtn::routing {

struct ProphetOptions {
  double p_init = 0.75;   // direct-encounter reinforcement
  double beta = 0.25;     // transitivity weight
  double gamma = 0.98;    // aging factor per time unit
  double aging_unit = 60.0;  // seconds (or sim units) per aging step
  /// Contact history before `spec.start` used to warm predictabilities up.
  /// 0 = learn only from pre-start events that exist in the trace anyway.
  double warmup = 0.0;  // reserved; the full trace prefix is always used
};

/// Per-message outcome plus protocol-wide cost.
struct ProphetResult {
  bool delivered = false;
  Time delay = kTimeInfinity;
  std::size_t transmissions = 0;
  /// Nodes that ever carried a copy (forwarding tree size).
  std::size_t carriers = 0;
};

class ProphetRouting {
 public:
  explicit ProphetRouting(ProphetOptions options = {});

  ProphetResult route(const trace::ContactTrace& trace,
                      const MessageSpec& spec);

  const ProphetOptions& options() const { return options_; }

 private:
  ProphetOptions options_;
};

/// The predictability table, exposed as its own class so the update rules
/// are unit-testable in isolation.
class PredictabilityTable {
 public:
  PredictabilityTable(std::size_t n, const ProphetOptions& options);

  double get(NodeId a, NodeId b) const;

  /// Applies aging to every entry of `a`'s row up to `now`, then the
  /// direct-encounter update for (a, b) and (b, a), then transitivity
  /// through both endpoints.
  void on_contact(NodeId a, NodeId b, Time now);

 private:
  void age_row(NodeId a, Time now);

  std::size_t n_;
  ProphetOptions options_;
  std::vector<double> p_;          // row-major n*n
  std::vector<Time> last_update_;  // per row
};

}  // namespace odtn::routing
