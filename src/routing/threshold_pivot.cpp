#include "routing/threshold_pivot.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "crypto/aead.hpp"

namespace odtn::routing {

namespace {

// A share in flight: src -> relay (one onion-group hop) -> pivot.
struct ShareWalker {
  std::size_t index;
  GroupId relay_group;
  NodeId holder;
  bool at_relay = false;   // has completed the src -> relay hop
  bool at_pivot = false;
  NodeId relay = kInvalidNode;
};

}  // namespace

ThresholdPivotRouting::ThresholdPivotRouting(
    const groups::GroupDirectory& directory, const groups::KeyManager& keys,
    TpsOptions options, CryptoMode crypto)
    : directory_(&directory),
      keys_(&keys),
      options_(options),
      crypto_(crypto) {
  if (options_.threshold == 0 || options_.threshold > options_.share_count) {
    throw std::invalid_argument("ThresholdPivotRouting: bad threshold");
  }
  if (options_.share_count > 255) {
    throw std::invalid_argument("ThresholdPivotRouting: too many shares");
  }
}

TpsResult ThresholdPivotRouting::route(sim::ContactModel& contacts,
                                       const MessageSpec& spec,
                                       util::Rng& rng) {
  if (spec.src == spec.dst) {
    throw std::invalid_argument("route: src == dst");
  }
  const std::size_t n = contacts.node_count();
  if (n < 3) throw std::invalid_argument("TPS: need at least 3 nodes");

  TpsResult result;
  result.share_relays.assign(options_.share_count, kInvalidNode);

  // Pick a pivot distinct from both endpoints.
  NodeId pivot = static_cast<NodeId>(rng.below(n));
  while (pivot == spec.src || pivot == spec.dst) {
    pivot = static_cast<NodeId>(rng.below(n));
  }
  result.pivot = pivot;

  // Each share gets its own random relay group (sampled independently; TPS
  // does not require distinct groups across shares).
  std::vector<ShareWalker> shares(options_.share_count);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    shares[i].index = i;
    auto groups = directory_->select_relay_groups(spec.src, spec.dst, 1, rng);
    shares[i].relay_group = groups[0];
    shares[i].holder = spec.src;
  }

  // Real crypto: split the payload, seal each share for the pivot.
  crypto::Drbg drbg(rng.next());
  std::vector<crypto::Share> crypto_shares;
  std::vector<util::Bytes> sealed_shares(options_.share_count);
  if (crypto_ == CryptoMode::kReal) {
    crypto_shares = crypto::shamir_split(spec.payload, options_.threshold,
                                         options_.share_count, drbg);
    for (std::size_t i = 0; i < crypto_shares.size(); ++i) {
      util::Bytes plain;
      plain.push_back(crypto_shares[i].x);
      util::append(plain, crypto_shares[i].data);
      util::Bytes nonce = drbg.generate_nonce();
      util::Bytes sealed = nonce;
      util::append(sealed, crypto::aead_seal(keys_->inbox_key(pivot), nonce,
                                             {}, plain));
      sealed_shares[i] = std::move(sealed);
    }
  }

  const Time deadline = spec.start + spec.ttl;
  Time now = spec.start;
  std::size_t arrived = 0;
  Time pivot_ready_at = kTimeInfinity;

  // Phase 1+2 interleaved: every share progresses independently.
  std::vector<NodeId> targets;  // scratch, reused across polls
  while (true) {
    struct Pending {
      Time time;
      std::size_t share;
      NodeId receiver;
    };
    std::optional<Pending> best;
    for (auto& s : shares) {
      if (s.at_pivot) continue;
      targets.clear();
      if (!s.at_relay) {
        for (NodeId m : directory_->members(s.relay_group)) {
          if (m != s.holder && m != pivot) targets.push_back(m);
        }
      } else {
        targets.push_back(pivot);
      }
      auto ev = contacts.first_cross_contact(
          std::span<const NodeId>(&s.holder, 1), targets, now, deadline);
      if (ev.has_value() && (!best || ev->time < best->time)) {
        best = Pending{ev->time, s.index, ev->b};
      }
    }
    if (!best.has_value()) break;

    now = best->time;
    auto& s = shares[best->share];
    ++result.transmissions;
    if (!s.at_relay) {
      s.at_relay = true;
      s.relay = best->receiver;
      s.holder = best->receiver;
      result.share_relays[s.index] = best->receiver;
    } else {
      s.at_pivot = true;
      ++arrived;
      if (arrived == options_.threshold) {
        pivot_ready_at = now;
        break;  // pivot can reconstruct; remaining shares are irrelevant
      }
    }
  }
  result.shares_at_pivot = arrived;
  if (arrived < options_.threshold) return result;

  // Pivot-side reconstruction (kReal).
  util::Bytes reconstructed;
  bool crypto_ok = true;
  if (crypto_ == CryptoMode::kReal) {
    std::vector<crypto::Share> received;
    for (const auto& s : shares) {
      if (!s.at_pivot) continue;
      const util::Bytes& sealed = sealed_shares[s.index];
      util::Bytes nonce(sealed.begin(), sealed.begin() + 12);
      util::Bytes body(sealed.begin() + 12, sealed.end());
      auto plain = crypto::aead_open(keys_->inbox_key(pivot), nonce, {}, body);
      if (!plain.has_value() || plain->empty()) {
        crypto_ok = false;
        continue;
      }
      crypto::Share share;
      share.x = (*plain)[0];
      share.data.assign(plain->begin() + 1, plain->end());
      received.push_back(std::move(share));
    }
    if (received.size() >= options_.threshold) {
      reconstructed = crypto::shamir_reconstruct(received, options_.threshold);
      crypto_ok = crypto_ok && reconstructed == spec.payload;
    } else {
      crypto_ok = false;
    }
  }

  // Phase 3: pivot -> dst. (This is the step that reveals the destination
  // to the pivot — TPS's known anonymity concession.)
  auto ev = contacts.first_cross_contact(std::span<const NodeId>(&pivot, 1),
                                         std::span<const NodeId>(&spec.dst, 1),
                                         pivot_ready_at, deadline);
  if (!ev.has_value()) return result;
  ++result.transmissions;
  result.delivered = true;
  result.delay = ev->time - spec.start;
  result.crypto_verified = (crypto_ == CryptoMode::kReal) && crypto_ok;
  return result;
}

}  // namespace odtn::routing
