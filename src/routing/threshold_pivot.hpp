// Threshold Pivot Scheme (TPS) — Jansen & Beverly, MILCOM 2011.
//
// The alternative anonymous DTN routing the paper discusses in Sec. VI-C:
// instead of nesting K onion layers (long sequential paths), the source
// splits the message into `share_count` Shamir shares with threshold
// `threshold`; each share travels through ONE onion-group relay to a
// common pivot node. The pivot reconstructs once `threshold` shares have
// arrived and forwards the message to the destination.
//
// Trade-off vs onion routing (exercised by bench/ablation_tps_vs_onion):
// shares travel in parallel, so delay resembles a 2-hop path instead of a
// (K+1)-hop path — but the destination's identity is revealed to the
// pivot, which onion routing never does.
#pragma once

#include "crypto/drbg.hpp"
#include "crypto/shamir.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "routing/types.hpp"
#include "sim/contact_model.hpp"
#include "util/rng.hpp"

namespace odtn::routing {

struct TpsOptions {
  std::size_t share_count = 5;  // s: shares created by the source
  std::size_t threshold = 3;    // tau: shares the pivot needs
};

struct TpsResult {
  bool delivered = false;
  Time delay = kTimeInfinity;
  std::size_t transmissions = 0;
  /// Shares that reached the pivot within the deadline.
  std::size_t shares_at_pivot = 0;
  NodeId pivot = kInvalidNode;
  /// The relay each share passed through (kInvalidNode if it never left
  /// the source); indices follow share order.
  std::vector<NodeId> share_relays;
  /// kReal mode: the pivot reconstructed the payload and the destination
  /// received it intact.
  bool crypto_verified = false;
};

class ThresholdPivotRouting {
 public:
  ThresholdPivotRouting(const groups::GroupDirectory& directory,
                        const groups::KeyManager& keys,
                        TpsOptions options = {},
                        CryptoMode crypto = CryptoMode::kNone);

  /// Routes one message. `spec.num_relays` and `spec.copies` are ignored
  /// (TPS has its own share parameters).
  TpsResult route(sim::ContactModel& contacts, const MessageSpec& spec,
                  util::Rng& rng);

  const TpsOptions& options() const { return options_; }

 private:
  const groups::GroupDirectory* directory_;
  const groups::KeyManager* keys_;
  TpsOptions options_;
  CryptoMode crypto_;
};

}  // namespace odtn::routing
