// Shared routing types: message specification and delivery outcome.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace odtn::routing {

/// Whether protocol runs carry real layered onions (X25519 secure links,
/// ChaCha20-Poly1305 layers) or only simulate the forwarding decisions.
/// Metrics are identical in both modes — the paper's performance/security
/// measures depend on forwarding dynamics, not on the cipher — so the
/// figure benches default to kNone while correctness tests use kReal.
enum class CryptoMode {
  kNone,
  kReal,
};

struct MessageSpec {
  NodeId src = 0;
  NodeId dst = 1;
  /// Time at which the source starts trying to forward.
  Time start = 0.0;
  /// Message deadline T, relative to `start` (Table I).
  Time ttl = 1800.0;
  /// Number of relay onion groups K the message travels through.
  std::size_t num_relays = 3;
  /// Number of copies L (1 = single-copy forwarding).
  std::size_t copies = 1;
  /// ARDEN's destination-anonymity option ("the last hop forms an onion
  /// group"): the final relay learns only the destination's group; the
  /// message then circulates inside that group until the destination opens
  /// it. Single-copy forwarding only.
  bool destination_group_delivery = false;
  /// Application payload (used in CryptoMode::kReal).
  util::Bytes payload;
};

struct DeliveryResult {
  bool delivered = false;
  /// Delay of the first delivered copy (relative to start); meaningful only
  /// when delivered.
  Time delay = kTimeInfinity;
  /// Total number of message transmissions in the whole network, across all
  /// copies, until every copy was delivered, discarded, or expired
  /// (the cost metric of Sec. IV-C).
  std::size_t transmissions = 0;
  /// Relay nodes r_1..r_K of the first delivered copy, in hop order
  /// (excludes src and dst). Empty if not delivered.
  std::vector<NodeId> relay_path;
  /// For hop k (0-based index: k = 0 is relay hop R_1), the set of nodes
  /// that relayed *any* copy at that hop. Single-copy: one node per hop of
  /// the delivered path. Multi-copy: up to L per hop. Used by the
  /// multi-copy anonymity measurement (Sec. IV-F).
  std::vector<std::vector<NodeId>> relays_per_hop;
  /// The relay groups R_1..R_K the source selected.
  std::vector<GroupId> relay_groups;
  /// Destination-group delivery only: extra transfers spent circulating
  /// inside the destination's group before the destination received it.
  std::size_t intra_group_hops = 0;
  /// kReal mode only: destination decrypted the onion payload and it
  /// matched the original message.
  bool crypto_verified = false;
  /// Recovery layer only: source-side retransmissions performed (each one
  /// re-onions the message through freshly sampled relay groups). Zero
  /// when the recovery layer is off.
  std::size_t retransmissions = 0;
  /// Wire-accurate mode only: sealed fixed-size cells (and their total
  /// bytes) that crossed contacts for this message, across all copies and
  /// retransmissions. Zero when wire mode is off.
  std::uint64_t wire_cells = 0;
  std::uint64_t wire_bytes = 0;
};

}  // namespace odtn::routing
