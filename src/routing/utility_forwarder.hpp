// Congestion/utility-aware DTN forwarding (Orion-style baseline).
//
// The onion protocols replicate along pre-selected relay groups and are
// blind to load: under sustained traffic they push copies into saturated
// buffers and lose them. This forwarder is the classic DTN answer — a
// *utility* per (node, destination) learned from contact history, with
// replication gated on marginal utility gain and on the receiver's buffer
// occupancy (back off when the next hop is congested).
//
// Utility model: for each node pair we keep an EWMA of the observed
// inter-contact interval; utility(v, d) = 1 / ewma_interval(v, d), i.e. the
// estimated contact rate — higher means v meets d more often, the PRoPHET /
// Orion delivery-predictability idea in its simplest deterministic form.
// A node pair never observed has utility 0.
//
// Everything is updated from the simulated contact sequence only (no
// wall-clock, no RNG), so a loaded simulation using this forwarder stays
// bit-identical across thread counts.
//
// Header-only: sim::NetworkSim consults it at contact time and routing
// already links against sim, so an out-of-line definition here would make
// the two libraries mutually dependent.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "util/ids.hpp"

namespace odtn::routing {

struct UtilityForwarderConfig {
  /// EWMA weight of the newest inter-contact interval (0 < alpha <= 1).
  double ewma_alpha = 0.25;
  /// Replicate only when the receiver's utility for the destination
  /// exceeds the holder's by at least this factor (>= 1 ratchets copies
  /// strictly toward better custodians; 0 replicates to anyone, which
  /// recovers congestion-ignorant spray — the "spray-blind" baseline).
  double min_utility_ratio = 1.0;
  /// Back off: refuse to replicate into a receiver whose buffer occupancy
  /// (load / capacity) is at or above this fraction. > 1 disables the
  /// congestion check (unlimited buffers never back off either).
  double backoff_occupancy = 0.9;
  /// Recovery feedback: discount a receiver's utility by
  /// (1 - failure_penalty * failure_score(receiver)), where the score is
  /// an EWMA (weight `ewma_alpha`) of that node's observed transfer
  /// outcomes (1 = every recent transfer to it failed). Copies steer away
  /// from nodes that keep dropping them — the observed-outcome adaptation
  /// of Shaghaghian-Coates, in its simplest deterministic form. 0 (the
  /// default) disables the feedback: outcomes are not recorded and
  /// replication decisions are byte-identical to builds without the knob.
  double failure_penalty = 0.0;
};

class UtilityForwarder {
 public:
  UtilityForwarder(std::size_t nodes, UtilityForwarderConfig config = {})
      : nodes_(nodes), config_(config) {}

  /// Feeds one contact event (called for every surviving contact, in trace
  /// order). Updates both endpoints' inter-contact EWMAs.
  void observe_contact(NodeId a, NodeId b, Time t) {
    Pair& p = pairs_[key(a, b)];
    if (p.last >= 0.0) {
      const double interval = t - p.last;
      p.ewma_interval = p.ewma_interval < 0.0
                            ? interval
                            : (1.0 - config_.ewma_alpha) * p.ewma_interval +
                                  config_.ewma_alpha * interval;
    }
    p.last = t;
  }

  /// Estimated contact rate of (v, d); 0 until two contacts were seen.
  double utility(NodeId v, NodeId d) const {
    if (v == d) return 0.0;
    auto it = pairs_.find(key(v, d));
    if (it == pairs_.end() || it->second.ewma_interval <= 0.0) return 0.0;
    return 1.0 / it->second.ewma_interval;
  }

  /// Feeds one observed transfer outcome to `receiver` (success = the copy
  /// was handed over; failure = the mid-contact transfer failed). No-op
  /// with failure_penalty == 0, keeping the zero-knob path byte-identical.
  void observe_transfer_outcome(NodeId receiver, bool success) {
    if (config_.failure_penalty <= 0.0) return;
    double& s = failure_score_[receiver];
    s = (1.0 - config_.ewma_alpha) * s +
        config_.ewma_alpha * (success ? 0.0 : 1.0);
  }

  /// EWMA of observed transfer failures to `v` (0 until a failure is seen).
  double failure_score(NodeId v) const {
    auto it = failure_score_.find(v);
    return it == failure_score_.end() ? 0.0 : it->second;
  }

  /// Replication decision at a contact: should `holder` spend a ticket on
  /// `receiver` for a message to `dst`, given the receiver's current
  /// buffer occupancy? Pure (no state change, no RNG).
  bool should_replicate(NodeId holder, NodeId receiver, NodeId dst,
                        std::size_t receiver_load,
                        std::size_t receiver_capacity) const {
    if (receiver_capacity != 0) {
      const double occupancy = static_cast<double>(receiver_load) /
                               static_cast<double>(receiver_capacity);
      if (occupancy >= config_.backoff_occupancy) return false;
    }
    double gain = utility(receiver, dst);
    if (config_.failure_penalty > 0.0) {
      const double discount =
          1.0 - config_.failure_penalty * failure_score(receiver);
      gain *= discount > 0.0 ? discount : 0.0;
    }
    const double have = utility(holder, dst);
    return gain >= have * config_.min_utility_ratio;
  }

  std::size_t node_count() const { return nodes_; }
  const UtilityForwarderConfig& config() const { return config_; }

 private:
  struct Pair {
    Time last = -1.0;
    double ewma_interval = -1.0;
  };

  static std::uint64_t key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::size_t nodes_;
  UtilityForwarderConfig config_;
  // Ordered map: iteration order (debug dumps, future export) is the pair
  // key order, never hash-bucket order.
  std::map<std::uint64_t, Pair> pairs_;
  // Per-node transfer-failure EWMA; only populated when failure_penalty > 0.
  std::map<NodeId, double> failure_score_;
};

}  // namespace odtn::routing
