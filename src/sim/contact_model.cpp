#include "sim/contact_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::sim {

PoissonContactModel::PoissonContactModel(const graph::ContactGraph& graph,
                                         util::Rng& rng)
    : graph_(&graph), rng_(&rng) {}

void PoissonContactModel::prepare(ContactQuery& q, std::span<const NodeId> from,
                                  std::span<const NodeId> to) {
  const std::size_t n = graph_->node_count();
  q.backend_ = ContactQuery::Backend::kPoisson;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.has_candidates_ = false;

  if (from_stamp_.size() < n) {
    from_stamp_.resize(n, 0);
    to_stamp_.resize(n, 0);
    from_pos_.resize(n);
    to_pos_.resize(n);
  }

  // Pass 1: stamp each node's first occurrence index in its span.
  ++epoch_;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (a >= n) throw std::out_of_range("ContactModel: bad node id");
    if (from_stamp_[a] != epoch_) {
      from_stamp_[a] = epoch_;
      from_pos_[a] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t j = 0; j < to.size(); ++j) {
    const NodeId b = to[j];
    if (b >= n) throw std::out_of_range("ContactModel: bad node id");
    if (to_stamp_[b] != epoch_) {
      to_stamp_[b] = epoch_;
      to_pos_[b] = static_cast<std::uint32_t>(j);
    }
  }

  // Pass 2: collect candidate unordered pairs in enumeration order. A pair
  // reachable via both orientations (when the sets overlap) is counted once,
  // at its lexicographically first (i, j) enumeration — exactly the pair
  // the historical per-poll hash-set dedup kept. The prefix sums accumulate
  // in the same order and with the same additions as the old running
  // `total`, so the categorical pick below is bit-identical.
  double cum = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (from_pos_[a] != i) continue;  // duplicate occurrence of a
    const auto row = graph_->row(a);
    const bool a_in_to = to_stamp_[a] == epoch_;
    for (std::size_t j = 0; j < to.size(); ++j) {
      const NodeId b = to[j];
      if (a == b) continue;
      if (to_pos_[b] != j) continue;  // duplicate occurrence of b
      // The reversed orientation (b, a) exists iff b is in `from` and a is
      // in `to`; it wins iff it appears in an earlier row. (from_pos_[b]
      // == i is impossible: from[i] == a != b.)
      if (a_in_to && from_stamp_[b] == epoch_ && from_pos_[b] < i) continue;
      const double r = row.rate(b);
      if (r > 0.0) {
        cum += r;
        q.pair_a_.push_back(a);
        q.pair_b_.push_back(b);
        q.prefix_.push_back(cum);
      }
    }
  }
  q.total_ = cum;
}

std::optional<CrossContact> PoissonContactModel::first_cross_contact(
    const ContactQuery& q, Time after, Time horizon) {
  if (q.backend_ != ContactQuery::Backend::kPoisson || q.owner_ != this) {
    throw std::logic_error("ContactQuery: plan belongs to a different model");
  }
  if (!(horizon > after)) return std::nullopt;
  if (q.prefix_.empty()) return std::nullopt;

  // Superposition of Poisson processes: the first event arrives after an
  // Exp(total) wait and belongs to pair p with probability rate_p / total.
  const double total = q.total_;
  Time t = after + rng_->exponential(total);
  if (t >= horizon) return std::nullopt;

  const double pick = rng_->uniform01() * total;
  // First pair whose inclusive prefix sum exceeds `pick` — the same pair a
  // linear `cum += rate; if (pick < cum)` scan selects.
  auto it = std::upper_bound(q.prefix_.begin(), q.prefix_.end(), pick);
  const std::size_t idx =
      it == q.prefix_.end()
          ? q.prefix_.size() - 1  // floating-point slack: last pair
          : static_cast<std::size_t>(it - q.prefix_.begin());
  return CrossContact{t, q.pair_a_[idx], q.pair_b_[idx]};
}

TraceContactModel::TraceContactModel(const trace::ContactTrace& trace)
    : trace_(&trace) {}

void TraceContactModel::prepare(ContactQuery& q, std::span<const NodeId> from,
                                std::span<const NodeId> to) {
  const std::size_t n = trace_->node_count();
  q.backend_ = ContactQuery::Backend::kTrace;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.in_from_.assign(n, 0);
  q.in_to_.assign(n, 0);

  // Track whether some a in `from`, b in `to` with a != b exists at all —
  // if not, no event can ever match and queries skip the scan entirely.
  bool from_any = false, to_any = false, from_multi = false, to_multi = false;
  NodeId from_first = 0, to_first = 0;
  for (const NodeId a : from) {
    if (a >= n) continue;  // can never match an event
    q.in_from_[a] = 1;
    if (!from_any) {
      from_any = true;
      from_first = a;
    } else if (a != from_first) {
      from_multi = true;
    }
  }
  for (const NodeId b : to) {
    if (b >= n) continue;
    q.in_to_[b] = 1;
    if (!to_any) {
      to_any = true;
      to_first = b;
    } else if (b != to_first) {
      to_multi = true;
    }
  }
  q.has_candidates_ = from_any && to_any &&
                      (from_multi || to_multi || from_first != to_first);
}

std::optional<CrossContact> TraceContactModel::first_cross_contact(
    const ContactQuery& q, Time after, Time horizon) {
  if (q.backend_ != ContactQuery::Backend::kTrace || q.owner_ != this) {
    throw std::logic_error("ContactQuery: plan belongs to a different model");
  }
  if (!(horizon > after)) return std::nullopt;
  if (!q.has_candidates_) return std::nullopt;

  const auto& events = trace_->events();
  auto it = std::lower_bound(events.begin(), events.end(), after,
                             [](const trace::ContactEvent& e, Time t) {
                               return e.time < t;
                             });
  for (; it != events.end() && it->time < horizon; ++it) {
    if (it->a == it->b) continue;
    if (q.in_from_[it->a] != 0 && q.in_to_[it->b] != 0) {
      return CrossContact{it->time, it->a, it->b};
    }
    if (q.in_from_[it->b] != 0 && q.in_to_[it->a] != 0) {
      return CrossContact{it->time, it->b, it->a};
    }
  }
  return std::nullopt;
}

}  // namespace odtn::sim
