#include "sim/contact_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace odtn::sim {

PoissonContactModel::PoissonContactModel(const graph::ContactGraph& graph,
                                         util::Rng& rng)
    : graph_(&graph), rng_(&rng) {}

std::optional<CrossContact> PoissonContactModel::first_cross_contact(
    const std::vector<NodeId>& from, const std::vector<NodeId>& to,
    Time after, Time horizon) {
  if (!(horizon > after)) return std::nullopt;

  // Collect candidate unordered pairs and their rates. A pair reachable via
  // both orientations (when the sets overlap) must be counted once.
  struct Pair {
    NodeId a, b;
    double rate;
  };
  std::vector<Pair> pairs;
  pairs.reserve(from.size() * to.size());
  std::unordered_set<std::uint64_t> seen;
  double total = 0.0;
  for (NodeId a : from) {
    for (NodeId b : to) {
      if (a == b) continue;
      NodeId lo = std::min(a, b), hi = std::max(a, b);
      std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
      if (!seen.insert(key).second) continue;
      double r = graph_->rate(a, b);
      if (r > 0.0) {
        pairs.push_back({a, b, r});
        total += r;
      }
    }
  }
  if (pairs.empty() || total <= 0.0) return std::nullopt;

  // Superposition of Poisson processes: the first event arrives after an
  // Exp(total) wait and belongs to pair p with probability rate_p / total.
  Time t = after + rng_->exponential(total);
  if (t >= horizon) return std::nullopt;

  double pick = rng_->uniform01() * total;
  double cum = 0.0;
  for (const auto& p : pairs) {
    cum += p.rate;
    if (pick < cum) return CrossContact{t, p.a, p.b};
  }
  // Floating-point slack: return the last pair.
  const auto& p = pairs.back();
  return CrossContact{t, p.a, p.b};
}

TraceContactModel::TraceContactModel(const trace::ContactTrace& trace)
    : trace_(&trace) {}

std::optional<CrossContact> TraceContactModel::first_cross_contact(
    const std::vector<NodeId>& from, const std::vector<NodeId>& to,
    Time after, Time horizon) {
  if (!(horizon > after)) return std::nullopt;
  std::unordered_set<NodeId> set_a(from.begin(), from.end());
  std::unordered_set<NodeId> set_b(to.begin(), to.end());

  const auto& events = trace_->events();
  auto it = std::lower_bound(events.begin(), events.end(), after,
                             [](const trace::ContactEvent& e, Time t) {
                               return e.time < t;
                             });
  for (; it != events.end() && it->time < horizon; ++it) {
    if (it->a == it->b) continue;
    if (set_a.count(it->a) > 0 && set_b.count(it->b) > 0) {
      return CrossContact{it->time, it->a, it->b};
    }
    if (set_a.count(it->b) > 0 && set_b.count(it->a) > 0) {
      return CrossContact{it->time, it->b, it->a};
    }
  }
  return std::nullopt;
}

}  // namespace odtn::sim
