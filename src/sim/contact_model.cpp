#include "sim/contact_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::sim {

namespace {

// Shared sampling step for Poisson-style plans (dense and sparse backends
// build identical pair-list/prefix-sum structures). Superposition of Poisson
// processes: the first event arrives after an Exp(total) wait and belongs to
// pair p with probability rate_p / total.
std::optional<CrossContact> sample_poisson_plan(util::Rng& rng, Time after,
                                                Time horizon,
                                                std::span<const NodeId> pair_a,
                                                std::span<const NodeId> pair_b,
                                                std::span<const double> prefix,
                                                double total) {
  Time t = after + rng.exponential(total);
  if (t >= horizon) return std::nullopt;

  const double pick = rng.uniform01() * total;
  // First pair whose inclusive prefix sum exceeds `pick` — the same pair a
  // linear `cum += rate; if (pick < cum)` scan selects.
  auto it = std::upper_bound(prefix.begin(), prefix.end(), pick);
  const std::size_t idx =
      it == prefix.end()
          ? prefix.size() - 1  // floating-point slack: last pair
          : static_cast<std::size_t>(it - prefix.begin());
  return CrossContact{t, pair_a[idx], pair_b[idx]};
}

}  // namespace

PoissonContactModel::PoissonContactModel(const graph::ContactGraph& graph,
                                         util::Rng& rng)
    : graph_(&graph), rng_(&rng) {}

void PoissonContactModel::prepare(ContactQuery& q, std::span<const NodeId> from,
                                  std::span<const NodeId> to) {
  const std::size_t n = graph_->node_count();
  q.backend_ = ContactQuery::Backend::kPoisson;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.has_candidates_ = false;

  if (from_stamp_.size() < n) {
    from_stamp_.resize(n, 0);
    to_stamp_.resize(n, 0);
    from_pos_.resize(n);
    to_pos_.resize(n);
  }

  // Pass 1: stamp each node's first occurrence index in its span.
  ++epoch_;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (a >= n) throw std::out_of_range("ContactModel: bad node id");
    if (from_stamp_[a] != epoch_) {
      from_stamp_[a] = epoch_;
      from_pos_[a] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t j = 0; j < to.size(); ++j) {
    const NodeId b = to[j];
    if (b >= n) throw std::out_of_range("ContactModel: bad node id");
    if (to_stamp_[b] != epoch_) {
      to_stamp_[b] = epoch_;
      to_pos_[b] = static_cast<std::uint32_t>(j);
    }
  }

  // Pass 2: collect candidate unordered pairs in enumeration order. A pair
  // reachable via both orientations (when the sets overlap) is counted once,
  // at its lexicographically first (i, j) enumeration — exactly the pair
  // the historical per-poll hash-set dedup kept. The prefix sums accumulate
  // in the same order and with the same additions as the old running
  // `total`, so the categorical pick below is bit-identical.
  double cum = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (from_pos_[a] != i) continue;  // duplicate occurrence of a
    const auto row = graph_->row(a);
    const bool a_in_to = to_stamp_[a] == epoch_;
    for (std::size_t j = 0; j < to.size(); ++j) {
      const NodeId b = to[j];
      if (a == b) continue;
      if (to_pos_[b] != j) continue;  // duplicate occurrence of b
      // The reversed orientation (b, a) exists iff b is in `from` and a is
      // in `to`; it wins iff it appears in an earlier row. (from_pos_[b]
      // == i is impossible: from[i] == a != b.)
      if (a_in_to && from_stamp_[b] == epoch_ && from_pos_[b] < i) continue;
      const double r = row.rate(b);
      if (r > 0.0) {
        cum += r;
        q.pair_a_.push_back(a);
        q.pair_b_.push_back(b);
        q.prefix_.push_back(cum);
      }
    }
  }
  q.total_ = cum;
}

void PoissonContactModel::prepare_complement(ContactQuery& q,
                                             std::span<const NodeId> from,
                                             std::span<const NodeId> excluded) {
  const std::size_t n = graph_->node_count();
  q.backend_ = ContactQuery::Backend::kPoisson;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.has_candidates_ = false;

  if (from_stamp_.size() < n) {
    from_stamp_.resize(n, 0);
    to_stamp_.resize(n, 0);
    from_pos_.resize(n);
    to_pos_.resize(n);
  }

  // to_stamp_ marks *excluded* nodes here; the implicit to-set is every
  // unstamped node in ascending id order, which makes this loop produce
  // exactly the plan prepare() builds from the explicit ascending list of
  // non-excluded nodes (same pair order, same skips, same additions).
  ++epoch_;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (a >= n) throw std::out_of_range("ContactModel: bad node id");
    if (from_stamp_[a] != epoch_) {
      from_stamp_[a] = epoch_;
      from_pos_[a] = static_cast<std::uint32_t>(i);
    }
  }
  for (const NodeId v : excluded) {
    if (v >= n) throw std::out_of_range("ContactModel: bad node id");
    to_stamp_[v] = epoch_;
  }

  double cum = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (from_pos_[a] != i) continue;  // duplicate occurrence of a
    const auto row = graph_->row(a);
    const bool a_in_to = to_stamp_[a] != epoch_;
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      if (to_stamp_[b] == epoch_) continue;  // excluded
      if (a_in_to && from_stamp_[b] == epoch_ && from_pos_[b] < i) continue;
      const double r = row.rate(b);
      if (r > 0.0) {
        cum += r;
        q.pair_a_.push_back(a);
        q.pair_b_.push_back(b);
        q.prefix_.push_back(cum);
      }
    }
  }
  q.total_ = cum;
}

std::optional<CrossContact> PoissonContactModel::first_cross_contact(
    const ContactQuery& q, Time after, Time horizon) {
  if (q.backend_ != ContactQuery::Backend::kPoisson || q.owner_ != this) {
    throw std::logic_error("ContactQuery: plan belongs to a different model");
  }
  if (!(horizon > after)) return std::nullopt;
  if (q.prefix_.empty()) return std::nullopt;
  return sample_poisson_plan(*rng_, after, horizon, q.pair_a_, q.pair_b_,
                             q.prefix_, q.total_);
}

SparseContactModel::SparseContactModel(const graph::SparseContactGraph& graph,
                                       util::Rng& rng)
    : graph_(&graph), rng_(&rng) {}

void SparseContactModel::prepare(ContactQuery& q, std::span<const NodeId> from,
                                 std::span<const NodeId> to) {
  const std::size_t n = graph_->node_count();
  q.backend_ = ContactQuery::Backend::kPoisson;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.has_candidates_ = false;

  if (from_stamp_.size() < n) {
    from_stamp_.resize(n, 0);
    to_stamp_.resize(n, 0);
    from_pos_.resize(n);
    to_pos_.resize(n);
  }

  ++epoch_;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (a >= n) throw std::out_of_range("ContactModel: bad node id");
    if (from_stamp_[a] != epoch_) {
      from_stamp_[a] = epoch_;
      from_pos_[a] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t j = 0; j < to.size(); ++j) {
    const NodeId b = to[j];
    if (b >= n) throw std::out_of_range("ContactModel: bad node id");
    if (to_stamp_[b] != epoch_) {
      to_stamp_[b] = epoch_;
      to_pos_[b] = static_cast<std::uint32_t>(j);
    }
  }

  // Same enumeration, dedup and accumulation order as the dense model; the
  // only difference is the O(log degree) CSR rate lookup, and pairs absent
  // from the CSR are exactly the dense zero-rate pairs prepare() drops.
  double cum = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (from_pos_[a] != i) continue;  // duplicate occurrence of a
    const auto ids = graph_->neighbor_ids(a);
    const auto rates = graph_->neighbor_rates(a);
    const bool a_in_to = to_stamp_[a] == epoch_;
    for (std::size_t j = 0; j < to.size(); ++j) {
      const NodeId b = to[j];
      if (a == b) continue;
      if (to_pos_[b] != j) continue;  // duplicate occurrence of b
      if (a_in_to && from_stamp_[b] == epoch_ && from_pos_[b] < i) continue;
      const auto it = std::lower_bound(ids.begin(), ids.end(), b);
      if (it == ids.end() || *it != b) continue;
      const double r = rates[static_cast<std::size_t>(it - ids.begin())];
      cum += r;
      q.pair_a_.push_back(a);
      q.pair_b_.push_back(b);
      q.prefix_.push_back(cum);
    }
  }
  q.total_ = cum;
}

void SparseContactModel::prepare_complement(ContactQuery& q,
                                            std::span<const NodeId> from,
                                            std::span<const NodeId> excluded) {
  const std::size_t n = graph_->node_count();
  q.backend_ = ContactQuery::Backend::kPoisson;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.has_candidates_ = false;

  if (from_stamp_.size() < n) {
    from_stamp_.resize(n, 0);
    to_stamp_.resize(n, 0);
    from_pos_.resize(n);
    to_pos_.resize(n);
  }

  ++epoch_;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (a >= n) throw std::out_of_range("ContactModel: bad node id");
    if (from_stamp_[a] != epoch_) {
      from_stamp_[a] = epoch_;
      from_pos_[a] = static_cast<std::uint32_t>(i);
    }
  }
  for (const NodeId v : excluded) {
    if (v >= n) throw std::out_of_range("ContactModel: bad node id");
    to_stamp_[v] = epoch_;
  }

  // This is the scale-out payoff: the implicit all-but-excluded to-set is
  // intersected with each from-node's adjacency row, so the cost is
  // O(sum degree) instead of O(|from| * n). Row ids ascend, so the pair
  // order (and therefore the prefix sums and categorical picks) matches the
  // dense complement plan exactly.
  double cum = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const NodeId a = from[i];
    if (from_pos_[a] != i) continue;  // duplicate occurrence of a
    const auto ids = graph_->neighbor_ids(a);
    const auto rates = graph_->neighbor_rates(a);
    const bool a_in_to = to_stamp_[a] != epoch_;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const NodeId b = ids[k];
      if (to_stamp_[b] == epoch_) continue;  // excluded
      if (a_in_to && from_stamp_[b] == epoch_ && from_pos_[b] < i) continue;
      cum += rates[k];
      q.pair_a_.push_back(a);
      q.pair_b_.push_back(b);
      q.prefix_.push_back(cum);
    }
  }
  q.total_ = cum;
}

std::optional<CrossContact> SparseContactModel::first_cross_contact(
    const ContactQuery& q, Time after, Time horizon) {
  if (q.backend_ != ContactQuery::Backend::kPoisson || q.owner_ != this) {
    throw std::logic_error("ContactQuery: plan belongs to a different model");
  }
  if (!(horizon > after)) return std::nullopt;
  if (q.prefix_.empty()) return std::nullopt;
  return sample_poisson_plan(*rng_, after, horizon, q.pair_a_, q.pair_b_,
                             q.prefix_, q.total_);
}

TraceContactModel::TraceContactModel(const trace::ContactTrace& trace)
    : trace_(&trace) {}

void TraceContactModel::prepare(ContactQuery& q, std::span<const NodeId> from,
                                std::span<const NodeId> to) {
  const std::size_t n = trace_->node_count();
  q.backend_ = ContactQuery::Backend::kTrace;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.in_from_.assign(n, 0);
  q.in_to_.assign(n, 0);

  // Track whether some a in `from`, b in `to` with a != b exists at all —
  // if not, no event can ever match and queries skip the scan entirely.
  bool from_any = false, to_any = false, from_multi = false, to_multi = false;
  NodeId from_first = 0, to_first = 0;
  for (const NodeId a : from) {
    if (a >= n) continue;  // can never match an event
    q.in_from_[a] = 1;
    if (!from_any) {
      from_any = true;
      from_first = a;
    } else if (a != from_first) {
      from_multi = true;
    }
  }
  for (const NodeId b : to) {
    if (b >= n) continue;
    q.in_to_[b] = 1;
    if (!to_any) {
      to_any = true;
      to_first = b;
    } else if (b != to_first) {
      to_multi = true;
    }
  }
  q.has_candidates_ = from_any && to_any &&
                      (from_multi || to_multi || from_first != to_first);
}

void TraceContactModel::prepare_complement(ContactQuery& q,
                                           std::span<const NodeId> from,
                                           std::span<const NodeId> excluded) {
  const std::size_t n = trace_->node_count();
  q.backend_ = ContactQuery::Backend::kTrace;
  q.owner_ = this;
  q.pair_a_.clear();
  q.pair_b_.clear();
  q.prefix_.clear();
  q.total_ = 0.0;
  q.in_from_.assign(n, 0);
  q.in_to_.assign(n, 1);  // complement: everyone in, then excluded drop out
  for (const NodeId b : excluded) {
    if (b < n) q.in_to_[b] = 0;
  }

  bool from_any = false, from_multi = false;
  NodeId from_first = 0;
  for (const NodeId a : from) {
    if (a >= n) continue;  // can never match an event
    q.in_from_[a] = 1;
    if (!from_any) {
      from_any = true;
      from_first = a;
    } else if (a != from_first) {
      from_multi = true;
    }
  }
  bool to_any = false, to_multi = false;
  NodeId to_first = 0;
  for (NodeId b = 0; b < n; ++b) {
    if (q.in_to_[b] == 0) continue;
    if (!to_any) {
      to_any = true;
      to_first = b;
    } else {
      to_multi = true;
      break;
    }
  }
  q.has_candidates_ = from_any && to_any &&
                      (from_multi || to_multi || from_first != to_first);
}

std::optional<CrossContact> TraceContactModel::first_cross_contact(
    const ContactQuery& q, Time after, Time horizon) {
  if (q.backend_ != ContactQuery::Backend::kTrace || q.owner_ != this) {
    throw std::logic_error("ContactQuery: plan belongs to a different model");
  }
  if (!(horizon > after)) return std::nullopt;
  if (!q.has_candidates_) return std::nullopt;

  const auto& events = trace_->events();
  auto it = std::lower_bound(events.begin(), events.end(), after,
                             [](const trace::ContactEvent& e, Time t) {
                               return e.time < t;
                             });
  for (; it != events.end() && it->time < horizon; ++it) {
    if (it->a == it->b) continue;
    if (q.in_from_[it->a] != 0 && q.in_to_[it->b] != 0) {
      return CrossContact{it->time, it->a, it->b};
    }
    if (q.in_from_[it->b] != 0 && q.in_to_[it->a] != 0) {
      return CrossContact{it->time, it->b, it->a};
    }
  }
  return std::nullopt;
}

}  // namespace odtn::sim
