// Contact dynamics abstraction for the DTN simulator.
//
// Routing protocols only ever need one primitive: "when is the next
// contact between some node of set A and some node of set B, after time
// t?". Two implementations exist:
//
//  * PoissonContactModel — samples live from the contact graph's Poisson
//    processes. Memorylessness makes state-by-state resampling an *exact*
//    simulation of the contact processes (no approximation is introduced),
//    while never touching the analytical delivery-rate model the simulator
//    is supposed to validate.
//  * TraceContactModel — replays a recorded or synthetic ContactTrace.
#pragma once

#include <optional>
#include <vector>

#include "graph/contact_graph.hpp"
#include "trace/contact_trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::sim {

/// A realized contact: node `a` (from the first queried set) meets node `b`
/// (from the second) at `time`.
struct CrossContact {
  Time time;
  NodeId a;
  NodeId b;
};

class ContactModel {
 public:
  virtual ~ContactModel() = default;

  virtual std::size_t node_count() const = 0;

  /// First contact at time >= `after` and < `horizon` between any a in
  /// `from` and any b in `to` (unordered pairs; a pair occurring in both
  /// orientations is considered once). Self-pairs are ignored.
  virtual std::optional<CrossContact> first_cross_contact(
      const std::vector<NodeId>& from, const std::vector<NodeId>& to,
      Time after, Time horizon) = 0;

  /// Convenience: first contact of a single holder with any candidate.
  std::optional<CrossContact> first_contact(NodeId holder,
                                            const std::vector<NodeId>& to,
                                            Time after, Time horizon) {
    return first_cross_contact({holder}, to, after, horizon);
  }
};

/// Live-sampled Poisson contacts over a ContactGraph.
class PoissonContactModel final : public ContactModel {
 public:
  /// Both references must outlive the model.
  PoissonContactModel(const graph::ContactGraph& graph, util::Rng& rng);

  std::size_t node_count() const override { return graph_->node_count(); }

  std::optional<CrossContact> first_cross_contact(
      const std::vector<NodeId>& from, const std::vector<NodeId>& to,
      Time after, Time horizon) override;

 private:
  const graph::ContactGraph* graph_;
  util::Rng* rng_;
};

/// Replays a recorded ContactTrace.
class TraceContactModel final : public ContactModel {
 public:
  /// The trace must outlive the model.
  explicit TraceContactModel(const trace::ContactTrace& trace);

  std::size_t node_count() const override { return trace_->node_count(); }

  std::optional<CrossContact> first_cross_contact(
      const std::vector<NodeId>& from, const std::vector<NodeId>& to,
      Time after, Time horizon) override;

 private:
  const trace::ContactTrace* trace_;
};

}  // namespace odtn::sim
