// Contact dynamics abstraction for the DTN simulator.
//
// Routing protocols only ever need one primitive: "when is the next
// contact between some node of set A and some node of set B, after time
// t?". Two implementations exist:
//
//  * PoissonContactModel — samples live from the contact graph's Poisson
//    processes. Memorylessness makes state-by-state resampling an *exact*
//    simulation of the contact processes (no approximation is introduced),
//    while never touching the analytical delivery-rate model the simulator
//    is supposed to validate.
//  * TraceContactModel — replays a recorded or synthetic ContactTrace.
//
// The query surface is built around *prepared plans*: `prepare()` compiles
// a (from-set, to-set) pair into a reusable ContactQuery — deduped pair
// list, per-pair rates and an inclusive prefix-sum table on the Poisson
// side, membership bitmaps on the trace side — and
// `first_cross_contact(plan, after, horizon)` then answers each poll with
// one Exp(total) draw plus one binary-search categorical pick and zero
// heap allocations. Preparing into a caller-owned plan reuses its buffers,
// so steady-state polling (the simulator hot loop) never allocates.
//
// Determinism contract: the pair enumeration order, the prefix sums (same
// floating-point accumulation order), and the RNG draw sequence (exactly
// one exponential, then — only if the event lands inside the horizon —
// one uniform per non-empty query; no draws for empty plans or empty
// windows) are identical to the historical per-poll implementation, so
// every recorded figure/metrics baseline is byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/contact_graph.hpp"
#include "graph/sparse_contact_graph.hpp"
#include "trace/contact_trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::sim {

/// A realized contact: node `a` (from the first queried set) meets node `b`
/// (from the second) at `time`.
struct CrossContact {
  Time time;
  NodeId a;
  NodeId b;
};

/// A prepared (from-set, to-set) contact query. Opaque to callers: build
/// one with ContactModel::prepare() and pass it back to the *same* model's
/// first_cross_contact(). Reusable — re-preparing an existing plan keeps
/// its buffers, so a caller that holds one plan per hop never allocates on
/// the steady-state path.
class ContactQuery {
 public:
  ContactQuery() = default;

  /// True when no contact can ever satisfy the query (no candidate pair
  /// with positive rate / no candidate node pair in the trace).
  bool empty() const {
    switch (backend_) {
      case Backend::kPoisson:
        return prefix_.empty();
      case Backend::kTrace:
        return !has_candidates_;
      case Backend::kNone:
        return true;
    }
    return true;
  }

  /// Number of distinct positive-rate pairs (Poisson plans; 0 otherwise).
  std::size_t pair_count() const { return prefix_.size(); }

  /// Aggregate contact rate over all pairs (Poisson plans; 0 otherwise).
  double total_rate() const { return total_; }

 private:
  friend class ContactModel;
  friend class PoissonContactModel;
  friend class SparseContactModel;
  friend class TraceContactModel;

  enum class Backend : std::uint8_t { kNone, kPoisson, kTrace };

  Backend backend_ = Backend::kNone;
  const void* owner_ = nullptr;

  // Poisson backend: deduped pair list in enumeration order plus the
  // inclusive prefix sums of their rates; total_ == prefix_.back().
  std::vector<NodeId> pair_a_;
  std::vector<NodeId> pair_b_;
  std::vector<double> prefix_;
  double total_ = 0.0;

  // Trace backend: membership bitmaps indexed by NodeId.
  std::vector<std::uint8_t> in_from_;
  std::vector<std::uint8_t> in_to_;
  bool has_candidates_ = false;
};

class ContactModel {
 public:
  virtual ~ContactModel() = default;

  virtual std::size_t node_count() const = 0;

  /// Compiles (from, to) into `q`, reusing q's buffers. The plan answers
  /// "first contact at time >= after and < horizon between any a in `from`
  /// and any b in `to`" (unordered pairs; a pair occurring in both
  /// orientations is considered once; self-pairs are ignored). The plan is
  /// only valid for this model and must be re-prepared if the sets change.
  virtual void prepare(ContactQuery& q, std::span<const NodeId> from,
                       std::span<const NodeId> to) = 0;

  /// Convenience: returns a freshly allocated plan.
  ContactQuery prepare(std::span<const NodeId> from,
                       std::span<const NodeId> to) {
    ContactQuery q;
    prepare(q, from, to);
    return q;
  }

  /// Compiles (from, all nodes NOT in `excluded`) into `q`. Equivalent to
  /// prepare() with an explicit ascending target list of every node outside
  /// `excluded`, but without the caller materializing that O(n) list: on
  /// sparse backends the plan is built from the from-nodes' adjacency rows
  /// in O(sum degree). This is the scalable form of the "spray to anyone
  /// new" queries that previously enumerated all n nodes per poll.
  virtual void prepare_complement(ContactQuery& q, std::span<const NodeId> from,
                                  std::span<const NodeId> excluded) = 0;

  /// Convenience: returns a freshly allocated complement plan.
  ContactQuery prepare_complement(std::span<const NodeId> from,
                                  std::span<const NodeId> excluded) {
    ContactQuery q;
    prepare_complement(q, from, excluded);
    return q;
  }

  /// Answers a prepared query: first contact in [after, horizon). Zero
  /// heap allocations. `q` must have been prepared by this model.
  virtual std::optional<CrossContact> first_cross_contact(
      const ContactQuery& q, Time after, Time horizon) = 0;

  /// One-shot convenience: prepare-and-query through an internal scratch
  /// plan (still allocation-free at steady state; the scratch buffers are
  /// reused across calls).
  std::optional<CrossContact> first_cross_contact(std::span<const NodeId> from,
                                                  std::span<const NodeId> to,
                                                  Time after, Time horizon) {
    prepare(scratch_, from, to);
    return first_cross_contact(scratch_, after, horizon);
  }

  /// One-shot complement query: first contact between `from` and any node
  /// NOT in `excluded`, in [after, horizon).
  std::optional<CrossContact> first_cross_contact_complement(
      std::span<const NodeId> from, std::span<const NodeId> excluded,
      Time after, Time horizon) {
    prepare_complement(scratch_, from, excluded);
    return first_cross_contact(scratch_, after, horizon);
  }

 private:
  ContactQuery scratch_;
};

/// Live-sampled Poisson contacts over a ContactGraph.
class PoissonContactModel final : public ContactModel {
 public:
  /// Both references must outlive the model.
  PoissonContactModel(const graph::ContactGraph& graph, util::Rng& rng);

  std::size_t node_count() const override { return graph_->node_count(); }

  using ContactModel::first_cross_contact;
  using ContactModel::prepare;
  using ContactModel::prepare_complement;

  void prepare(ContactQuery& q, std::span<const NodeId> from,
               std::span<const NodeId> to) override;

  void prepare_complement(ContactQuery& q, std::span<const NodeId> from,
                          std::span<const NodeId> excluded) override;

  std::optional<CrossContact> first_cross_contact(const ContactQuery& q,
                                                  Time after,
                                                  Time horizon) override;

 private:
  const graph::ContactGraph* graph_;
  util::Rng* rng_;

  // Epoch-stamped first-occurrence tables for exact pair dedup without a
  // per-call hash set. stamp[v] == epoch_ means v was seen during the
  // current prepare() and pos[v] is its first index in the span.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> from_stamp_;
  std::vector<std::uint64_t> to_stamp_;
  std::vector<std::uint32_t> from_pos_;
  std::vector<std::uint32_t> to_pos_;
};

/// Live-sampled Poisson contacts over a SparseContactGraph. Same plan
/// structure, draw sequence and selection math as PoissonContactModel, but
/// prepare() costs O(|from| * |to| log degree) rate lookups and
/// prepare_complement() walks adjacency rows in O(sum degree) — never O(n).
/// A sparse graph holding the same rates as a dense one yields bit-identical
/// plans (same pair order, same prefix sums), hence identical simulations.
class SparseContactModel final : public ContactModel {
 public:
  /// Both references must outlive the model.
  SparseContactModel(const graph::SparseContactGraph& graph, util::Rng& rng);

  std::size_t node_count() const override { return graph_->node_count(); }

  using ContactModel::first_cross_contact;
  using ContactModel::prepare;
  using ContactModel::prepare_complement;

  void prepare(ContactQuery& q, std::span<const NodeId> from,
               std::span<const NodeId> to) override;

  void prepare_complement(ContactQuery& q, std::span<const NodeId> from,
                          std::span<const NodeId> excluded) override;

  std::optional<CrossContact> first_cross_contact(const ContactQuery& q,
                                                  Time after,
                                                  Time horizon) override;

 private:
  const graph::SparseContactGraph* graph_;
  util::Rng* rng_;

  // Same epoch-stamped dedup tables as the dense Poisson model; to_stamp_
  // doubles as the excluded-set stamp for prepare_complement.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> from_stamp_;
  std::vector<std::uint64_t> to_stamp_;
  std::vector<std::uint32_t> from_pos_;
  std::vector<std::uint32_t> to_pos_;
};

/// Replays a recorded ContactTrace.
class TraceContactModel final : public ContactModel {
 public:
  /// The trace must outlive the model.
  explicit TraceContactModel(const trace::ContactTrace& trace);

  std::size_t node_count() const override { return trace_->node_count(); }

  using ContactModel::first_cross_contact;
  using ContactModel::prepare;
  using ContactModel::prepare_complement;

  void prepare(ContactQuery& q, std::span<const NodeId> from,
               std::span<const NodeId> to) override;

  void prepare_complement(ContactQuery& q, std::span<const NodeId> from,
                          std::span<const NodeId> excluded) override;

  std::optional<CrossContact> first_cross_contact(const ContactQuery& q,
                                                  Time after,
                                                  Time horizon) override;

 private:
  const trace::ContactTrace* trace_;
};

}  // namespace odtn::sim
