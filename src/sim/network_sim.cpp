#include "sim/network_sim.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "faults/faults.hpp"
#include "routing/utility_forwarder.hpp"

namespace odtn::sim {

void ContactBandwidth::validate() const {
  if (mean_duration < 0.0 || transfer_time < 0.0) {
    throw std::invalid_argument(
        "bandwidth: duration model fields must be >= 0");
  }
  if ((mean_duration > 0.0) != (transfer_time > 0.0)) {
    throw std::invalid_argument(
        "bandwidth: mean_duration and transfer_time must be set together");
  }
}

double NetworkSimReport::delivery_rate() const {
  if (outcomes.empty()) return 0.0;
  std::size_t delivered = 0;
  for (const auto& o : outcomes) delivered += o.delivered;
  return static_cast<double>(delivered) / static_cast<double>(outcomes.size());
}

double NetworkSimReport::mean_delay() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& o : outcomes) {
    if (o.delivered) {
      sum += o.delay;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

namespace {

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

struct Copy {
  std::size_t msg;
  std::size_t hop;  // onion groups traversed so far (1..K)
  NodeId holder;
  Time arrival = 0.0;  // when the current holder received it
  bool alive = true;
  /// Utility-forwarder mode only: spray tickets this copy still owns.
  std::size_t tickets = 1;
  /// First time an eligible transfer of this copy was deferred by contact
  /// bandwidth; kTimeInfinity = not queued (feeds "sim.queue_wait").
  Time queued_since = kTimeInfinity;
};

struct SourceToken {
  std::size_t tickets;
  bool alive = true;
  Time queued_since = kTimeInfinity;
};

struct Engine {
  const trace::ContactTrace* trace;
  const groups::GroupDirectory* directory;
  const NetworkSimConfig* config;

  std::vector<InjectedMessage> messages;
  std::vector<std::uint8_t> priorities;  // empty = all class 0
  std::vector<std::vector<GroupId>> relay_groups;  // per message
  std::vector<SourceToken> tokens;                 // per message
  std::vector<std::unordered_set<NodeId>> seen;    // per message

  std::vector<Copy> copies;
  std::vector<std::vector<NodeId>> copy_paths;  // record_paths only
  std::vector<std::set<std::size_t>> holdings;  // node -> copy ids
  std::vector<std::size_t> load;                // node -> buffered items

  // Scheduled drainage (bandwidth / priorities / utility forwarder); when
  // false the engine runs the exact legacy per-direction loops.
  bool scheduled = false;
  routing::UtilityForwarder* utility = nullptr;

  // Observability handles (inert when config->metrics is null).
  metrics::CounterHandle m_transfers;
  metrics::CounterHandle m_rejections;
  metrics::CounterHandle m_evictions;
  metrics::CounterHandle m_expirations;
  metrics::CounterHandle m_injection_failures;
  metrics::CounterHandle m_deliveries;
  metrics::HistogramHandle m_hop_delay;
  metrics::HistogramHandle m_delivery_delay;
  // Fault accounting (resolved only when a FaultPlan is attached, so the
  // fault-free metrics export stays byte-identical).
  metrics::CounterHandle m_suppressed;
  metrics::CounterHandle m_transfer_failures;
  metrics::CounterHandle m_crash_flushed;
  metrics::CounterHandle m_blackhole_absorbed;
  // Congestion accounting (resolved only on the scheduled path — same
  // byte-identity contract as the fault handles).
  metrics::CounterHandle m_queue_deferred;
  metrics::CounterHandle m_contacts_saturated;
  metrics::HistogramHandle m_queue_wait;
  metrics::HistogramHandle m_contact_capacity;
  std::size_t crash_cursor = 0;

  // (deadline, kind, id): kind 0 = source token (id = msg), 1 = copy.
  using Expiry = std::tuple<Time, int, std::size_t>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;

  // Reused snapshot of a node's holdings, taken wherever the loop body
  // mutates the set it walks; one buffer serves every call site since the
  // snapshots never overlap in time.
  std::vector<std::size_t> holdings_scratch;

  // One contact's transfer candidates (scheduled path), reused.
  struct Cand {
    std::uint8_t pri;
    std::uint32_t seq;   // collection order = the legacy execution order
    std::uint8_t kind;   // 0 = source token, 1 = copy
    std::size_t id;      // msg index (kind 0) or copy id (kind 1)
    NodeId sender;
    NodeId receiver;
  };
  std::vector<Cand> cand_scratch;

  NetworkSimReport report;

  std::uint8_t pri(std::size_t m) const {
    return priorities.empty() ? 0 : priorities[m];
  }

  bool buffer_full(NodeId v) const {
    return config->buffer_capacity != 0 &&
           load[v] >= config->buffer_capacity;
  }

  // Tries to admit one more item at `v`, applying the buffer policy.
  // Returns false if the node stays full (transfer must be refused).
  bool make_room(NodeId v, std::size_t msg) {
    if (!buffer_full(v)) return true;
    if (config->policy == BufferPolicy::kRejectNew) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    // kDropOldest: evict the relayed copy that has waited longest.
    // Locally-originated state is never evicted: source tokens are not
    // copies at all, and (utility mode) a copy still held by its own
    // source is skipped. Tie-break on equal arrival times: the scan walks
    // the ordered holdings set and keeps the *first* minimum, so the
    // lowest copy id — the earliest-created copy — wins deterministically.
    std::size_t victim = SIZE_MAX;
    Time oldest = kTimeInfinity;
    for (std::size_t id : holdings[v]) {
      if (!copies[id].alive) continue;
      if (copies[id].holder == messages[copies[id].msg].src) continue;
      if (copies[id].arrival < oldest) {
        oldest = copies[id].arrival;
        victim = id;
      }
    }
    if (victim == SIZE_MAX) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    copies[victim].alive = false;
    holdings[v].erase(victim);
    --load[v];
    ++report.evicted_copies;
    m_evictions.inc();
    return true;
  }

  Time deadline_of(std::size_t msg) const {
    return messages[msg].start + messages[msg].ttl;
  }

  void inject(std::size_t m) {
    const auto& msg = messages[m];
    if (buffer_full(msg.src)) {
      report.outcomes[m].injection_failed = true;
      m_injection_failures.inc();
      return;
    }
    if (utility != nullptr) {
      // Utility mode: the source holds a real copy carrying all L spray
      // tickets (no token/relay-group machinery).
      std::size_t id = copies.size();
      copies.push_back({m, 0, msg.src, msg.start, true, msg.copies});
      if (config->record_paths) copy_paths.emplace_back();
      holdings[msg.src].insert(id);
      ++load[msg.src];
      seen[m].insert(msg.src);
      expiries.emplace(deadline_of(m), 1, id);
      return;
    }
    tokens[m].tickets = msg.copies;
    tokens[m].alive = true;
    ++load[msg.src];
    seen[m].insert(msg.src);
    expiries.emplace(deadline_of(m), 0, m);
  }

  void expire_until(Time t) {
    while (!expiries.empty() && std::get<0>(expiries.top()) < t) {
      auto [deadline, kind, id] = expiries.top();
      expiries.pop();
      if (kind == 0) {
        if (tokens[id].alive) {
          tokens[id].alive = false;
          --load[messages[id].src];
          ++report.expired_copies;
          m_expirations.inc();
        }
      } else if (copies[id].alive) {
        copies[id].alive = false;
        holdings[copies[id].holder].erase(id);
        --load[copies[id].holder];
        ++report.expired_copies;
        m_expirations.inc();
      }
    }
  }

  // Crash-reboots up to (and including) time t: the crashed node's
  // buffered copies — relayed copies and its own spray state — are
  // flushed. Lost, not leaked: a flushed copy simply ceases to exist.
  void flush_crashes_until(Time t) {
    const auto& events = config->faults->crashes();
    while (crash_cursor < events.size() &&
           events[crash_cursor].time <= t) {
      NodeId v = events[crash_cursor].node;
      ++crash_cursor;
      holdings_scratch.assign(holdings[v].begin(), holdings[v].end());
      for (std::size_t id : holdings_scratch) {
        if (!copies[id].alive) continue;
        copies[id].alive = false;
        holdings[v].erase(id);
        --load[v];
        ++report.crash_flushed_copies;
        m_crash_flushed.inc();
      }
      for (std::size_t m = 0; m < messages.size(); ++m) {
        if (tokens[m].alive && messages[m].src == v) {
          tokens[m].alive = false;
          --load[v];
          ++report.crash_flushed_copies;
          m_crash_flushed.inc();
        }
      }
    }
  }

  // Whether `receiver` is a valid next hop for message m at `hop`.
  bool qualifies(std::size_t m, std::size_t hop, NodeId receiver) const {
    const auto& msg = messages[m];
    if (seen[m].count(receiver) > 0) return false;  // Forward() dedup
    if (hop < msg.num_relays) {
      return directory->in_group(receiver, relay_groups[m][hop]);
    }
    return receiver == msg.dst;
  }

  // Flushes a completed queue-wait interval into "sim.queue_wait".
  void note_served(Time& queued_since, Time t) {
    if (queued_since != kTimeInfinity) {
      m_queue_wait.observe(t - queued_since);
      queued_since = kTimeInfinity;
    }
  }

  // record_paths bookkeeping: `receiver` just became the relay at 0-based
  // hop position `pos` for message m (one copy's path extends; the
  // per-message hop set dedups across copies).
  void record_relay(std::size_t m, std::size_t pos, NodeId receiver) {
    auto& rph = report.outcomes[m].relays_per_hop;
    if (rph.size() <= pos) rph.resize(pos + 1);
    auto& at = rph[pos];
    if (std::find(at.begin(), at.end(), receiver) == at.end()) {
      at.push_back(receiver);
    }
  }

  // --- transfer eligibility + execution ------------------------------
  // Split so the legacy per-direction loops and the scheduled (bandwidth/
  // priority) drainage share one set of semantics. An attempt_* helper
  // assumes eligibility was just checked and returns true iff a transfer
  // actually executed (the unit that consumes contact bandwidth); fault
  // losses and buffer refusals return false and consume nothing.

  bool token_eligible(std::size_t m, NodeId sender, NodeId receiver,
                      Time t) const {
    return tokens[m].alive && messages[m].src == sender &&
           t <= deadline_of(m) && qualifies(m, 0, receiver);
  }

  bool attempt_token(std::size_t m, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    // A failed handoff consumes no spray ticket and leaves the receiver
    // eligible for a retry at the next contact.
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      return false;
    }
    if (!make_room(receiver, m)) return false;
    std::size_t id = copies.size();
    copies.push_back({m, 1, receiver, t, true});
    if (config->record_paths) {
      copy_paths.emplace_back(1, receiver);
      record_relay(m, 0, receiver);
    }
    holdings[receiver].insert(id);
    ++load[receiver];
    seen[m].insert(receiver);
    expiries.emplace(deadline_of(m), 1, id);
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - messages[m].start);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    if (--tokens[m].tickets == 0) {
      tokens[m].alive = false;
      --load[sender];
    }
    note_served(tokens[m].queued_since, t);
    // A message with num_relays == 0 would deliver straight from the
    // token; the constructor rejects that case, so hop 1 is always a
    // relay position here.
    return true;
  }

  bool copy_eligible(std::size_t id, NodeId sender, NodeId receiver,
                     Time t) const {
    const Copy& c = copies[id];
    return c.alive && c.holder == sender && t <= deadline_of(c.msg) &&
           qualifies(c.msg, c.hop, receiver);
  }

  bool attempt_copy(std::size_t id, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    Copy& c = copies[id];
    std::size_t m = c.msg;
    // Mid-contact failure: the sender keeps its copy; retry later.
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      return false;
    }

    if (receiver == messages[m].dst && c.hop == messages[m].num_relays) {
      // Delivery: the destination consumes the message (no buffer cost).
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - c.arrival);
      seen[m].insert(receiver);
      if (!report.outcomes[m].delivered) {
        report.outcomes[m].delivered = true;
        report.outcomes[m].delay = t - messages[m].start;
        m_deliveries.inc();
        m_delivery_delay.observe(t - messages[m].start);
        if (config->record_paths) {
          report.outcomes[m].relay_path = copy_paths[id];
        }
      }
      c.alive = false;
      holdings[sender].erase(id);
      --load[sender];
      note_served(c.queued_since, t);
      return true;
    }

    if (!make_room(receiver, m)) return false;
    if (!c.alive) return false;  // evicted by make_room on its own holder
    // Forward and free the sender's slot (single ticket per copy).
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - c.arrival);
    holdings[sender].erase(id);
    --load[sender];
    c.holder = receiver;
    c.arrival = t;
    if (config->record_paths) {
      record_relay(m, c.hop, receiver);
      copy_paths[id].push_back(receiver);
    }
    ++c.hop;
    holdings[receiver].insert(id);
    ++load[receiver];
    seen[m].insert(receiver);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    note_served(c.queued_since, t);
    return true;
  }

  // Utility-forwarder mode: a copy may deliver to the destination or
  // binary-split its spray tickets toward a higher-utility, uncongested
  // custodian. Decisions are pure functions of simulated state (no RNG).
  bool ucopy_eligible(std::size_t id, NodeId sender, NodeId receiver,
                      Time t) const {
    const Copy& c = copies[id];
    if (!c.alive || c.holder != sender || t > deadline_of(c.msg)) {
      return false;
    }
    std::size_t m = c.msg;
    if (seen[m].count(receiver) > 0) return false;
    if (receiver == messages[m].dst) return true;
    return c.tickets > 1 &&
           utility->should_replicate(sender, receiver, messages[m].dst,
                                     load[receiver],
                                     config->buffer_capacity);
  }

  bool attempt_ucopy(std::size_t id, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    std::size_t m = copies[id].msg;
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      return false;
    }

    if (receiver == messages[m].dst) {
      Copy& c = copies[id];
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - c.arrival);
      seen[m].insert(receiver);
      if (!report.outcomes[m].delivered) {
        report.outcomes[m].delivered = true;
        report.outcomes[m].delay = t - messages[m].start;
        m_deliveries.inc();
        m_delivery_delay.observe(t - messages[m].start);
        if (config->record_paths) {
          report.outcomes[m].relay_path = copy_paths[id];
        }
      }
      c.alive = false;
      holdings[sender].erase(id);
      --load[sender];
      note_served(c.queued_since, t);
      return true;
    }

    if (!make_room(receiver, m)) return false;
    if (!copies[id].alive) return false;  // evicted out from under us
    // Replicate: the receiver takes half the tickets, the sender keeps
    // the rest (spray-and-wait binary splitting).
    const std::size_t give = copies[id].tickets / 2;  // >= 1: tickets > 1
    const std::size_t hop = copies[id].hop;
    std::size_t id2 = copies.size();
    copies.push_back({m, hop + 1, receiver, t, true, give});
    if (config->record_paths) {
      copy_paths.push_back(copy_paths[id]);
      copy_paths[id2].push_back(receiver);
      record_relay(m, hop, receiver);
    }
    Copy& c = copies[id];  // re-resolve: push_back may reallocate
    c.tickets -= give;
    holdings[receiver].insert(id2);
    ++load[receiver];
    seen[m].insert(receiver);
    expiries.emplace(deadline_of(m), 1, id2);
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - c.arrival);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    note_served(c.queued_since, t);
    return true;
  }

  // Attempts every transfer from `sender` to `receiver` at time t — the
  // legacy unlimited-bandwidth drainage (exact historical order: source
  // tokens in message order, then relayed copies in copy-id order).
  void transfer_direction(NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    // Blackholes accept copies but never forward them.
    if (fp != nullptr && fp->is_blackhole(sender)) return;

    // Source token: hand a fresh copy into R_1.
    for (std::size_t m = 0; m < messages.size(); ++m) {
      if (!token_eligible(m, sender, receiver, t)) continue;
      attempt_token(m, sender, receiver, t);
    }

    // Relayed copies.
    holdings_scratch.assign(holdings[sender].begin(), holdings[sender].end());
    for (std::size_t id : holdings_scratch) {
      if (!copy_eligible(id, sender, receiver, t)) continue;
      attempt_copy(id, sender, receiver, t);
    }
  }

  // Scheduled drainage: both directions' candidates are collected against
  // the state at contact start (collection order = the legacy execution
  // order), sorted by (priority, collection order), and executed within
  // the shared bandwidth budget. Eligibility is re-checked at execution —
  // earlier transfers may have evicted a candidate or consumed a token —
  // and eligible candidates past the budget are deferred to a later
  // contact (that wait is "sim.queue_wait"). With a uniform priority
  // class and an unlimited budget this executes the identical transfer
  // sequence as the two legacy transfer_direction passes.
  void transfer_scheduled(NodeId a, NodeId b, Time t, std::size_t budget) {
    faults::FaultPlan* fp = config->faults;
    cand_scratch.clear();
    std::uint32_t seq = 0;
    auto collect = [&](NodeId sender, NodeId receiver) {
      if (fp != nullptr && fp->is_blackhole(sender)) return;
      if (utility != nullptr) {
        for (std::size_t id : holdings[sender]) {
          if (!ucopy_eligible(id, sender, receiver, t)) continue;
          cand_scratch.push_back(
              {pri(copies[id].msg), seq++, 1, id, sender, receiver});
        }
        return;
      }
      for (std::size_t m = 0; m < messages.size(); ++m) {
        if (!token_eligible(m, sender, receiver, t)) continue;
        cand_scratch.push_back({pri(m), seq++, 0, m, sender, receiver});
      }
      for (std::size_t id : holdings[sender]) {
        if (!copy_eligible(id, sender, receiver, t)) continue;
        cand_scratch.push_back(
            {pri(copies[id].msg), seq++, 1, id, sender, receiver});
      }
    };
    collect(a, b);
    collect(b, a);
    // (pri, seq) pairs are unique, so plain sort is a total order.
    std::sort(cand_scratch.begin(), cand_scratch.end(),
              [](const Cand& x, const Cand& y) {
                if (x.pri != y.pri) return x.pri < y.pri;
                return x.seq < y.seq;
              });

    std::size_t executed = 0;
    bool saturated = false;
    for (const Cand& c : cand_scratch) {
      const bool eligible =
          utility != nullptr ? ucopy_eligible(c.id, c.sender, c.receiver, t)
          : c.kind == 0      ? token_eligible(c.id, c.sender, c.receiver, t)
                             : copy_eligible(c.id, c.sender, c.receiver, t);
      if (!eligible) continue;
      if (executed >= budget) {
        // Out of bandwidth: the item starts (or continues) queueing.
        saturated = true;
        ++report.queue_deferred;
        m_queue_deferred.inc();
        Time& qs = c.kind == 0 ? tokens[c.id].queued_since
                               : copies[c.id].queued_since;
        if (qs == kTimeInfinity) qs = t;
        continue;
      }
      const bool done =
          utility != nullptr ? attempt_ucopy(c.id, c.sender, c.receiver, t)
          : c.kind == 0      ? attempt_token(c.id, c.sender, c.receiver, t)
                             : attempt_copy(c.id, c.sender, c.receiver, t);
      if (done) ++executed;
    }
    if (executed > report.max_contact_transfers) {
      report.max_contact_transfers = executed;
    }
    if (saturated) {
      ++report.contacts_saturated;
      m_contacts_saturated.inc();
    }
  }

  NetworkSimReport run(util::Rng& rng) {
    utility = config->utility;
    const bool bandwidth_on = config->bandwidth.enabled();
    bool priorities_on = false;
    for (std::uint8_t p : priorities) priorities_on |= (p != 0);
    scheduled = bandwidth_on || priorities_on || utility != nullptr;

    metrics::Registry* reg = config->metrics;
    m_transfers = metrics::counter(reg, "sim.transfers");
    m_rejections = metrics::counter(reg, "sim.buffer_rejections");
    m_evictions = metrics::counter(reg, "sim.evictions");
    m_expirations = metrics::counter(reg, "sim.expirations");
    m_injection_failures = metrics::counter(reg, "sim.injection_failures");
    m_deliveries = metrics::counter(reg, "sim.deliveries");
    m_hop_delay = metrics::histogram(reg, "sim.hop_delay");
    m_delivery_delay = metrics::histogram(reg, "sim.delivery_delay");
    metrics::counter(reg, "sim.messages").inc(messages.size());
    if (config->faults != nullptr) {
      // Resolved only under an active fault plan so the fault-free metrics
      // export carries no faults.* entries (byte-identity contract).
      m_suppressed = metrics::counter(reg, "faults.contacts_suppressed");
      m_transfer_failures = metrics::counter(reg, "faults.transfer_failures");
      m_crash_flushed = metrics::counter(reg, "faults.crash_flushed_copies");
      m_blackhole_absorbed = metrics::counter(reg, "faults.blackhole_absorbed");
      metrics::counter(reg, "faults.blackhole_nodes")
          .inc(config->faults->blackhole_count());
    }
    if (scheduled) {
      // Same contract: the unloaded export carries no sim.queue_* entries.
      m_queue_deferred = metrics::counter(reg, "sim.queue_deferred");
      m_contacts_saturated = metrics::counter(reg, "sim.contacts_saturated");
      m_queue_wait = metrics::histogram(reg, "sim.queue_wait");
      if (bandwidth_on) {
        m_contact_capacity = metrics::histogram(reg, "sim.contact_capacity");
      }
    }

    report.outcomes.assign(messages.size(), {});
    tokens.assign(messages.size(), SourceToken{0, false, kTimeInfinity});
    seen.assign(messages.size(), {});
    holdings.assign(trace->node_count(), {});
    load.assign(trace->node_count(), 0);

    // Select relay groups per message (skipped — with no RNG drawn — in
    // utility-forwarder mode, which routes without onion groups).
    if (utility == nullptr) {
      relay_groups.resize(messages.size());
      for (std::size_t m = 0; m < messages.size(); ++m) {
        relay_groups[m] = directory->select_relay_groups(
            messages[m].src, messages[m].dst, messages[m].num_relays, rng);
      }
    }

    // Injection order by start time.
    std::vector<std::size_t> order(messages.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return messages[a].start < messages[b].start;
    });

    faults::FaultPlan* fp = config->faults;
    std::size_t next_injection = 0;
    for (const auto& event : trace->events()) {
      while (next_injection < order.size() &&
             messages[order[next_injection]].start <= event.time) {
        expire_until(messages[order[next_injection]].start);
        if (fp != nullptr) flush_crashes_until(messages[order[next_injection]].start);
        inject(order[next_injection]);
        ++next_injection;
      }
      expire_until(event.time);
      if (fp != nullptr) {
        flush_crashes_until(event.time);
        if (!fp->node_up(event.a, event.time) ||
            !fp->node_up(event.b, event.time)) {
          ++report.suppressed_contacts;
          m_suppressed.inc();
          continue;
        }
      }
      if (utility != nullptr) {
        // The forwarder learns from every surviving contact, including
        // the one it is about to route over.
        utility->observe_contact(event.a, event.b, event.time);
      }
      if (scheduled) {
        std::size_t budget = kUnlimited;
        if (bandwidth_on) {
          const auto& bw = config->bandwidth;
          if (bw.mean_duration > 0.0) {
            const double duration = rng.exponential(1.0 / bw.mean_duration);
            budget = static_cast<std::size_t>(duration / bw.transfer_time);
          } else {
            budget = bw.messages_per_contact;
          }
          m_contact_capacity.observe(static_cast<double>(budget));
        }
        transfer_scheduled(event.a, event.b, event.time, budget);
      } else {
        transfer_direction(event.a, event.b, event.time);
        transfer_direction(event.b, event.a, event.time);
      }
    }
    // Messages injected after the last event simply never move.
    while (next_injection < order.size()) {
      inject(order[next_injection]);
      ++next_injection;
    }
    return std::move(report);
  }
};

}  // namespace

NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng) {
  return run_network_sim(trace, directory, std::move(messages), {}, config,
                         rng);
}

NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 std::vector<std::uint8_t> priorities,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng) {
  if (trace.node_count() != directory.node_count()) {
    throw std::invalid_argument("run_network_sim: node count mismatch");
  }
  if (config.faults != nullptr &&
      config.faults->node_count() != trace.node_count()) {
    throw std::invalid_argument("run_network_sim: fault plan node count mismatch");
  }
  if (!priorities.empty() && priorities.size() != messages.size()) {
    throw std::invalid_argument(
        "run_network_sim: priorities must be empty or parallel to messages");
  }
  config.bandwidth.validate();
  const bool utility_mode = config.utility != nullptr;
  if (utility_mode &&
      config.utility->node_count() != trace.node_count()) {
    throw std::invalid_argument(
        "run_network_sim: utility forwarder node count mismatch");
  }
  for (const auto& m : messages) {
    if (m.src == m.dst) {
      throw std::invalid_argument("run_network_sim: src == dst");
    }
    if (m.src >= trace.node_count() || m.dst >= trace.node_count()) {
      throw std::invalid_argument("run_network_sim: unknown endpoint");
    }
    if (!utility_mode && m.num_relays == 0) {
      throw std::invalid_argument("run_network_sim: need >= 1 relay group");
    }
    if (m.copies == 0) {
      throw std::invalid_argument("run_network_sim: copies must be >= 1");
    }
  }
  Engine engine;
  engine.trace = &trace;
  engine.directory = &directory;
  engine.config = &config;
  engine.messages = std::move(messages);
  engine.priorities = std::move(priorities);
  return engine.run(rng);
}

}  // namespace odtn::sim
