#include "sim/network_sim.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "faults/faults.hpp"

namespace odtn::sim {

double NetworkSimReport::delivery_rate() const {
  if (outcomes.empty()) return 0.0;
  std::size_t delivered = 0;
  for (const auto& o : outcomes) delivered += o.delivered;
  return static_cast<double>(delivered) / static_cast<double>(outcomes.size());
}

double NetworkSimReport::mean_delay() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& o : outcomes) {
    if (o.delivered) {
      sum += o.delay;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

namespace {

struct Copy {
  std::size_t msg;
  std::size_t hop;  // onion groups traversed so far (1..K)
  NodeId holder;
  Time arrival = 0.0;  // when the current holder received it
  bool alive = true;
};

struct SourceToken {
  std::size_t tickets;
  bool alive = true;
};

struct Engine {
  const trace::ContactTrace* trace;
  const groups::GroupDirectory* directory;
  const NetworkSimConfig* config;

  std::vector<InjectedMessage> messages;
  std::vector<std::vector<GroupId>> relay_groups;  // per message
  std::vector<SourceToken> tokens;                 // per message
  std::vector<std::unordered_set<NodeId>> seen;    // per message

  std::vector<Copy> copies;
  std::vector<std::set<std::size_t>> holdings;  // node -> copy ids
  std::vector<std::size_t> load;                // node -> buffered items

  // Observability handles (inert when config->metrics is null).
  metrics::CounterHandle m_transfers;
  metrics::CounterHandle m_rejections;
  metrics::CounterHandle m_evictions;
  metrics::CounterHandle m_expirations;
  metrics::CounterHandle m_injection_failures;
  metrics::CounterHandle m_deliveries;
  metrics::HistogramHandle m_hop_delay;
  metrics::HistogramHandle m_delivery_delay;
  // Fault accounting (resolved only when a FaultPlan is attached, so the
  // fault-free metrics export stays byte-identical).
  metrics::CounterHandle m_suppressed;
  metrics::CounterHandle m_transfer_failures;
  metrics::CounterHandle m_crash_flushed;
  metrics::CounterHandle m_blackhole_absorbed;
  std::size_t crash_cursor = 0;

  // (deadline, kind, id): kind 0 = source token (id = msg), 1 = copy.
  using Expiry = std::tuple<Time, int, std::size_t>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;

  // Reused snapshot of a node's holdings, taken wherever the loop body
  // mutates the set it walks; one buffer serves every call site since the
  // snapshots never overlap in time.
  std::vector<std::size_t> holdings_scratch;

  NetworkSimReport report;

  bool buffer_full(NodeId v) const {
    return config->buffer_capacity != 0 &&
           load[v] >= config->buffer_capacity;
  }

  // Tries to admit one more item at `v`, applying the buffer policy.
  // Returns false if the node stays full (transfer must be refused).
  bool make_room(NodeId v, std::size_t msg) {
    if (!buffer_full(v)) return true;
    if (config->policy == BufferPolicy::kRejectNew) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    // kDropOldest: evict the relayed copy that has waited longest. Source
    // tokens are locally originated and never evicted, so if the buffer is
    // all tokens the transfer is refused anyway.
    std::size_t victim = SIZE_MAX;
    Time oldest = kTimeInfinity;
    for (std::size_t id : holdings[v]) {
      if (copies[id].alive && copies[id].arrival < oldest) {
        oldest = copies[id].arrival;
        victim = id;
      }
    }
    if (victim == SIZE_MAX) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    copies[victim].alive = false;
    holdings[v].erase(victim);
    --load[v];
    ++report.evicted_copies;
    m_evictions.inc();
    return true;
  }

  Time deadline_of(std::size_t msg) const {
    return messages[msg].start + messages[msg].ttl;
  }

  void inject(std::size_t m) {
    const auto& msg = messages[m];
    if (buffer_full(msg.src)) {
      report.outcomes[m].injection_failed = true;
      m_injection_failures.inc();
      return;
    }
    tokens[m].tickets = msg.copies;
    tokens[m].alive = true;
    ++load[msg.src];
    seen[m].insert(msg.src);
    expiries.emplace(deadline_of(m), 0, m);
  }

  void expire_until(Time t) {
    while (!expiries.empty() && std::get<0>(expiries.top()) < t) {
      auto [deadline, kind, id] = expiries.top();
      expiries.pop();
      if (kind == 0) {
        if (tokens[id].alive) {
          tokens[id].alive = false;
          --load[messages[id].src];
          ++report.expired_copies;
          m_expirations.inc();
        }
      } else if (copies[id].alive) {
        copies[id].alive = false;
        holdings[copies[id].holder].erase(id);
        --load[copies[id].holder];
        ++report.expired_copies;
        m_expirations.inc();
      }
    }
  }

  // Crash-reboots up to (and including) time t: the crashed node's
  // buffered copies — relayed copies and its own spray state — are
  // flushed. Lost, not leaked: a flushed copy simply ceases to exist.
  void flush_crashes_until(Time t) {
    const auto& events = config->faults->crashes();
    while (crash_cursor < events.size() &&
           events[crash_cursor].time <= t) {
      NodeId v = events[crash_cursor].node;
      ++crash_cursor;
      holdings_scratch.assign(holdings[v].begin(), holdings[v].end());
      for (std::size_t id : holdings_scratch) {
        if (!copies[id].alive) continue;
        copies[id].alive = false;
        holdings[v].erase(id);
        --load[v];
        ++report.crash_flushed_copies;
        m_crash_flushed.inc();
      }
      for (std::size_t m = 0; m < messages.size(); ++m) {
        if (tokens[m].alive && messages[m].src == v) {
          tokens[m].alive = false;
          --load[v];
          ++report.crash_flushed_copies;
          m_crash_flushed.inc();
        }
      }
    }
  }

  // Whether `receiver` is a valid next hop for message m at `hop`.
  bool qualifies(std::size_t m, std::size_t hop, NodeId receiver) const {
    const auto& msg = messages[m];
    if (seen[m].count(receiver) > 0) return false;  // Forward() dedup
    if (hop < msg.num_relays) {
      return directory->in_group(receiver, relay_groups[m][hop]);
    }
    return receiver == msg.dst;
  }

  // Attempts every transfer from `sender` to `receiver` at time t.
  void transfer_direction(NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    // Blackholes accept copies but never forward them.
    if (fp != nullptr && fp->is_blackhole(sender)) return;

    // Source token: hand a fresh copy into R_1.
    for (std::size_t m = 0; m < messages.size(); ++m) {
      if (!tokens[m].alive || messages[m].src != sender) continue;
      if (t > deadline_of(m)) continue;
      if (!qualifies(m, 0, receiver)) continue;
      // A failed handoff consumes no spray ticket and leaves the receiver
      // eligible for a retry at the next contact.
      if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
        ++report.transfer_failures;
        m_transfer_failures.inc();
        continue;
      }
      if (!make_room(receiver, m)) continue;
      std::size_t id = copies.size();
      copies.push_back({m, 1, receiver, t, true});
      holdings[receiver].insert(id);
      ++load[receiver];
      seen[m].insert(receiver);
      expiries.emplace(deadline_of(m), 1, id);
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - messages[m].start);
      if (fp != nullptr && fp->is_blackhole(receiver)) {
        ++report.blackhole_absorbed;
        m_blackhole_absorbed.inc();
      }
      if (--tokens[m].tickets == 0) {
        tokens[m].alive = false;
        --load[sender];
      }
      // A message with num_relays == 0 would deliver straight from the
      // token; the constructor rejects that case, so hop 1 is always a
      // relay position here.
    }

    // Relayed copies.
    holdings_scratch.assign(holdings[sender].begin(), holdings[sender].end());
    for (std::size_t id : holdings_scratch) {
      Copy& c = copies[id];
      if (!c.alive) continue;
      std::size_t m = c.msg;
      if (t > deadline_of(m)) continue;
      if (!qualifies(m, c.hop, receiver)) continue;
      // Mid-contact failure: the sender keeps its copy; retry later.
      if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
        ++report.transfer_failures;
        m_transfer_failures.inc();
        continue;
      }

      if (receiver == messages[m].dst && c.hop == messages[m].num_relays) {
        // Delivery: the destination consumes the message (no buffer cost).
        ++report.outcomes[m].transmissions;
        ++report.total_transmissions;
        m_transfers.inc();
        m_hop_delay.observe(t - c.arrival);
        seen[m].insert(receiver);
        if (!report.outcomes[m].delivered) {
          report.outcomes[m].delivered = true;
          report.outcomes[m].delay = t - messages[m].start;
          m_deliveries.inc();
          m_delivery_delay.observe(t - messages[m].start);
        }
        c.alive = false;
        holdings[sender].erase(id);
        --load[sender];
        continue;
      }

      if (!make_room(receiver, m)) continue;
      if (!c.alive) continue;  // evicted by make_room on its own holder
      // Forward and free the sender's slot (single ticket per copy).
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - c.arrival);
      holdings[sender].erase(id);
      --load[sender];
      c.holder = receiver;
      c.arrival = t;
      ++c.hop;
      holdings[receiver].insert(id);
      ++load[receiver];
      seen[m].insert(receiver);
      if (fp != nullptr && fp->is_blackhole(receiver)) {
        ++report.blackhole_absorbed;
        m_blackhole_absorbed.inc();
      }
    }
  }

  NetworkSimReport run(util::Rng& rng) {
    metrics::Registry* reg = config->metrics;
    m_transfers = metrics::counter(reg, "sim.transfers");
    m_rejections = metrics::counter(reg, "sim.buffer_rejections");
    m_evictions = metrics::counter(reg, "sim.evictions");
    m_expirations = metrics::counter(reg, "sim.expirations");
    m_injection_failures = metrics::counter(reg, "sim.injection_failures");
    m_deliveries = metrics::counter(reg, "sim.deliveries");
    m_hop_delay = metrics::histogram(reg, "sim.hop_delay");
    m_delivery_delay = metrics::histogram(reg, "sim.delivery_delay");
    metrics::counter(reg, "sim.messages").inc(messages.size());
    if (config->faults != nullptr) {
      // Resolved only under an active fault plan so the fault-free metrics
      // export carries no faults.* entries (byte-identity contract).
      m_suppressed = metrics::counter(reg, "faults.contacts_suppressed");
      m_transfer_failures = metrics::counter(reg, "faults.transfer_failures");
      m_crash_flushed = metrics::counter(reg, "faults.crash_flushed_copies");
      m_blackhole_absorbed = metrics::counter(reg, "faults.blackhole_absorbed");
      metrics::counter(reg, "faults.blackhole_nodes")
          .inc(config->faults->blackhole_count());
    }

    report.outcomes.assign(messages.size(), {});
    tokens.assign(messages.size(), SourceToken{0, false});
    seen.assign(messages.size(), {});
    holdings.assign(trace->node_count(), {});
    load.assign(trace->node_count(), 0);

    // Select relay groups per message.
    relay_groups.resize(messages.size());
    for (std::size_t m = 0; m < messages.size(); ++m) {
      relay_groups[m] = directory->select_relay_groups(
          messages[m].src, messages[m].dst, messages[m].num_relays, rng);
    }

    // Injection order by start time.
    std::vector<std::size_t> order(messages.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return messages[a].start < messages[b].start;
    });

    faults::FaultPlan* fp = config->faults;
    std::size_t next_injection = 0;
    for (const auto& event : trace->events()) {
      while (next_injection < order.size() &&
             messages[order[next_injection]].start <= event.time) {
        expire_until(messages[order[next_injection]].start);
        if (fp != nullptr) flush_crashes_until(messages[order[next_injection]].start);
        inject(order[next_injection]);
        ++next_injection;
      }
      expire_until(event.time);
      if (fp != nullptr) {
        flush_crashes_until(event.time);
        if (!fp->node_up(event.a, event.time) ||
            !fp->node_up(event.b, event.time)) {
          ++report.suppressed_contacts;
          m_suppressed.inc();
          continue;
        }
      }
      transfer_direction(event.a, event.b, event.time);
      transfer_direction(event.b, event.a, event.time);
    }
    // Messages injected after the last event simply never move.
    while (next_injection < order.size()) {
      inject(order[next_injection]);
      ++next_injection;
    }
    return std::move(report);
  }
};

}  // namespace

NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng) {
  if (trace.node_count() != directory.node_count()) {
    throw std::invalid_argument("run_network_sim: node count mismatch");
  }
  if (config.faults != nullptr &&
      config.faults->node_count() != trace.node_count()) {
    throw std::invalid_argument("run_network_sim: fault plan node count mismatch");
  }
  for (const auto& m : messages) {
    if (m.src == m.dst) {
      throw std::invalid_argument("run_network_sim: src == dst");
    }
    if (m.src >= trace.node_count() || m.dst >= trace.node_count()) {
      throw std::invalid_argument("run_network_sim: unknown endpoint");
    }
    if (m.num_relays == 0) {
      throw std::invalid_argument("run_network_sim: need >= 1 relay group");
    }
    if (m.copies == 0) {
      throw std::invalid_argument("run_network_sim: copies must be >= 1");
    }
  }
  Engine engine;
  engine.trace = &trace;
  engine.directory = &directory;
  engine.config = &config;
  engine.messages = std::move(messages);
  return engine.run(rng);
}

}  // namespace odtn::sim
