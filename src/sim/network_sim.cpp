#include "sim/network_sim.hpp"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "faults/faults.hpp"
#include "recovery/recovery.hpp"
#include "routing/utility_forwarder.hpp"

namespace odtn::sim {

void ContactBandwidth::validate() const {
  if (mean_duration < 0.0 || transfer_time < 0.0) {
    throw std::invalid_argument(
        "bandwidth: duration model fields must be >= 0");
  }
  if ((mean_duration > 0.0) != (transfer_time > 0.0)) {
    throw std::invalid_argument(
        "bandwidth: mean_duration and transfer_time must be set together");
  }
}

double NetworkSimReport::delivery_rate() const {
  if (outcomes.empty()) return 0.0;
  std::size_t delivered = 0;
  for (const auto& o : outcomes) delivered += o.delivered;
  return static_cast<double>(delivered) / static_cast<double>(outcomes.size());
}

double NetworkSimReport::mean_delay() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& o : outcomes) {
    if (o.delivered) {
      sum += o.delay;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

namespace {

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

struct Copy {
  std::size_t msg;
  std::size_t hop;  // onion groups traversed so far (1..K)
  NodeId holder;
  Time arrival = 0.0;  // when the current holder received it
  bool alive = true;
  /// Utility-forwarder mode only: spray tickets this copy still owns.
  std::size_t tickets = 1;
  /// First time an eligible transfer of this copy was deferred by contact
  /// bandwidth; kTimeInfinity = not queued (feeds "sim.queue_wait").
  Time queued_since = kTimeInfinity;
  /// Recovery generation that sent this copy: 0 = the original send, n =
  /// the n-th retransmission. Each generation routes through its own
  /// freshly sampled relay groups; in-flight copies keep theirs.
  std::uint32_t gen = 0;
};

struct SourceToken {
  std::size_t tickets;
  bool alive = true;
  Time queued_since = kTimeInfinity;
  /// Generation the source is currently spraying (see Copy::gen).
  std::uint32_t gen = 0;
};

struct Engine {
  const trace::ContactTrace* trace;
  const groups::GroupDirectory* directory;
  const NetworkSimConfig* config;

  std::vector<InjectedMessage> messages;
  std::vector<std::uint8_t> priorities;  // empty = all class 0
  std::vector<std::vector<GroupId>> relay_groups;  // per message
  std::vector<SourceToken> tokens;                 // per message
  std::vector<std::unordered_set<NodeId>> seen;    // per message

  std::vector<Copy> copies;
  std::vector<std::vector<NodeId>> copy_paths;  // record_paths only
  std::vector<std::set<std::size_t>> holdings;  // node -> copy ids
  std::vector<std::size_t> load;                // node -> buffered items

  // Scheduled drainage (bandwidth / priorities / utility forwarder / wire
  // cells); when false the engine runs the exact legacy per-direction
  // loops.
  bool scheduled = false;
  routing::UtilityForwarder* utility = nullptr;
  // Budget units one executed transfer consumes: 1 on the legacy path,
  // cells_per_message in wire mode (the budget is then cell-denominated).
  std::size_t cell_cost = 1;

  // Recovery layer (null = off; every recovery branch below is guarded on
  // this pointer so the zero-knob path is byte-identical to pre-recovery
  // builds: no RNG draws, no metrics entries, no behavior change).
  const recovery::RecoveryConfig* rec = nullptr;
  recovery::SuspicionTracker* suspicion = nullptr;
  std::optional<recovery::SuspicionTracker> own_tracker;
  std::size_t tracker_flips_at_start = 0;
  /// node -> delivery ACKs known (ordered: the exchange fold is
  /// deterministic and lint-clean).
  std::vector<std::set<std::size_t>> ack_known;
  std::vector<std::uint8_t> ack_exists;  // msg -> ACK record born at dst
  std::vector<std::uint8_t> src_acked;   // msg -> source learned the ACK
  std::vector<std::size_t> retx_attempts;      // msg -> retransmissions so far
  std::vector<double> retx_interval;           // msg -> current backoff interval
  std::vector<std::uint32_t> delivered_gen;    // msg -> generation that delivered
  /// msg -> relay groups of generation n at [n-1] (generation 0 lives in
  /// relay_groups, untouched by recovery).
  std::vector<std::vector<std::vector<GroupId>>> retx_groups;
  /// Per-message recovery RNG sub-streams: jitter and retry group
  /// resampling draw from derive_seed(recovery_seed, msg index), so the
  /// draw sequence is independent of event interleaving across messages
  /// and the main simulation RNG is never consulted.
  std::vector<util::Rng> msg_rng;
  // (due time, msg); at most one outstanding entry per message.
  std::priority_queue<std::pair<Time, std::size_t>,
                      std::vector<std::pair<Time, std::size_t>>,
                      std::greater<>>
      retx_due;
  recovery::SaturationWindow sat_window;
  std::vector<std::size_t> ack_diff_scratch;  // exchange_acks reuse
  // learn_ack's private holdings snapshot. It must NOT share
  // holdings_scratch: ACKs are born inside attempt_copy, which
  // transfer_direction reaches while iterating holdings_scratch.
  std::vector<std::size_t> ack_gc_scratch;

  // Observability handles (inert when config->metrics is null).
  metrics::CounterHandle m_transfers;
  metrics::CounterHandle m_rejections;
  metrics::CounterHandle m_evictions;
  metrics::CounterHandle m_expirations;
  metrics::CounterHandle m_injection_failures;
  metrics::CounterHandle m_deliveries;
  metrics::HistogramHandle m_hop_delay;
  metrics::HistogramHandle m_delivery_delay;
  // Fault accounting (resolved only when a FaultPlan is attached, so the
  // fault-free metrics export stays byte-identical).
  metrics::CounterHandle m_suppressed;
  metrics::CounterHandle m_transfer_failures;
  metrics::CounterHandle m_crash_flushed;
  metrics::CounterHandle m_blackhole_absorbed;
  // Congestion accounting (resolved only on the scheduled path — same
  // byte-identity contract as the fault handles).
  metrics::CounterHandle m_queue_deferred;
  metrics::CounterHandle m_contacts_saturated;
  metrics::HistogramHandle m_queue_wait;
  metrics::HistogramHandle m_contact_capacity;
  // Recovery accounting (resolved only when the recovery layer is
  // enabled — same byte-identity contract again).
  // Wire accounting (resolved only in wire mode — same contract).
  metrics::CounterHandle m_wire_cells;
  metrics::CounterHandle m_wire_bytes;
  metrics::CounterHandle m_retransmits;
  metrics::HistogramHandle m_ack_delay;
  metrics::CounterHandle m_shed;
  metrics::CounterHandle m_acks_created;
  metrics::CounterHandle m_acked_at_source;
  metrics::CounterHandle m_ack_gc;
  metrics::CounterHandle m_suspicion_flips;
  std::size_t crash_cursor = 0;

  // (deadline, kind, id): kind 0 = source token (id = msg), 1 = copy.
  using Expiry = std::tuple<Time, int, std::size_t>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;

  // Reused snapshot of a node's holdings, taken wherever the loop body
  // mutates the set it walks; one buffer serves every call site since the
  // snapshots never overlap in time.
  std::vector<std::size_t> holdings_scratch;

  // One contact's transfer candidates (scheduled path), reused.
  struct Cand {
    std::uint8_t pri;
    std::uint32_t seq;   // collection order = the legacy execution order
    std::uint8_t kind;   // 0 = source token, 1 = copy
    std::size_t id;      // msg index (kind 0) or copy id (kind 1)
    NodeId sender;
    NodeId receiver;
  };
  std::vector<Cand> cand_scratch;

  NetworkSimReport report;

  std::uint8_t pri(std::size_t m) const {
    return priorities.empty() ? 0 : priorities[m];
  }

  bool buffer_full(NodeId v) const {
    return config->buffer_capacity != 0 &&
           load[v] >= config->buffer_capacity;
  }

  // Tries to admit one more item at `v`, applying the buffer policy.
  // Returns false if the node stays full (transfer must be refused).
  bool make_room(NodeId v, std::size_t msg) {
    if (!buffer_full(v)) return true;
    if (config->policy == BufferPolicy::kRejectNew) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    // kDropOldest: evict the relayed copy that has waited longest.
    // Locally-originated state is never evicted: source tokens are not
    // copies at all, and (utility mode) a copy still held by its own
    // source is skipped. Tie-break on equal arrival times: the scan walks
    // the ordered holdings set and keeps the *first* minimum, so the
    // lowest copy id — the earliest-created copy — wins deterministically.
    std::size_t victim = SIZE_MAX;
    Time oldest = kTimeInfinity;
    for (std::size_t id : holdings[v]) {
      if (!copies[id].alive) continue;
      if (copies[id].holder == messages[copies[id].msg].src) continue;
      if (copies[id].arrival < oldest) {
        oldest = copies[id].arrival;
        victim = id;
      }
    }
    if (victim == SIZE_MAX) {
      ++report.outcomes[msg].buffer_rejections;
      ++report.total_buffer_rejections;
      m_rejections.inc();
      return false;
    }
    copies[victim].alive = false;
    holdings[v].erase(victim);
    --load[v];
    ++report.evicted_copies;
    m_evictions.inc();
    return true;
  }

  Time deadline_of(std::size_t msg) const {
    return messages[msg].start + messages[msg].ttl;
  }

  /// Relay groups of one recovery generation of message m (generation 0
  /// is the original selection; later generations were freshly sampled at
  /// retransmission time).
  const std::vector<GroupId>& groups_of(std::size_t m,
                                        std::uint32_t gen) const {
    return gen == 0 ? relay_groups[m] : retx_groups[m][gen - 1];
  }

  /// Overload shedding (recovery layer): admission control may refuse a
  /// sheddable-priority message when either congestion signal crossed its
  /// threshold. Pure function of simulated state — no RNG.
  bool should_shed(std::size_t m) const {
    if (rec == nullptr || !rec->shedding()) return false;
    if (pri(m) < rec->shed_priority_floor) return false;
    if (rec->shed_occupancy > 0.0 && config->buffer_capacity > 0 &&
        static_cast<double>(load[messages[m].src]) >=
            rec->shed_occupancy *
                static_cast<double>(config->buffer_capacity)) {
      return true;
    }
    return rec->shed_saturation > 0.0 &&
           sat_window.fraction() >= rec->shed_saturation;
  }

  void inject(std::size_t m) {
    const auto& msg = messages[m];
    if (should_shed(m)) {
      report.outcomes[m].shed = true;
      ++report.shed_messages;
      m_shed.inc();
      return;
    }
    if (buffer_full(msg.src)) {
      report.outcomes[m].injection_failed = true;
      m_injection_failures.inc();
      return;
    }
    if (rec != nullptr && rec->retx_timeout > 0.0) {
      retx_interval[m] = rec->retx_timeout;
      schedule_retx(m, msg.start);
    }
    if (utility != nullptr) {
      // Utility mode: the source holds a real copy carrying all L spray
      // tickets (no token/relay-group machinery).
      std::size_t id = copies.size();
      copies.push_back({m, 0, msg.src, msg.start, true, msg.copies});
      if (config->record_paths) copy_paths.emplace_back();
      holdings[msg.src].insert(id);
      ++load[msg.src];
      seen[m].insert(msg.src);
      expiries.emplace(deadline_of(m), 1, id);
      return;
    }
    tokens[m].tickets = msg.copies;
    tokens[m].alive = true;
    ++load[msg.src];
    seen[m].insert(msg.src);
    expiries.emplace(deadline_of(m), 0, m);
  }

  // Pops exactly one expiry-heap entry (the caller checked it is due).
  void expire_one() {
    auto [deadline, kind, id] = expiries.top();
    expiries.pop();
    if (kind == 0) {
      if (tokens[id].alive) {
        tokens[id].alive = false;
        --load[messages[id].src];
        ++report.expired_copies;
        m_expirations.inc();
      }
    } else if (copies[id].alive) {
      copies[id].alive = false;
      holdings[copies[id].holder].erase(id);
      --load[copies[id].holder];
      ++report.expired_copies;
      m_expirations.inc();
    }
  }

  // Processes exactly one crash-reboot event (the caller checked it is
  // due): the crashed node's buffered copies — relayed copies and its own
  // spray state — are flushed. Lost, not leaked: a flushed copy simply
  // ceases to exist. The node's learned ACK set survives (it is durable
  // metadata, not buffered payload).
  void flush_one_crash() {
    const auto& events = config->faults->crashes();
    NodeId v = events[crash_cursor].node;
    ++crash_cursor;
    holdings_scratch.assign(holdings[v].begin(), holdings[v].end());
    for (std::size_t id : holdings_scratch) {
      if (!copies[id].alive) continue;
      copies[id].alive = false;
      holdings[v].erase(id);
      --load[v];
      ++report.crash_flushed_copies;
      m_crash_flushed.inc();
    }
    for (std::size_t m = 0; m < messages.size(); ++m) {
      if (tokens[m].alive && messages[m].src == v) {
        tokens[m].alive = false;
        --load[v];
        ++report.crash_flushed_copies;
        m_crash_flushed.inc();
      }
    }
  }

  // Advances simulated time to t, interleaving TTL expirations (due
  // strictly before t) and crash-reboots (due at or before t) in global
  // timestamp order. The interleave matters under churn: a copy whose
  // holder crash-reboots at c and whose TTL runs out at e > c must be
  // reclaimed by the crash (crash_flushed_copies), not counted as expired
  // — and vice versa — so buffer-occupancy metrics and kDropOldest
  // pressure stay accurate between events. Ties (expiry == crash time)
  // expire first, matching the historical all-expiries-then-crashes pass.
  void advance_time(Time t) {
    if (config->faults == nullptr) {
      while (!expiries.empty() && std::get<0>(expiries.top()) < t) {
        expire_one();
      }
      return;
    }
    const auto& crashes = config->faults->crashes();
    for (;;) {
      const Time next_expiry = expiries.empty()
                                   ? kTimeInfinity
                                   : std::get<0>(expiries.top());
      const Time next_crash = crash_cursor < crashes.size()
                                  ? crashes[crash_cursor].time
                                  : kTimeInfinity;
      if (next_expiry < t && next_expiry <= next_crash) {
        expire_one();
      } else if (next_crash <= t) {
        flush_one_crash();
      } else {
        return;
      }
    }
  }

  // --- recovery layer -------------------------------------------------
  // Every method below is reached only with the layer enabled (rec !=
  // nullptr); the zero-knob engine never calls them.

  /// A copy of generation `gen` just delivered message m to `dst` via the
  /// final relay `sender`: the ACK record is born (exactly once per
  /// message) and both contact endpoints learn it immediately.
  void born_ack(std::size_t m, std::uint32_t gen, NodeId sender, NodeId dst,
                Time t) {
    if (rec == nullptr || !rec->acks || ack_exists[m]) return;
    ack_exists[m] = 1;
    delivered_gen[m] = gen;
    ++report.acks_created;
    m_acks_created.inc();
    learn_ack(dst, m, t);
    learn_ack(sender, m, t);
  }

  /// Node v learns the delivery ACK of message m: its outstanding copies
  /// of m are garbage-collected (vaccine), and — at the source — the
  /// pending retransmission is canceled, the ack delay recorded, and the
  /// delivering generation's groups exonerated in the suspicion tracker.
  void learn_ack(NodeId v, std::size_t m, Time t) {
    if (!ack_known[v].insert(m).second) return;
    ack_gc_scratch.assign(holdings[v].begin(), holdings[v].end());
    for (std::size_t id : ack_gc_scratch) {
      if (!copies[id].alive || copies[id].msg != m) continue;
      copies[id].alive = false;
      holdings[v].erase(id);
      --load[v];
      ++report.ack_gc_copies;
      m_ack_gc.inc();
    }
    if (messages[m].src != v) return;
    if (tokens[m].alive) {
      // The source stops spraying a message it knows was delivered.
      tokens[m].alive = false;
      --load[v];
      ++report.ack_gc_copies;
      m_ack_gc.inc();
    }
    if (!src_acked[m]) {
      src_acked[m] = 1;
      ++report.acked_at_source;
      m_acked_at_source.inc();
      m_ack_delay.observe(t - messages[m].start);
      if (suspicion != nullptr && utility == nullptr) {
        for (GroupId g : groups_of(m, delivered_gen[m])) {
          suspicion->record(g, /*acked=*/true);
        }
      }
    }
  }

  /// Anti-packet exchange at a surviving contact: both endpoints end up
  /// knowing the union of their ACK sets. Metadata-sized, so it consumes
  /// no contact bandwidth budget.
  void exchange_acks(NodeId a, NodeId b, Time t) {
    auto pull = [&](NodeId to, NodeId from) {
      ack_diff_scratch.clear();
      std::set_difference(ack_known[from].begin(), ack_known[from].end(),
                          ack_known[to].begin(), ack_known[to].end(),
                          std::back_inserter(ack_diff_scratch));
      for (std::size_t m : ack_diff_scratch) learn_ack(to, m, t);
    };
    pull(a, b);
    pull(b, a);
  }

  /// Arms the next retransmission timer for m from `from`, consuming one
  /// jitter draw from the message's recovery sub-stream. The interval
  /// grows by retx_backoff per attempt; timers past the message deadline
  /// or the attempt cap are not armed.
  void schedule_retx(std::size_t m, Time from) {
    double interval = retx_interval[m];
    if (rec->retx_jitter > 0.0) {
      interval *= 1.0 + rec->retx_jitter * (2.0 * msg_rng[m].uniform01() - 1.0);
    }
    retx_interval[m] *= rec->retx_backoff;
    const Time due = from + interval;
    if (due <= deadline_of(m) && retx_attempts[m] < rec->retx_max) {
      retx_due.emplace(due, m);
    }
  }

  /// Fires every due retransmission timer up to time t, in due-time order
  /// (ties by message index — the pair ordering of the heap).
  void process_retx_until(Time t) {
    while (!retx_due.empty() && retx_due.top().first <= t) {
      auto [due, m] = retx_due.top();
      retx_due.pop();
      if (src_acked[m]) continue;  // ACK arrived: retransmission canceled
      // The timeout is the sender's failure signal: the timed-out
      // generation's relay groups take a suspicion penalty.
      if (suspicion != nullptr && utility == nullptr) {
        for (GroupId g : groups_of(m, tokens[m].gen)) {
          suspicion->record(g, /*acked=*/false);
        }
      }
      if (retx_attempts[m] >= rec->retx_max) continue;
      retransmit(m, due);
      schedule_retx(m, due);
    }
  }

  /// Re-onions message m at time t: a fresh generation through freshly
  /// sampled relay groups (suspicion-biased when the tracker is on), and
  /// a full ticket allotment at the source. Utility mode re-injects a
  /// fresh spray copy instead (no relay groups to sample).
  void retransmit(std::size_t m, Time t) {
    const auto& msg = messages[m];
    ++retx_attempts[m];
    ++report.retransmissions;
    ++report.outcomes[m].retransmissions;
    m_retransmits.inc();
    if (utility != nullptr) {
      if (buffer_full(msg.src)) return;  // no room: the attempt is spent
      std::size_t id = copies.size();
      copies.push_back({m, 0, msg.src, t, true, msg.copies});
      if (config->record_paths) copy_paths.emplace_back();
      holdings[msg.src].insert(id);
      ++load[msg.src];
      expiries.emplace(deadline_of(m), 1, id);
      return;
    }
    retx_groups[m].push_back(
        suspicion != nullptr
            ? recovery::select_relay_groups_avoiding(
                  *directory, *suspicion, msg.src, msg.dst, msg.num_relays,
                  msg_rng[m])
            : directory->select_relay_groups(msg.src, msg.dst,
                                             msg.num_relays, msg_rng[m]));
    tokens[m].gen = static_cast<std::uint32_t>(retx_groups[m].size());
    tokens[m].tickets = msg.copies;
    if (!tokens[m].alive) {
      if (buffer_full(msg.src)) {
        tokens[m].tickets = 0;
        return;  // no room to re-enqueue: the attempt is spent
      }
      tokens[m].alive = true;
      ++load[msg.src];
      expiries.emplace(deadline_of(m), 0, m);
    }
  }

  // Whether `receiver` is a valid next hop for message m at `hop` of
  // recovery generation `gen` (always 0 without the recovery layer).
  bool qualifies(std::size_t m, std::uint32_t gen, std::size_t hop,
                 NodeId receiver) const {
    const auto& msg = messages[m];
    if (seen[m].count(receiver) > 0) return false;  // Forward() dedup
    if (hop < msg.num_relays) {
      return directory->in_group(receiver, groups_of(m, gen)[hop]);
    }
    return receiver == msg.dst;
  }

  // Flushes a completed queue-wait interval into "sim.queue_wait".
  void note_served(Time& queued_since, Time t) {
    if (queued_since != kTimeInfinity) {
      m_queue_wait.observe(t - queued_since);
      queued_since = kTimeInfinity;
    }
  }

  // record_paths bookkeeping: `receiver` just became the relay at 0-based
  // hop position `pos` for message m (one copy's path extends; the
  // per-message hop set dedups across copies).
  void record_relay(std::size_t m, std::size_t pos, NodeId receiver) {
    auto& rph = report.outcomes[m].relays_per_hop;
    if (rph.size() <= pos) rph.resize(pos + 1);
    auto& at = rph[pos];
    if (std::find(at.begin(), at.end(), receiver) == at.end()) {
      at.push_back(receiver);
    }
  }

  // --- transfer eligibility + execution ------------------------------
  // Split so the legacy per-direction loops and the scheduled (bandwidth/
  // priority) drainage share one set of semantics. An attempt_* helper
  // assumes eligibility was just checked and returns true iff a transfer
  // actually executed (the unit that consumes contact bandwidth); fault
  // losses and buffer refusals return false and consume nothing.

  bool token_eligible(std::size_t m, NodeId sender, NodeId receiver,
                      Time t) const {
    return tokens[m].alive && messages[m].src == sender &&
           t <= deadline_of(m) && qualifies(m, tokens[m].gen, 0, receiver);
  }

  bool attempt_token(std::size_t m, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    // A failed handoff consumes no spray ticket and leaves the receiver
    // eligible for a retry at the next contact.
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      return false;
    }
    if (!make_room(receiver, m)) return false;
    std::size_t id = copies.size();
    copies.push_back({m, 1, receiver, t, true, 1, kTimeInfinity,
                      tokens[m].gen});
    if (config->record_paths) {
      copy_paths.emplace_back(1, receiver);
      record_relay(m, 0, receiver);
    }
    holdings[receiver].insert(id);
    ++load[receiver];
    seen[m].insert(receiver);
    expiries.emplace(deadline_of(m), 1, id);
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - messages[m].start);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    if (--tokens[m].tickets == 0) {
      tokens[m].alive = false;
      --load[sender];
    }
    note_served(tokens[m].queued_since, t);
    // A message with num_relays == 0 would deliver straight from the
    // token; the constructor rejects that case, so hop 1 is always a
    // relay position here.
    return true;
  }

  bool copy_eligible(std::size_t id, NodeId sender, NodeId receiver,
                     Time t) const {
    const Copy& c = copies[id];
    return c.alive && c.holder == sender && t <= deadline_of(c.msg) &&
           qualifies(c.msg, c.gen, c.hop, receiver);
  }

  bool attempt_copy(std::size_t id, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    Copy& c = copies[id];
    std::size_t m = c.msg;
    // Mid-contact failure: the sender keeps its copy; retry later.
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      return false;
    }

    if (receiver == messages[m].dst && c.hop == messages[m].num_relays) {
      // Delivery: the destination consumes the message (no buffer cost).
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - c.arrival);
      seen[m].insert(receiver);
      if (!report.outcomes[m].delivered) {
        report.outcomes[m].delivered = true;
        report.outcomes[m].delay = t - messages[m].start;
        m_deliveries.inc();
        m_delivery_delay.observe(t - messages[m].start);
        if (config->record_paths) {
          report.outcomes[m].relay_path = copy_paths[id];
        }
      }
      const std::uint32_t gen = c.gen;
      c.alive = false;
      holdings[sender].erase(id);
      --load[sender];
      note_served(c.queued_since, t);
      born_ack(m, gen, sender, receiver, t);
      return true;
    }

    if (!make_room(receiver, m)) return false;
    if (!c.alive) return false;  // evicted by make_room on its own holder
    // Forward and free the sender's slot (single ticket per copy).
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - c.arrival);
    holdings[sender].erase(id);
    --load[sender];
    c.holder = receiver;
    c.arrival = t;
    if (config->record_paths) {
      record_relay(m, c.hop, receiver);
      copy_paths[id].push_back(receiver);
    }
    ++c.hop;
    holdings[receiver].insert(id);
    ++load[receiver];
    seen[m].insert(receiver);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    note_served(c.queued_since, t);
    return true;
  }

  // Utility-forwarder mode: a copy may deliver to the destination or
  // binary-split its spray tickets toward a higher-utility, uncongested
  // custodian. Decisions are pure functions of simulated state (no RNG).
  bool ucopy_eligible(std::size_t id, NodeId sender, NodeId receiver,
                      Time t) const {
    const Copy& c = copies[id];
    if (!c.alive || c.holder != sender || t > deadline_of(c.msg)) {
      return false;
    }
    std::size_t m = c.msg;
    if (seen[m].count(receiver) > 0) return false;
    if (receiver == messages[m].dst) return true;
    return c.tickets > 1 &&
           utility->should_replicate(sender, receiver, messages[m].dst,
                                     load[receiver],
                                     config->buffer_capacity);
  }

  bool attempt_ucopy(std::size_t id, NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    std::size_t m = copies[id].msg;
    if (fp != nullptr && fp->transfer_fails(sender, receiver)) {
      ++report.transfer_failures;
      m_transfer_failures.inc();
      utility->observe_transfer_outcome(receiver, false);
      return false;
    }

    if (receiver == messages[m].dst) {
      Copy& c = copies[id];
      ++report.outcomes[m].transmissions;
      ++report.total_transmissions;
      m_transfers.inc();
      m_hop_delay.observe(t - c.arrival);
      seen[m].insert(receiver);
      if (!report.outcomes[m].delivered) {
        report.outcomes[m].delivered = true;
        report.outcomes[m].delay = t - messages[m].start;
        m_deliveries.inc();
        m_delivery_delay.observe(t - messages[m].start);
        if (config->record_paths) {
          report.outcomes[m].relay_path = copy_paths[id];
        }
      }
      const std::uint32_t gen = c.gen;
      c.alive = false;
      holdings[sender].erase(id);
      --load[sender];
      note_served(c.queued_since, t);
      born_ack(m, gen, sender, receiver, t);
      utility->observe_transfer_outcome(receiver, true);
      return true;
    }

    if (!make_room(receiver, m)) return false;
    if (!copies[id].alive) return false;  // evicted out from under us
    // Replicate: the receiver takes half the tickets, the sender keeps
    // the rest (spray-and-wait binary splitting).
    const std::size_t give = copies[id].tickets / 2;  // >= 1: tickets > 1
    const std::size_t hop = copies[id].hop;
    std::size_t id2 = copies.size();
    copies.push_back({m, hop + 1, receiver, t, true, give});
    if (config->record_paths) {
      copy_paths.push_back(copy_paths[id]);
      copy_paths[id2].push_back(receiver);
      record_relay(m, hop, receiver);
    }
    Copy& c = copies[id];  // re-resolve: push_back may reallocate
    c.tickets -= give;
    holdings[receiver].insert(id2);
    ++load[receiver];
    seen[m].insert(receiver);
    expiries.emplace(deadline_of(m), 1, id2);
    ++report.outcomes[m].transmissions;
    ++report.total_transmissions;
    m_transfers.inc();
    m_hop_delay.observe(t - c.arrival);
    if (fp != nullptr && fp->is_blackhole(receiver)) {
      ++report.blackhole_absorbed;
      m_blackhole_absorbed.inc();
    }
    note_served(c.queued_since, t);
    utility->observe_transfer_outcome(receiver, true);
    return true;
  }

  // Attempts every transfer from `sender` to `receiver` at time t — the
  // legacy unlimited-bandwidth drainage (exact historical order: source
  // tokens in message order, then relayed copies in copy-id order).
  void transfer_direction(NodeId sender, NodeId receiver, Time t) {
    faults::FaultPlan* fp = config->faults;
    // Blackholes accept copies but never forward them.
    if (fp != nullptr && fp->is_blackhole(sender)) return;

    // Source token: hand a fresh copy into R_1.
    for (std::size_t m = 0; m < messages.size(); ++m) {
      if (!token_eligible(m, sender, receiver, t)) continue;
      attempt_token(m, sender, receiver, t);
    }

    // Relayed copies.
    holdings_scratch.assign(holdings[sender].begin(), holdings[sender].end());
    for (std::size_t id : holdings_scratch) {
      if (!copy_eligible(id, sender, receiver, t)) continue;
      attempt_copy(id, sender, receiver, t);
    }
  }

  // Scheduled drainage: both directions' candidates are collected against
  // the state at contact start (collection order = the legacy execution
  // order), sorted by (priority, collection order), and executed within
  // the shared bandwidth budget. Eligibility is re-checked at execution —
  // earlier transfers may have evicted a candidate or consumed a token —
  // and eligible candidates past the budget are deferred to a later
  // contact (that wait is "sim.queue_wait"). With a uniform priority
  // class and an unlimited budget this executes the identical transfer
  // sequence as the two legacy transfer_direction passes. In wire mode
  // each executed transfer spends cell_cost budget units (the budget is
  // cell-denominated) and lands in the sim.wire_* accounting.
  void transfer_scheduled(NodeId a, NodeId b, Time t, std::size_t budget) {
    faults::FaultPlan* fp = config->faults;
    cand_scratch.clear();
    std::uint32_t seq = 0;
    auto collect = [&](NodeId sender, NodeId receiver) {
      if (fp != nullptr && fp->is_blackhole(sender)) return;
      if (utility != nullptr) {
        for (std::size_t id : holdings[sender]) {
          if (!ucopy_eligible(id, sender, receiver, t)) continue;
          cand_scratch.push_back(
              {pri(copies[id].msg), seq++, 1, id, sender, receiver});
        }
        return;
      }
      for (std::size_t m = 0; m < messages.size(); ++m) {
        if (!token_eligible(m, sender, receiver, t)) continue;
        cand_scratch.push_back({pri(m), seq++, 0, m, sender, receiver});
      }
      for (std::size_t id : holdings[sender]) {
        if (!copy_eligible(id, sender, receiver, t)) continue;
        cand_scratch.push_back(
            {pri(copies[id].msg), seq++, 1, id, sender, receiver});
      }
    };
    collect(a, b);
    collect(b, a);
    // (pri, seq) pairs are unique, so plain sort is a total order.
    std::sort(cand_scratch.begin(), cand_scratch.end(),
              [](const Cand& x, const Cand& y) {
                if (x.pri != y.pri) return x.pri < y.pri;
                return x.seq < y.seq;
              });

    std::size_t executed = 0;
    bool saturated = false;
    for (const Cand& c : cand_scratch) {
      const bool eligible =
          utility != nullptr ? ucopy_eligible(c.id, c.sender, c.receiver, t)
          : c.kind == 0      ? token_eligible(c.id, c.sender, c.receiver, t)
                             : copy_eligible(c.id, c.sender, c.receiver, t);
      if (!eligible) continue;
      // Budget check in cost units (cells in wire mode, transfers
      // otherwise); at cell_cost == 1 this is the legacy
      // `executed >= budget`.
      if (executed + cell_cost > budget) {
        // Out of bandwidth: the item starts (or continues) queueing.
        saturated = true;
        ++report.queue_deferred;
        m_queue_deferred.inc();
        Time& qs = c.kind == 0 ? tokens[c.id].queued_since
                               : copies[c.id].queued_since;
        if (qs == kTimeInfinity) qs = t;
        continue;
      }
      const bool done =
          utility != nullptr ? attempt_ucopy(c.id, c.sender, c.receiver, t)
          : c.kind == 0      ? attempt_token(c.id, c.sender, c.receiver, t)
                             : attempt_copy(c.id, c.sender, c.receiver, t);
      if (done) {
        executed += cell_cost;
        if (config->cells_per_message > 0) {
          report.wire_cells += config->cells_per_message;
          report.wire_bytes += config->cells_per_message * config->cell_size;
          m_wire_cells.inc(config->cells_per_message);
          m_wire_bytes.inc(config->cells_per_message * config->cell_size);
        }
      }
    }
    if (executed > report.max_contact_transfers) {
      report.max_contact_transfers = executed;
    }
    if (saturated) {
      ++report.contacts_saturated;
      m_contacts_saturated.inc();
    }
    if (rec != nullptr && rec->shed_saturation > 0.0) {
      sat_window.record(saturated);
    }
  }

  NetworkSimReport run(util::Rng& rng) {
    utility = config->utility;
    const bool bandwidth_on = config->bandwidth.enabled();
    const bool wire_on = config->cells_per_message > 0;
    if (wire_on) cell_cost = config->cells_per_message;
    bool priorities_on = false;
    for (std::uint8_t p : priorities) priorities_on |= (p != 0);
    scheduled = bandwidth_on || priorities_on || utility != nullptr || wire_on;
    rec = (config->recovery != nullptr && config->recovery->enabled())
              ? config->recovery
              : nullptr;

    metrics::Registry* reg = config->metrics;
    m_transfers = metrics::counter(reg, "sim.transfers");
    m_rejections = metrics::counter(reg, "sim.buffer_rejections");
    m_evictions = metrics::counter(reg, "sim.evictions");
    m_expirations = metrics::counter(reg, "sim.expirations");
    m_injection_failures = metrics::counter(reg, "sim.injection_failures");
    m_deliveries = metrics::counter(reg, "sim.deliveries");
    m_hop_delay = metrics::histogram(reg, "sim.hop_delay");
    m_delivery_delay = metrics::histogram(reg, "sim.delivery_delay");
    metrics::counter(reg, "sim.messages").inc(messages.size());
    if (config->faults != nullptr) {
      // Resolved only under an active fault plan so the fault-free metrics
      // export carries no faults.* entries (byte-identity contract).
      m_suppressed = metrics::counter(reg, "faults.contacts_suppressed");
      m_transfer_failures = metrics::counter(reg, "faults.transfer_failures");
      m_crash_flushed = metrics::counter(reg, "faults.crash_flushed_copies");
      m_blackhole_absorbed = metrics::counter(reg, "faults.blackhole_absorbed");
      metrics::counter(reg, "faults.blackhole_nodes")
          .inc(config->faults->blackhole_count());
    }
    if (scheduled) {
      // Same contract: the unloaded export carries no sim.queue_* entries.
      m_queue_deferred = metrics::counter(reg, "sim.queue_deferred");
      m_contacts_saturated = metrics::counter(reg, "sim.contacts_saturated");
      m_queue_wait = metrics::histogram(reg, "sim.queue_wait");
      if (bandwidth_on) {
        m_contact_capacity = metrics::histogram(reg, "sim.contact_capacity");
      }
      if (wire_on) {
        // And once more: the wire-off export carries no sim.wire_* entries.
        m_wire_cells = metrics::counter(reg, "sim.wire_cells");
        m_wire_bytes = metrics::counter(reg, "sim.wire_bytes");
      }
    }
    if (rec != nullptr) {
      // Same contract once more: the recovery-free export carries no
      // recovery.* entries.
      m_retransmits = metrics::counter(reg, "recovery.retransmits");
      m_ack_delay = metrics::histogram(reg, "recovery.ack_delay");
      m_shed = metrics::counter(reg, "recovery.shed_messages");
      m_acks_created = metrics::counter(reg, "recovery.acks_created");
      m_acked_at_source = metrics::counter(reg, "recovery.acked_at_source");
      m_ack_gc = metrics::counter(reg, "recovery.ack_gc_copies");
      m_suspicion_flips = metrics::counter(reg, "recovery.suspicion_flips");

      ack_known.assign(trace->node_count(), {});
      ack_exists.assign(messages.size(), 0);
      src_acked.assign(messages.size(), 0);
      delivered_gen.assign(messages.size(), 0);
      if (rec->retx_timeout > 0.0) {
        retx_attempts.assign(messages.size(), 0);
        retx_interval.assign(messages.size(), 0.0);
        retx_groups.assign(messages.size(), {});
        msg_rng.reserve(messages.size());
        for (std::size_t m = 0; m < messages.size(); ++m) {
          msg_rng.emplace_back(util::derive_seed(config->recovery_seed, m));
        }
      }
      if (rec->suspicion_alpha > 0.0) {
        suspicion = config->suspicion;
        if (suspicion == nullptr) {
          own_tracker.emplace(rec->suspicion_alpha, rec->suspicion_threshold);
          suspicion = &*own_tracker;
        }
        tracker_flips_at_start = suspicion->flips();
      }
      if (rec->shed_saturation > 0.0) {
        sat_window = recovery::SaturationWindow();
      }
    }

    report.outcomes.assign(messages.size(), {});
    tokens.assign(messages.size(), SourceToken{0, false, kTimeInfinity});
    seen.assign(messages.size(), {});
    holdings.assign(trace->node_count(), {});
    load.assign(trace->node_count(), 0);

    // Select relay groups per message (skipped — with no RNG drawn — in
    // utility-forwarder mode, which routes without onion groups).
    if (utility == nullptr) {
      relay_groups.resize(messages.size());
      for (std::size_t m = 0; m < messages.size(); ++m) {
        relay_groups[m] = directory->select_relay_groups(
            messages[m].src, messages[m].dst, messages[m].num_relays, rng);
      }
    }

    // Injection order by start time.
    std::vector<std::size_t> order(messages.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return messages[a].start < messages[b].start;
    });

    faults::FaultPlan* fp = config->faults;
    std::size_t next_injection = 0;
    for (const auto& event : trace->events()) {
      while (next_injection < order.size() &&
             messages[order[next_injection]].start <= event.time) {
        advance_time(messages[order[next_injection]].start);
        if (rec != nullptr && rec->retx_timeout > 0.0) {
          process_retx_until(messages[order[next_injection]].start);
        }
        inject(order[next_injection]);
        ++next_injection;
      }
      advance_time(event.time);
      if (rec != nullptr && rec->retx_timeout > 0.0) {
        process_retx_until(event.time);
      }
      if (fp != nullptr) {
        if (!fp->node_up(event.a, event.time) ||
            !fp->node_up(event.b, event.time)) {
          ++report.suppressed_contacts;
          m_suppressed.inc();
          continue;
        }
      }
      if (rec != nullptr && rec->acks) {
        // Anti-packets ride every surviving contact, ahead of payload
        // transfers: a vaccine may free buffer space the transfers below
        // then use.
        exchange_acks(event.a, event.b, event.time);
      }
      if (utility != nullptr) {
        // The forwarder learns from every surviving contact, including
        // the one it is about to route over.
        utility->observe_contact(event.a, event.b, event.time);
      }
      if (scheduled) {
        std::size_t budget = kUnlimited;
        if (bandwidth_on) {
          const auto& bw = config->bandwidth;
          if (bw.mean_duration > 0.0) {
            const double duration = rng.exponential(1.0 / bw.mean_duration);
            budget = static_cast<std::size_t>(duration / bw.transfer_time);
          } else {
            budget = bw.messages_per_contact;
          }
          m_contact_capacity.observe(static_cast<double>(budget));
        }
        transfer_scheduled(event.a, event.b, event.time, budget);
      } else {
        transfer_direction(event.a, event.b, event.time);
        transfer_direction(event.b, event.a, event.time);
      }
    }
    // Messages injected after the last event never move, but simulated
    // time still advances to each injection instant: expired and
    // crash-flushed copies are reclaimed first, so the source's
    // buffer-occupancy check sees live copies only (a stale-buffer
    // injection failure here would be an accounting artifact).
    while (next_injection < order.size()) {
      advance_time(messages[order[next_injection]].start);
      inject(order[next_injection]);
      ++next_injection;
    }
    if (suspicion != nullptr) {
      report.suspicion_flips = suspicion->flips() - tracker_flips_at_start;
      m_suspicion_flips.inc(report.suspicion_flips);
    }
    return std::move(report);
  }
};

}  // namespace

NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng) {
  return run_network_sim(trace, directory, std::move(messages), {}, config,
                         rng);
}

NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 std::vector<std::uint8_t> priorities,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng) {
  if (trace.node_count() != directory.node_count()) {
    throw std::invalid_argument("run_network_sim: node count mismatch");
  }
  if (config.faults != nullptr &&
      config.faults->node_count() != trace.node_count()) {
    throw std::invalid_argument("run_network_sim: fault plan node count mismatch");
  }
  if (!priorities.empty() && priorities.size() != messages.size()) {
    throw std::invalid_argument(
        "run_network_sim: priorities must be empty or parallel to messages");
  }
  if (config.cells_per_message > 0 && config.cell_size == 0) {
    throw std::invalid_argument(
        "run_network_sim: wire mode needs cell_size > 0");
  }
  config.bandwidth.validate();
  if (config.recovery != nullptr) {
    config.recovery->validate();
  }
  const bool utility_mode = config.utility != nullptr;
  if (utility_mode &&
      config.utility->node_count() != trace.node_count()) {
    throw std::invalid_argument(
        "run_network_sim: utility forwarder node count mismatch");
  }
  for (const auto& m : messages) {
    if (m.src == m.dst) {
      throw std::invalid_argument("run_network_sim: src == dst");
    }
    if (m.src >= trace.node_count() || m.dst >= trace.node_count()) {
      throw std::invalid_argument("run_network_sim: unknown endpoint");
    }
    if (!utility_mode && m.num_relays == 0) {
      throw std::invalid_argument("run_network_sim: need >= 1 relay group");
    }
    if (m.copies == 0) {
      throw std::invalid_argument("run_network_sim: copies must be >= 1");
    }
  }
  Engine engine;
  engine.trace = &trace;
  engine.directory = &directory;
  engine.config = &config;
  engine.messages = std::move(messages);
  engine.priorities = std::move(priorities);
  return engine.run(rng);
}

}  // namespace odtn::sim
