// Whole-network discrete-event simulation: many concurrent messages over
// one shared contact process, with finite per-node buffers.
//
// The paper's analysis (like most DTN analyses) models one message at a
// time with infinite buffers. This engine lifts both assumptions so the
// library can answer deployment questions the closed forms cannot: what
// happens to delivery when relays run out of buffer space under load?
// (bench/ablation_buffer_contention quantifies it.)
//
// Protocol semantics follow Algorithms 1-2: single-copy onion forwarding
// per message, or multi-copy with source tickets handed to members of the
// first relay group (Algorithm 2's literal reading). A transfer happens at
// a contact (a, b) iff b is in the message's next onion group (or is the
// destination on the last hop), b does not already hold or relay the
// message, and b has buffer space.
//
// Under sustained load (odtn::traffic) two more dimensions open up:
//   * finite contact bandwidth — each contact carries at most a budget of
//     transfers (fixed, or floor(duration / transfer_time) with contact
//     durations drawn Exp(mean_duration)); eligible transfers beyond the
//     budget wait for a later contact (queueing delay, "sim.queue_*"
//     metrics);
//   * priority classes — transfers drain in (priority, arrival-order)
//     order, so an urgent class is never starved behind bulk traffic at
//     the same contact.
// With bandwidth off, priorities uniform, and no utility forwarder, the
// engine runs the exact historical code path: behavior, metrics export,
// and RNG draw order are byte-identical to builds before the load layer.
#pragma once

#include <cstdint>
#include <vector>

#include "groups/group_directory.hpp"
#include "metrics/metrics.hpp"
#include "routing/types.hpp"
#include "trace/contact_trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::faults {
class FaultPlan;
}
namespace odtn::recovery {
struct RecoveryConfig;
class SuspicionTracker;
}
namespace odtn::routing {
class UtilityForwarder;
}

namespace odtn::sim {

/// What a full node does when offered another message (classic DTN buffer
/// management policies).
enum class BufferPolicy {
  kRejectNew,   // refuse the transfer (the sender keeps its copy)
  kDropOldest,  // evict the longest-buffered relayed copy to admit the new
                // one (locally-originated messages are never evicted).
                // Tie-break on equal buffered-since times: the lowest copy
                // id, i.e. the earliest-created copy — explicitly
                // deterministic (holdings are ordered sets and the scan
                // keeps the first minimum).
};

/// Finite contact bandwidth: how many transfers one contact event can
/// carry. Both directions of the contact share the budget.
struct ContactBandwidth {
  /// Fixed budget per contact. Used when the duration model below is off.
  std::size_t messages_per_contact = 0;
  /// Duration model (takes precedence when both fields are > 0): each
  /// contact's duration is drawn Exp(mean `mean_duration`) from the
  /// simulation RNG and carries floor(duration / transfer_time) messages
  /// — possibly zero, a contact too brief to push anything through.
  double mean_duration = 0.0;
  double transfer_time = 0.0;

  /// Whether any bandwidth limit is configured. All-defaults = unlimited
  /// (the analytical model's assumption, and the byte-identity contract:
  /// a disabled model draws nothing from the RNG).
  bool enabled() const {
    return messages_per_contact > 0 ||
           (mean_duration > 0.0 && transfer_time > 0.0);
  }
  /// Throws std::invalid_argument (one-line message) on bad knobs.
  void validate() const;
};

struct NetworkSimConfig {
  /// Messages a node can buffer simultaneously; 0 = unlimited (the
  /// analytical model's assumption).
  std::size_t buffer_capacity = 0;
  BufferPolicy policy = BufferPolicy::kRejectNew;
  /// Observability sink (see odtn::metrics). When non-null the engine
  /// records "sim.*" counters (transfers, buffer rejections, evictions,
  /// expirations, deliveries) and the "sim.hop_delay" /
  /// "sim.delivery_delay" histograms. Null = instrumentation off.
  metrics::Registry* metrics = nullptr;
  /// Fault model consulted at contact time (see odtn::faults): contacts
  /// with a powered-down endpoint are suppressed, crash-reboots flush the
  /// crashed node's buffered copies, each attempted transfer may fail
  /// (sender keeps its copy and its spray ticket), and blackhole nodes
  /// accept copies but never forward them. Null = fault-free (the
  /// engine's behavior and RNG draw order are then byte-identical to a
  /// build without the fault layer). Mutable because the per-link loss
  /// processes advance state as the simulation queries them.
  faults::FaultPlan* faults = nullptr;
  /// Contact bandwidth limit; default-constructed = unlimited.
  ContactBandwidth bandwidth;
  /// Record each message's relay sets and the first delivered copy's path
  /// into MessageOutcome (the anonymity-under-load measurements need
  /// them). Off by default: the fields stay empty and cost nothing.
  bool record_paths = false;
  /// Non-null replaces onion-group forwarding with the congestion/
  /// utility-aware forwarder (routing::UtilityForwarder): no relay groups
  /// are selected (and no RNG is drawn for them), the source holds a copy
  /// with MessageSpec::copies spray tickets, tickets binary-split toward
  /// higher-utility custodians, and replication backs off from saturated
  /// receivers. The forwarder learns from every surviving contact in
  /// trace order, so runs stay bit-identical across thread counts.
  routing::UtilityForwarder* utility = nullptr;
  /// End-to-end reliability layer (see odtn::recovery): delivery ACKs
  /// spreading as anti-packets that garbage-collect outstanding copies,
  /// sender-side retransmission through freshly sampled relay groups with
  /// seeded backoff + jitter, suspicion-biased group selection, and
  /// priority-aware overload shedding. Null or all-knobs-zero = off: the
  /// engine draws no recovery RNG, registers no recovery.* metrics, and
  /// behaves byte-identically to a build without the layer.
  const recovery::RecoveryConfig* recovery = nullptr;
  /// Base seed for the per-message recovery RNG sub-streams (jitter and
  /// retry group resampling draw from derive_seed(recovery_seed, msg
  /// index), never from the simulation RNG — the main draw sequence is
  /// identical with recovery on or off). Callers derive it from the run's
  /// RNG stream only when recovery is enabled.
  std::uint64_t recovery_seed = 0;
  /// Optional externally-owned suspicion tracker (lets callers persist or
  /// inspect it); when null and suspicion_alpha > 0 the engine keeps a
  /// run-local tracker.
  recovery::SuspicionTracker* suspicion = nullptr;
  /// Wire-accurate accounting (src/circuit): each executed transfer
  /// crosses its contact as this many fixed-size cells, and the shared
  /// bandwidth budget is denominated in cells instead of messages. 0 =
  /// off, the historical one-unit transfer (at cost 1 and any budget the
  /// executed transfer sequence is unchanged — the engine checks
  /// `spent + cost > budget` which degenerates to the legacy
  /// `executed >= budget`). > 0 forces scheduled drainage so the cost can
  /// charge against the budget; "sim.wire_cells"/"sim.wire_bytes" register
  /// only then (byte-identity contract).
  std::size_t cells_per_message = 0;
  /// Bytes per cell, for the wire-bytes accounting (wire mode only).
  std::size_t cell_size = 0;
};

/// Messages share the routing-layer parameter block (src, dst, start, ttl,
/// K, L) instead of redeclaring it. The onion-specific fields of
/// MessageSpec (payload, destination_group_delivery) are ignored here: the
/// network simulator models forwarding decisions, not ciphertext.
using InjectedMessage = routing::MessageSpec;

struct MessageOutcome {
  bool delivered = false;
  Time delay = kTimeInfinity;
  std::size_t transmissions = 0;
  /// Transfers that would have happened but were refused because the
  /// receiver's buffer was full.
  std::size_t buffer_rejections = 0;
  /// True if the message never left the source (source buffer full at
  /// injection time).
  bool injection_failed = false;
  /// True if admission control shed the message at injection time
  /// (recovery overload shedding; never delivered, never injected).
  bool shed = false;
  /// Recovery retransmissions the source performed for this message.
  std::size_t retransmissions = 0;
  /// record_paths only: relays of the first delivered copy in hop order
  /// (excludes src and dst; empty if undelivered or recording is off).
  std::vector<NodeId> relay_path;
  /// record_paths only: for hop k (0-based), every node that relayed any
  /// copy at that hop — the DeliveryResult::relays_per_hop shape the
  /// multi-copy anonymity measurement consumes.
  std::vector<std::vector<NodeId>> relays_per_hop;
};

struct NetworkSimReport {
  std::vector<MessageOutcome> outcomes;
  std::size_t total_transmissions = 0;
  std::size_t total_buffer_rejections = 0;
  std::size_t expired_copies = 0;
  /// Copies evicted by BufferPolicy::kDropOldest.
  std::size_t evicted_copies = 0;
  // Fault accounting (all zero when NetworkSimConfig::faults is null).
  /// Contacts skipped because an endpoint was powered down.
  std::size_t suppressed_contacts = 0;
  /// Attempted transfers that failed mid-contact.
  std::size_t transfer_failures = 0;
  /// Buffered copies (including spray state) flushed by crash-reboots.
  std::size_t crash_flushed_copies = 0;
  /// Copies handed to blackhole nodes (absorbed, never forwarded).
  std::size_t blackhole_absorbed = 0;
  // Congestion accounting (all zero without bandwidth/priority/utility —
  // the legacy unlimited-contact path).
  /// Eligible transfers pushed past a contact's bandwidth budget.
  std::size_t queue_deferred = 0;
  /// Contacts whose budget ran out with eligible transfers still waiting.
  std::size_t contacts_saturated = 0;
  /// Largest budget spend any single contact carried (the bandwidth-cap
  /// conservation invariant: <= the per-contact budget). Denominated in
  /// transfers on the legacy path, in cells in wire mode.
  std::size_t max_contact_transfers = 0;
  // Recovery accounting (all zero when NetworkSimConfig::recovery is null
  // or disabled).
  /// Source-side retransmissions (re-onioned sends through fresh groups).
  std::size_t retransmissions = 0;
  /// ACK records born at destinations (exactly one per delivered message).
  std::size_t acks_created = 0;
  /// Messages whose source learned the delivery ACK.
  std::size_t acked_at_source = 0;
  /// Outstanding copies garbage-collected by ACK anti-packets.
  std::size_t ack_gc_copies = 0;
  /// Messages shed by admission control at injection time.
  std::size_t shed_messages = 0;
  /// Suspicion-tracker threshold crossings during this run.
  std::size_t suspicion_flips = 0;
  // Wire accounting (all zero when NetworkSimConfig::cells_per_message
  // is 0).
  /// Sealed fixed-size cells that crossed contacts, and their total bytes.
  std::uint64_t wire_cells = 0;
  std::uint64_t wire_bytes = 0;

  double delivery_rate() const;
  double mean_delay() const;  // over delivered messages
};

/// Runs all `messages` over the trace. Relay groups are selected per
/// message from `rng` at injection time. Deterministic given (trace,
/// directory, messages, config, seed).
NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng);

/// As above with per-message priority classes (0 = most urgent; parallel
/// to `messages`, empty = all class 0). Contact drainage is ordered by
/// (priority, arrival order); with every priority equal to 0 this is the
/// exact legacy engine.
NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 std::vector<std::uint8_t> priorities,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng);

}  // namespace odtn::sim
