// Whole-network discrete-event simulation: many concurrent messages over
// one shared contact process, with finite per-node buffers.
//
// The paper's analysis (like most DTN analyses) models one message at a
// time with infinite buffers. This engine lifts both assumptions so the
// library can answer deployment questions the closed forms cannot: what
// happens to delivery when relays run out of buffer space under load?
// (bench/ablation_buffer_contention quantifies it.)
//
// Protocol semantics follow Algorithms 1-2: single-copy onion forwarding
// per message, or multi-copy with source tickets handed to members of the
// first relay group (Algorithm 2's literal reading). A transfer happens at
// a contact (a, b) iff b is in the message's next onion group (or is the
// destination on the last hop), b does not already hold or relay the
// message, and b has buffer space.
#pragma once

#include <vector>

#include "groups/group_directory.hpp"
#include "metrics/metrics.hpp"
#include "routing/types.hpp"
#include "trace/contact_trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::faults {
class FaultPlan;
}

namespace odtn::sim {

/// What a full node does when offered another message (classic DTN buffer
/// management policies).
enum class BufferPolicy {
  kRejectNew,   // refuse the transfer (the sender keeps its copy)
  kDropOldest,  // evict the longest-buffered relayed copy to admit the new
                // one (locally-originated messages are never evicted)
};

struct NetworkSimConfig {
  /// Messages a node can buffer simultaneously; 0 = unlimited (the
  /// analytical model's assumption).
  std::size_t buffer_capacity = 0;
  BufferPolicy policy = BufferPolicy::kRejectNew;
  /// Observability sink (see odtn::metrics). When non-null the engine
  /// records "sim.*" counters (transfers, buffer rejections, evictions,
  /// expirations, deliveries) and the "sim.hop_delay" /
  /// "sim.delivery_delay" histograms. Null = instrumentation off.
  metrics::Registry* metrics = nullptr;
  /// Fault model consulted at contact time (see odtn::faults): contacts
  /// with a powered-down endpoint are suppressed, crash-reboots flush the
  /// crashed node's buffered copies, each attempted transfer may fail
  /// (sender keeps its copy and its spray ticket), and blackhole nodes
  /// accept copies but never forward them. Null = fault-free (the
  /// engine's behavior and RNG draw order are then byte-identical to a
  /// build without the fault layer). Mutable because the per-link loss
  /// processes advance state as the simulation queries them.
  faults::FaultPlan* faults = nullptr;
};

/// Messages share the routing-layer parameter block (src, dst, start, ttl,
/// K, L) instead of redeclaring it. The onion-specific fields of
/// MessageSpec (payload, destination_group_delivery) are ignored here: the
/// network simulator models forwarding decisions, not ciphertext.
using InjectedMessage = routing::MessageSpec;

struct MessageOutcome {
  bool delivered = false;
  Time delay = kTimeInfinity;
  std::size_t transmissions = 0;
  /// Transfers that would have happened but were refused because the
  /// receiver's buffer was full.
  std::size_t buffer_rejections = 0;
  /// True if the message never left the source (source buffer full at
  /// injection time).
  bool injection_failed = false;
};

struct NetworkSimReport {
  std::vector<MessageOutcome> outcomes;
  std::size_t total_transmissions = 0;
  std::size_t total_buffer_rejections = 0;
  std::size_t expired_copies = 0;
  /// Copies evicted by BufferPolicy::kDropOldest.
  std::size_t evicted_copies = 0;
  // Fault accounting (all zero when NetworkSimConfig::faults is null).
  /// Contacts skipped because an endpoint was powered down.
  std::size_t suppressed_contacts = 0;
  /// Attempted transfers that failed mid-contact.
  std::size_t transfer_failures = 0;
  /// Buffered copies (including spray state) flushed by crash-reboots.
  std::size_t crash_flushed_copies = 0;
  /// Copies handed to blackhole nodes (absorbed, never forwarded).
  std::size_t blackhole_absorbed = 0;

  double delivery_rate() const;
  double mean_delay() const;  // over delivered messages
};

/// Runs all `messages` over the trace. Relay groups are selected per
/// message from `rng` at injection time. Deterministic given (trace,
/// directory, messages, config, seed).
NetworkSimReport run_network_sim(const trace::ContactTrace& trace,
                                 const groups::GroupDirectory& directory,
                                 std::vector<InjectedMessage> messages,
                                 const NetworkSimConfig& config,
                                 util::Rng& rng);

}  // namespace odtn::sim
