#include "trace/contact_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "trace/trace_reader.hpp"

namespace odtn::trace {

namespace {

// The in-memory parsers are thin wrappers over the streaming readers
// (trace_reader.hpp): drain the reader into a vector, hand it to the
// ContactTrace constructor. All format quirks, skip rules and "line N: ..."
// diagnostics live in one place — the readers.
std::vector<ContactEvent> drain(TraceReader& reader) {
  std::vector<ContactEvent> events;
  TraceRecord rec;
  while (reader.next_record(rec)) {
    events.push_back({rec.time, rec.a, rec.b});
  }
  return events;
}

}  // namespace

ContactTrace::ContactTrace(std::size_t node_count,
                           std::vector<ContactEvent> events)
    : node_count_(node_count), events_(std::move(events)) {
  if (node_count < 2) {
    throw std::invalid_argument("ContactTrace: need >= 2 nodes");
  }
  for (const auto& e : events_) {
    if (e.a >= node_count || e.b >= node_count) {
      throw std::invalid_argument("ContactTrace: event references unknown node");
    }
    if (e.a == e.b) {
      throw std::invalid_argument("ContactTrace: self-contact event");
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ContactEvent& x, const ContactEvent& y) {
                     return x.time < y.time;
                   });
  per_node_.resize(node_count);
  for (const auto& e : events_) {
    per_node_[e.a].push_back({e.time, e.b});
    per_node_[e.b].push_back({e.time, e.a});
  }
}

Time ContactTrace::start_time() const {
  return events_.empty() ? 0.0 : events_.front().time;
}

Time ContactTrace::end_time() const {
  return events_.empty() ? 0.0 : events_.back().time;
}

const std::vector<ContactTrace::NodeContact>& ContactTrace::contacts_of(
    NodeId node) const {
  if (node >= node_count_) throw std::out_of_range("contacts_of");
  return per_node_[node];
}

std::optional<ContactTrace::NodeContact> ContactTrace::first_contact(
    NodeId node, std::span<const NodeId> candidates, Time after,
    Time horizon) const {
  const auto& list = contacts_of(node);
  auto it = std::lower_bound(
      list.begin(), list.end(), after,
      [](const NodeContact& c, Time t) { return c.time < t; });
  for (; it != list.end() && it->time < horizon; ++it) {
    const NodeId peer = it->peer;
    for (const NodeId c : candidates) {
      if (c == peer) return *it;
    }
  }
  return std::nullopt;
}

Time ContactTrace::active_duration(Time max_idle_gap) const {
  if (!(max_idle_gap > 0.0)) {
    throw std::invalid_argument("active_duration: max_idle_gap must be > 0");
  }
  if (events_.size() < 2) return 0.0;
  Time active = 0.0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    active += std::min(events_[i].time - events_[i - 1].time, max_idle_gap);
  }
  return active;
}

graph::ContactGraph ContactTrace::estimate_rates_active(
    Time max_idle_gap) const {
  graph::ContactGraph g = estimate_rates();
  double wall = end_time() - start_time();
  double active = active_duration(max_idle_gap);
  if (wall <= 0.0 || active <= 0.0) return g;
  // Rescale wall-clock rates to active-time rates.
  double factor = wall / active;
  for (NodeId i = 0; i < node_count_; ++i) {
    for (NodeId j = i + 1; j < node_count_; ++j) {
      double r = g.rate(i, j);
      if (r > 0.0) g.set_rate(i, j, r * factor);
    }
  }
  return g;
}

graph::ContactGraph ContactTrace::estimate_rates() const {
  graph::ContactGraph g(node_count_);
  double duration = end_time() - start_time();
  if (duration <= 0.0) return g;
  // Count contacts per distinct pair. A hash map keyed on the (lo, hi) pair
  // keeps training memory proportional to the observed contact graph, not
  // O(n²) — real traces touch a tiny fraction of all pairs.
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (const auto& e : events_) {
    const NodeId lo = std::min(e.a, e.b);
    const NodeId hi = std::max(e.a, e.b);
    ++counts[(static_cast<std::uint64_t>(lo) << 32) | hi];
  }
  // odtn-lint: allow(unordered-iter) — each distinct pair writes its own
  // dense-matrix slot exactly once; no fold, RNG, or export order involved.
  for (const auto& [key, count] : counts) {
    const NodeId i = static_cast<NodeId>(key >> 32);
    const NodeId j = static_cast<NodeId>(key & 0xffffffffu);
    g.set_rate(i, j, static_cast<double>(count) / duration);
  }
  return g;
}

ContactTrace parse_trace(const std::string& text, std::size_t node_count) {
  std::istringstream is(text);
  PlainTraceReader reader(is);
  return ContactTrace(node_count, drain(reader));
}

ContactTrace parse_crawdad_trace(const std::string& text,
                                 std::size_t node_count) {
  std::istringstream is(text);
  CrawdadTraceReader reader(is, node_count);
  return ContactTrace(node_count, drain(reader));
}

ContactTrace parse_one_report(const std::string& text,
                              std::size_t node_count) {
  std::istringstream is(text);
  OneReportTraceReader reader(is, node_count);
  return ContactTrace(node_count, drain(reader));
}

ContactTrace load_trace_file(const std::string& path, std::size_t node_count) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  // Stream straight off disk — no whole-file string buffer.
  PlainTraceReader reader(in);
  try {
    return ContactTrace(node_count, drain(reader));
  } catch (const std::invalid_argument& e) {
    // Re-point the parser's "line N: ..." diagnostic at the file it came
    // from, giving callers a one-line file:line message.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string format_trace(const ContactTrace& trace) {
  std::ostringstream os;
  os.precision(17);  // lossless double round-trip
  os << "# odtn contact trace: nodes=" << trace.node_count()
     << " events=" << trace.event_count() << "\n";
  for (const auto& e : trace.events()) {
    os << e.time << ' ' << e.a << ' ' << e.b << '\n';
  }
  return os.str();
}

void save_trace_file(const ContactTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  out << format_trace(trace);
}

}  // namespace odtn::trace
