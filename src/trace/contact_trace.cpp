#include "trace/contact_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace odtn::trace {

namespace {

// getline leaves the '\r' of a CRLF line ending in place; strip it so
// Windows-authored trace files parse, and so string fields (e.g. the ONE
// report's "up"/"down") don't capture a stray carriage return.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

ContactTrace::ContactTrace(std::size_t node_count,
                           std::vector<ContactEvent> events)
    : node_count_(node_count), events_(std::move(events)) {
  if (node_count < 2) {
    throw std::invalid_argument("ContactTrace: need >= 2 nodes");
  }
  for (const auto& e : events_) {
    if (e.a >= node_count || e.b >= node_count) {
      throw std::invalid_argument("ContactTrace: event references unknown node");
    }
    if (e.a == e.b) {
      throw std::invalid_argument("ContactTrace: self-contact event");
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ContactEvent& x, const ContactEvent& y) {
                     return x.time < y.time;
                   });
  per_node_.resize(node_count);
  for (const auto& e : events_) {
    per_node_[e.a].push_back({e.time, e.b});
    per_node_[e.b].push_back({e.time, e.a});
  }
}

Time ContactTrace::start_time() const {
  return events_.empty() ? 0.0 : events_.front().time;
}

Time ContactTrace::end_time() const {
  return events_.empty() ? 0.0 : events_.back().time;
}

const std::vector<ContactTrace::NodeContact>& ContactTrace::contacts_of(
    NodeId node) const {
  if (node >= node_count_) throw std::out_of_range("contacts_of");
  return per_node_[node];
}

std::optional<ContactTrace::NodeContact> ContactTrace::first_contact(
    NodeId node, std::span<const NodeId> candidates, Time after,
    Time horizon) const {
  const auto& list = contacts_of(node);
  auto it = std::lower_bound(
      list.begin(), list.end(), after,
      [](const NodeContact& c, Time t) { return c.time < t; });
  for (; it != list.end() && it->time < horizon; ++it) {
    const NodeId peer = it->peer;
    for (const NodeId c : candidates) {
      if (c == peer) return *it;
    }
  }
  return std::nullopt;
}

Time ContactTrace::active_duration(Time max_idle_gap) const {
  if (!(max_idle_gap > 0.0)) {
    throw std::invalid_argument("active_duration: max_idle_gap must be > 0");
  }
  if (events_.size() < 2) return 0.0;
  Time active = 0.0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    active += std::min(events_[i].time - events_[i - 1].time, max_idle_gap);
  }
  return active;
}

graph::ContactGraph ContactTrace::estimate_rates_active(
    Time max_idle_gap) const {
  graph::ContactGraph g = estimate_rates();
  double wall = end_time() - start_time();
  double active = active_duration(max_idle_gap);
  if (wall <= 0.0 || active <= 0.0) return g;
  // Rescale wall-clock rates to active-time rates.
  double factor = wall / active;
  for (NodeId i = 0; i < node_count_; ++i) {
    for (NodeId j = i + 1; j < node_count_; ++j) {
      double r = g.rate(i, j);
      if (r > 0.0) g.set_rate(i, j, r * factor);
    }
  }
  return g;
}

graph::ContactGraph ContactTrace::estimate_rates() const {
  graph::ContactGraph g(node_count_);
  double duration = end_time() - start_time();
  if (duration <= 0.0) return g;
  // Count contacts per pair.
  std::vector<std::vector<std::size_t>> counts(
      node_count_, std::vector<std::size_t>(node_count_, 0));
  for (const auto& e : events_) {
    counts[e.a][e.b]++;
    counts[e.b][e.a]++;
  }
  for (NodeId i = 0; i < node_count_; ++i) {
    for (NodeId j = i + 1; j < node_count_; ++j) {
      if (counts[i][j] > 0) {
        g.set_rate(i, j, static_cast<double>(counts[i][j]) / duration);
      }
    }
  }
  return g;
}

ContactTrace parse_trace(const std::string& text, std::size_t node_count) {
  std::vector<ContactEvent> events;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    strip_cr(line);
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    double t;
    long a, b;
    if (!(ls >> t)) continue;  // blank or comment-only line
    if (!(ls >> a >> b)) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": malformed contact (expected 'time a b')");
    }
    if (a < 0 || b < 0) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": negative node id");
    }
    events.push_back({t, static_cast<NodeId>(a), static_cast<NodeId>(b)});
  }
  return ContactTrace(node_count, std::move(events));
}

ContactTrace parse_crawdad_trace(const std::string& text,
                                 std::size_t node_count) {
  std::vector<ContactEvent> events;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    strip_cr(line);
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    long id1, id2;
    double start, end;
    if (!(ls >> id1)) continue;  // blank line
    if (!(ls >> id2 >> start >> end)) {
      throw std::invalid_argument(
          "line " + std::to_string(line_no) +
          ": malformed contact (expected 'id1 id2 start end')");
    }
    if (id1 < 1 || id2 < 1) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": crawdad ids are 1-based");
    }
    if (end < start) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": contact end < start");
    }
    // Drop external/stationary devices, as the paper does.
    if (static_cast<std::size_t>(id1) > node_count ||
        static_cast<std::size_t>(id2) > node_count) {
      continue;
    }
    if (id1 == id2) continue;
    events.push_back({start, static_cast<NodeId>(id1 - 1),
                      static_cast<NodeId>(id2 - 1)});
  }
  return ContactTrace(node_count, std::move(events));
}

ContactTrace parse_one_report(const std::string& text,
                              std::size_t node_count) {
  std::vector<ContactEvent> events;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    strip_cr(line);
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    double t;
    std::string tag;
    if (!(ls >> t >> tag)) continue;  // blank or non-report line
    if (tag != "CONN") continue;
    long a, b;
    std::string state;
    if (!(ls >> a >> b >> state)) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": malformed CONN event");
    }
    if (state != "up" && state != "down") {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": CONN state must be up or down");
    }
    if (state != "up") continue;
    if (a < 0 || b < 0) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": negative node id");
    }
    if (static_cast<std::size_t>(a) >= node_count ||
        static_cast<std::size_t>(b) >= node_count || a == b) {
      continue;
    }
    events.push_back({t, static_cast<NodeId>(a), static_cast<NodeId>(b)});
  }
  return ContactTrace(node_count, std::move(events));
}

ContactTrace load_trace_file(const std::string& path, std::size_t node_count) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_trace(buf.str(), node_count);
  } catch (const std::invalid_argument& e) {
    // Re-point the parser's "line N: ..." diagnostic at the file it came
    // from, giving callers a one-line file:line message.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string format_trace(const ContactTrace& trace) {
  std::ostringstream os;
  os.precision(17);  // lossless double round-trip
  os << "# odtn contact trace: nodes=" << trace.node_count()
     << " events=" << trace.event_count() << "\n";
  for (const auto& e : trace.events()) {
    os << e.time << ' ' << e.a << ' ' << e.b << '\n';
  }
  return os.str();
}

void save_trace_file(const ContactTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  out << format_trace(trace);
}

}  // namespace odtn::trace
