// Contact traces: recorded (or synthesized) pairwise contact events.
//
// The paper's real-trace experiments replay CRAWDAD cambridge/haggle
// contact logs. A trace here is a time-sorted list of instantaneous contact
// events (the paper assumes every contact lasts long enough to transfer a
// whole message), plus per-node indexes for fast "next contact of v with
// any of S after t" queries.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/contact_graph.hpp"
#include "util/ids.hpp"

namespace odtn::trace {

struct ContactEvent {
  Time time;
  NodeId a;
  NodeId b;

  friend bool operator==(const ContactEvent&, const ContactEvent&) = default;
};

class ContactTrace {
 public:
  /// Builds a trace over `node_count` nodes; events are copied and sorted
  /// by time. Throws on events referencing nodes >= node_count or a == b.
  ContactTrace(std::size_t node_count, std::vector<ContactEvent> events);

  std::size_t node_count() const { return node_count_; }
  std::size_t event_count() const { return events_.size(); }
  const std::vector<ContactEvent>& events() const { return events_; }

  /// First and last event times (0 if the trace is empty).
  Time start_time() const;
  Time end_time() const;

  /// Events in which `node` participates, time-sorted, as (time, peer).
  struct NodeContact {
    Time time;
    NodeId peer;
  };
  const std::vector<NodeContact>& contacts_of(NodeId node) const;

  /// First contact of `node` with any member of `candidates` at time >=
  /// `after` and < `horizon`; nullopt if none. `candidates` must not contain
  /// `node` itself.
  std::optional<NodeContact> first_contact(NodeId node,
                                           std::span<const NodeId> candidates,
                                           Time after, Time horizon) const;

  /// Maximum-likelihood contact-rate estimate over the trace duration:
  /// lambda_ij = (#contacts between i and j) / duration. This is the
  /// "training" step the paper mentions for fitting the analytical model
  /// to a real trace.
  graph::ContactGraph estimate_rates() const;

  /// Active time covered by the trace: the wall-clock duration with every
  /// network-wide silent gap capped at `max_idle_gap`. Real contact logs
  /// have long off-business-hour gaps during which the exponential contact
  /// model is meaningless; dividing counts by active time instead of wall
  /// time is the "training" that makes the model track business-hour
  /// message delivery (Sec. V-D of the paper).
  Time active_duration(Time max_idle_gap) const;

  /// Rate estimate over active time: lambda_ij = count_ij /
  /// active_duration(max_idle_gap).
  graph::ContactGraph estimate_rates_active(Time max_idle_gap) const;

 private:
  std::size_t node_count_;
  std::vector<ContactEvent> events_;
  std::vector<std::vector<NodeContact>> per_node_;
};

/// Parses the plain-text trace format: one event per line, `time a b`,
/// whitespace-separated; '#' starts a comment; blank lines ignored.
/// (The CRAWDAD imote logs are easily converted to this format.)
ContactTrace parse_trace(const std::string& text, std::size_t node_count);

/// Parses the CRAWDAD cambridge/haggle contact format: one *interval* per
/// line, `id1 id2 start end [...extra columns ignored]`, ids 1-based as in
/// the published dataset. Each interval becomes one contact event at its
/// start time (the paper's model: a contact is long enough to transfer a
/// whole message). Lines mentioning ids above `node_count` (the dataset's
/// stationary/external devices) are skipped, mirroring the paper's
/// preprocessing ("we only consider the contacts between mobile devices").
ContactTrace parse_crawdad_trace(const std::string& text,
                                 std::size_t node_count);

/// Reads a trace file from disk. Throws std::runtime_error on IO failure.
ContactTrace load_trace_file(const std::string& path, std::size_t node_count);

/// Parses the ONE simulator's connection report format: one line per link
/// transition, `time CONN a b up|down` (ids 0-based). Each `up` transition
/// becomes a contact event; `down` lines and other report lines are
/// ignored. Ids >= node_count are skipped.
ContactTrace parse_one_report(const std::string& text,
                              std::size_t node_count);

/// Serializes a trace in the same format.
std::string format_trace(const ContactTrace& trace);

/// Writes a trace to disk.
void save_trace_file(const ContactTrace& trace, const std::string& path);

}  // namespace odtn::trace
