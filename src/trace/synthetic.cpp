#include "trace/synthetic.hpp"

#include <stdexcept>

namespace odtn::trace {

namespace {

void check(const DiurnalTraceParams& p) {
  if (p.nodes < 2) throw std::invalid_argument("diurnal trace: nodes < 2");
  if (p.days < 1) throw std::invalid_argument("diurnal trace: days < 1");
  if (p.daily_windows.empty()) {
    throw std::invalid_argument("diurnal trace: no active windows");
  }
  for (auto [s, e] : p.daily_windows) {
    if (!(s >= 0.0 && e > s && e <= kSecondsPerDay)) {
      throw std::invalid_argument("diurnal trace: bad window");
    }
  }
  if (!(p.min_ict > 0.0) || p.max_ict < p.min_ict) {
    throw std::invalid_argument("diurnal trace: bad ICT range");
  }
  if (p.pair_probability < 0.0 || p.pair_probability > 1.0) {
    throw std::invalid_argument("diurnal trace: bad pair probability");
  }
}

}  // namespace

ContactTrace make_diurnal_trace(const DiurnalTraceParams& params,
                                util::Rng& rng) {
  check(params);
  std::vector<ContactEvent> events;
  for (NodeId i = 0; i < params.nodes; ++i) {
    for (NodeId j = i + 1; j < params.nodes; ++j) {
      if (!rng.chance(params.pair_probability)) continue;
      double rate = 1.0 / rng.uniform(params.min_ict, params.max_ict);
      // Poisson process over the concatenation of active windows: draw
      // exponential gaps in "active seconds", then map each arrival back
      // to wall-clock time.
      double active = 0.0;  // active seconds consumed so far
      double total_active_per_day = 0.0;
      for (auto [s, e] : params.daily_windows) total_active_per_day += e - s;
      double total_active = total_active_per_day * params.days;
      while (true) {
        active += rng.exponential(rate);
        if (active >= total_active) break;
        int day = static_cast<int>(active / total_active_per_day);
        double within = active - day * total_active_per_day;
        double wall = day * kSecondsPerDay;
        for (auto [s, e] : params.daily_windows) {
          double len = e - s;
          if (within < len) {
            wall += s + within;
            break;
          }
          within -= len;
        }
        events.push_back({wall, i, j});
      }
    }
  }
  return ContactTrace(params.nodes, std::move(events));
}

ContactTrace make_cambridge_like(std::uint64_t seed) {
  DiurnalTraceParams p;
  p.nodes = 12;
  p.days = 5;
  p.daily_windows = {{9 * 3600.0, 17 * 3600.0}};
  p.min_ict = 60.0;
  p.max_ict = 600.0;
  p.pair_probability = 1.0;
  // odtn-lint: allow(rng) — xor-tweaked sub-stream predates
  // util::derive_seed; synthetic traces are pinned to this sequence by trace
  // goldens and tests
  util::Rng rng(seed ^ 0xca3b41d6e01ULL);
  return make_diurnal_trace(p, rng);
}

ContactTrace sample_poisson_trace(const graph::ContactGraph& graph,
                                  Time horizon, util::Rng& rng) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("sample_poisson_trace: horizon must be > 0");
  }
  std::vector<ContactEvent> events;
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    for (NodeId j = i + 1; j < graph.node_count(); ++j) {
      double rate = graph.rate(i, j);
      if (rate <= 0.0) continue;
      Time t = 0.0;
      while (true) {
        t += rng.exponential(rate);
        if (t >= horizon) break;
        events.push_back({t, i, j});
      }
    }
  }
  return ContactTrace(graph.node_count(), std::move(events));
}

ContactTrace sample_poisson_trace(const graph::ContactRates& rates,
                                  Time horizon, util::Rng& rng) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("sample_poisson_trace: horizon must be > 0");
  }
  std::vector<ContactEvent> events;
  std::vector<NodeId> neighbors;
  const std::size_t n = rates.node_count();
  for (NodeId i = 0; i < n; ++i) {
    neighbors.clear();
    rates.append_neighbors(i, neighbors);
    for (NodeId j : neighbors) {
      if (j <= i) continue;  // each pair once, from its lower endpoint
      double rate = rates.rate(i, j);
      if (rate <= 0.0) continue;
      Time t = 0.0;
      while (true) {
        t += rng.exponential(rate);
        if (t >= horizon) break;
        events.push_back({t, i, j});
      }
    }
  }
  return ContactTrace(n, std::move(events));
}

ContactTrace make_infocom_like(std::uint64_t seed) {
  DiurnalTraceParams p;
  p.nodes = 41;
  p.days = 3;
  // Morning and afternoon conference sessions.
  p.daily_windows = {{9 * 3600.0, 12.5 * 3600.0}, {14 * 3600.0, 17.5 * 3600.0}};
  p.min_ict = 1800.0;
  p.max_ict = 14400.0;
  p.pair_probability = 0.6;
  // odtn-lint: allow(rng) — xor-tweaked sub-stream, pinned like the poisson
  // stream above
  util::Rng rng(seed ^ 0x1f0c0205a7ULL);
  return make_diurnal_trace(p, rng);
}

}  // namespace odtn::trace
