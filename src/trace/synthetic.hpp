// Synthetic stand-ins for the CRAWDAD cambridge/haggle traces.
//
// The paper replays two real iMote contact logs: "Cambridge" (Experiment 2:
// 12 mobile nodes, several days, dense contacts) and "Infocom 2005"
// (Experiment 3: 41 mobile nodes, 3 conference days, sparser contacts).
// That dataset is not redistributable here, so these generators synthesize
// traces with the properties the paper's conclusions rest on: diurnal
// activity (contacts only during business/session hours, silence at night)
// and the respective scale and density. See DESIGN.md section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/contact_trace.hpp"
#include "util/rng.hpp"

namespace odtn::trace {

constexpr double kSecondsPerDay = 86400.0;

struct DiurnalTraceParams {
  std::size_t nodes = 12;
  int days = 5;
  /// Active windows within each day, as [start, end) seconds-of-day.
  std::vector<std::pair<double, double>> daily_windows = {
      {9 * 3600.0, 17 * 3600.0}};
  /// Mean inter-contact time (seconds of *active* time) drawn uniformly
  /// from this range per pair.
  double min_ict = 60.0;
  double max_ict = 600.0;
  /// Probability that a pair of nodes meets at all (graph density).
  double pair_probability = 1.0;
};

/// Generates Poisson contact events per connected pair, restricted to the
/// daily active windows.
ContactTrace make_diurnal_trace(const DiurnalTraceParams& params,
                                util::Rng& rng);

/// Cambridge-like trace: 12 nodes, 5 days, one 9:00-17:00 window, dense and
/// frequent contacts. Matches the regime of the paper's Figs. 14-16, where
/// delivery saturates within ~30 minutes of business time.
ContactTrace make_cambridge_like(std::uint64_t seed);

/// Infocom'05-like trace: 41 nodes, 3 days, two conference-session windows
/// per day, sparser and slower contacts. Matches the regime of Figs. 17-19,
/// where delivery plateaus across session gaps and extra copies gain little.
ContactTrace make_infocom_like(std::uint64_t seed);

/// Samples a concrete event trace from a contact graph's Poisson processes
/// over [0, horizon). Bridges the random-graph model (Table II) and the
/// trace-driven engines (TraceContactModel, run_network_sim).
ContactTrace sample_poisson_trace(const graph::ContactGraph& graph,
                                  Time horizon, util::Rng& rng);

/// Backend-neutral overload over the ContactRates surface (dense graphs
/// bind the exact-match overload above). Pairs are visited in ascending
/// (i, j), i < j — append_neighbors' documented order — so on a dense
/// graph this draws the identical RNG sequence as the dense sampler. Used
/// by the loaded-traffic experiments on the sparse backend, where
/// enumerating all n² pairs is exactly what the CSR representation avoids.
ContactTrace sample_poisson_trace(const graph::ContactRates& rates,
                                  Time horizon, util::Rng& rng);

}  // namespace odtn::trace
