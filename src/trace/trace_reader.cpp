#include "trace/trace_reader.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace odtn::trace {

namespace {

// getline leaves the '\r' of a CRLF line ending in place; strip it so
// Windows-authored trace files parse, and so string fields (e.g. the ONE
// report's "up"/"down") don't capture a stray carriage return.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

TraceFormat parse_trace_format(const std::string& name) {
  if (name == "plain") return TraceFormat::kPlain;
  if (name == "crawdad") return TraceFormat::kCrawdad;
  if (name == "one") return TraceFormat::kOneReport;
  throw std::invalid_argument("unknown trace format '" + name +
                              "' (expected plain, crawdad or one)");
}

bool PlainTraceReader::next_record(TraceRecord& out) {
  while (std::getline(*in_, line_)) {
    ++line_no_;
    strip_cr(line_);
    auto hash = line_.find('#');
    if (hash != std::string::npos) line_.resize(hash);
    std::istringstream ls(line_);
    double t;
    long a, b;
    if (!(ls >> t)) continue;  // blank or comment-only line
    if (!(ls >> a >> b)) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": malformed contact (expected 'time a b')");
    }
    if (a < 0 || b < 0) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": negative node id");
    }
    out = {t, static_cast<NodeId>(a), static_cast<NodeId>(b)};
    return true;
  }
  return false;
}

bool CrawdadTraceReader::next_record(TraceRecord& out) {
  while (std::getline(*in_, line_)) {
    ++line_no_;
    strip_cr(line_);
    auto hash = line_.find('#');
    if (hash != std::string::npos) line_.resize(hash);
    std::istringstream ls(line_);
    long id1, id2;
    double start, end;
    if (!(ls >> id1)) continue;  // blank line
    if (!(ls >> id2 >> start >> end)) {
      throw std::invalid_argument(
          "line " + std::to_string(line_no_) +
          ": malformed contact (expected 'id1 id2 start end')");
    }
    if (id1 < 1 || id2 < 1) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": crawdad ids are 1-based");
    }
    if (end < start) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": contact end < start");
    }
    // Drop external/stationary devices, as the paper does.
    if (static_cast<std::size_t>(id1) > node_count_ ||
        static_cast<std::size_t>(id2) > node_count_) {
      continue;
    }
    if (id1 == id2) continue;
    out = {start, static_cast<NodeId>(id1 - 1), static_cast<NodeId>(id2 - 1)};
    return true;
  }
  return false;
}

bool OneReportTraceReader::next_record(TraceRecord& out) {
  while (std::getline(*in_, line_)) {
    ++line_no_;
    strip_cr(line_);
    auto hash = line_.find('#');
    if (hash != std::string::npos) line_.resize(hash);
    std::istringstream ls(line_);
    double t;
    std::string tag;
    if (!(ls >> t >> tag)) continue;  // blank or non-report line
    if (tag != "CONN") continue;
    long a, b;
    std::string state;
    if (!(ls >> a >> b >> state)) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": malformed CONN event");
    }
    if (state != "up" && state != "down") {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": CONN state must be up or down");
    }
    if (state != "up") continue;
    if (a < 0 || b < 0) {
      throw std::invalid_argument("line " + std::to_string(line_no_) +
                                  ": negative node id");
    }
    if (static_cast<std::size_t>(a) >= node_count_ ||
        static_cast<std::size_t>(b) >= node_count_ || a == b) {
      continue;
    }
    out = {t, static_cast<NodeId>(a), static_cast<NodeId>(b)};
    return true;
  }
  return false;
}

std::unique_ptr<TraceReader> make_trace_reader(std::istream& in,
                                               TraceFormat format,
                                               std::size_t node_count) {
  switch (format) {
    case TraceFormat::kPlain:
      return std::make_unique<PlainTraceReader>(in);
    case TraceFormat::kCrawdad:
      return std::make_unique<CrawdadTraceReader>(in, node_count);
    case TraceFormat::kOneReport:
      return std::make_unique<OneReportTraceReader>(in, node_count);
  }
  throw std::invalid_argument("make_trace_reader: unknown format");
}

namespace {

/// A TraceReader that owns its file stream.
template <typename Reader>
class OwningFileReader final : public TraceReader {
 public:
  OwningFileReader(std::ifstream in, std::size_t node_count)
      : in_(std::move(in)), reader_(in_, node_count) {}
  bool next_record(TraceRecord& out) override {
    return reader_.next_record(out);
  }

 private:
  std::ifstream in_;
  Reader reader_;
};

template <>
class OwningFileReader<PlainTraceReader> final : public TraceReader {
 public:
  OwningFileReader(std::ifstream in, std::size_t) : in_(std::move(in)), reader_(in_) {}
  bool next_record(TraceRecord& out) override {
    return reader_.next_record(out);
  }

 private:
  std::ifstream in_;
  PlainTraceReader reader_;
};

}  // namespace

std::unique_ptr<TraceReader> open_trace_reader(const std::string& path,
                                               TraceFormat format,
                                               std::size_t node_count) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("open_trace_reader: cannot open " + path);
  }
  switch (format) {
    case TraceFormat::kPlain:
      return std::make_unique<OwningFileReader<PlainTraceReader>>(
          std::move(in), node_count);
    case TraceFormat::kCrawdad:
      return std::make_unique<OwningFileReader<CrawdadTraceReader>>(
          std::move(in), node_count);
    case TraceFormat::kOneReport:
      return std::make_unique<OwningFileReader<OneReportTraceReader>>(
          std::move(in), node_count);
  }
  throw std::invalid_argument("open_trace_reader: unknown format");
}

SparseTraceSummary ingest_sparse_trace(TraceReader& reader,
                                       std::size_t node_count,
                                       Time max_idle_gap) {
  if (node_count < 2) {
    throw std::invalid_argument("ContactTrace: need >= 2 nodes");
  }

  // Distinct-pair contact counts: the only state proportional to trace
  // content, and it grows with the contact *graph* (pairs that ever meet),
  // not with the event count or file size.
  std::unordered_map<std::uint64_t, std::uint64_t> counts;

  SparseTraceSummary s;
  s.node_count = node_count;

  TraceRecord rec;
  bool any = false;
  Time prev = 0.0;
  Time lo = 0.0, hi = 0.0;
  Time active = 0.0;
  while (reader.next_record(rec)) {
    if (rec.a >= node_count || rec.b >= node_count) {
      throw std::invalid_argument("ContactTrace: event references unknown node");
    }
    if (rec.a == rec.b) {
      throw std::invalid_argument("ContactTrace: self-contact event");
    }
    if (!any) {
      any = true;
      lo = hi = rec.time;
    } else {
      if (max_idle_gap > 0.0) {
        if (rec.time < prev) {
          throw std::invalid_argument(
              "ingest_sparse_trace: active-time training requires a "
              "time-sorted trace");
        }
        // Same per-gap accumulation order as ContactTrace::active_duration
        // over the (already sorted) event sequence.
        active += std::min(rec.time - prev, max_idle_gap);
      }
      lo = std::min(lo, rec.time);
      hi = std::max(hi, rec.time);
    }
    prev = rec.time;
    ++s.event_count;
    const NodeId pa = std::min(rec.a, rec.b);
    const NodeId pb = std::max(rec.a, rec.b);
    ++counts[(static_cast<std::uint64_t>(pa) << 32) | pb];
  }

  if (any) {
    s.start_time = lo;
    s.end_time = hi;
  }
  if (s.event_count >= 2 && max_idle_gap > 0.0) s.active_duration = active;

  graph::SparseContactGraph::Builder b(node_count);
  const double wall = s.end_time - s.start_time;
  if (wall > 0.0) {
    // Two-step arithmetic (count/wall, then * wall/active) reproduces
    // estimate_rates_active's values bit-for-bit; single-step count/active
    // would round differently.
    const bool rescale = max_idle_gap > 0.0 && s.active_duration > 0.0;
    const double factor = rescale ? wall / s.active_duration : 1.0;
    // odtn-lint: allow(unordered-iter) — each distinct pair adds one edge
    // with its own independently computed rate, and the CSR Builder sorts
    // adjacency by id before building, so insertion order cannot reach the
    // final structure.
    for (const auto& [key, count] : counts) {
      const NodeId i = static_cast<NodeId>(key >> 32);
      const NodeId j = static_cast<NodeId>(key & 0xffffffffu);
      double r = static_cast<double>(count) / wall;
      if (rescale) r *= factor;
      b.add_edge(i, j, r);
    }
  }
  s.rates = std::move(b).build();
  return s;
}

SparseTraceSummary ingest_sparse_trace_file(const std::string& path,
                                            TraceFormat format,
                                            std::size_t node_count,
                                            Time max_idle_gap) {
  auto reader = open_trace_reader(path, format, node_count);
  try {
    return ingest_sparse_trace(*reader, node_count, max_idle_gap);
  } catch (const std::invalid_argument& e) {
    // Re-point the parser's "line N: ..." diagnostic at the file it came
    // from, giving callers a one-line file:line message.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace odtn::trace
