// Streaming (pull-based) trace readers.
//
// The historical parsers slurped a whole trace file into one std::string
// and materialized every event before training, so peak memory was
// O(file size + events) — a dead end for multi-GB CRAWDAD logs. TraceReader
// is the redesigned ingestion surface: open a stream, pull one TraceRecord
// at a time, stop at eof. The in-memory parsers in contact_trace.hpp are now
// thin wrappers (read every record, hand the vector to ContactTrace), and
// the sparse ingest below consumes a reader in ONE bounded-memory pass,
// emitting the trained SparseContactGraph directly — memory proportional to
// the number of distinct contact *pairs*, never to file size or event count.
//
// Each concrete reader keeps its legacy parser's exact semantics: the same
// "line N: ..." diagnostics, the same skip rules (crawdad drops 1-based ids
// above node_count and self-contacts; the ONE reader drops non-CONN lines,
// "down" transitions and out-of-range ids; the plain reader skips nothing —
// range checking is its consumer's job), and the same comment/CRLF handling.
#pragma once

#include <cstddef>
#include <istream>
#include <memory>
#include <string>

#include "graph/sparse_contact_graph.hpp"
#include "util/ids.hpp"

namespace odtn::trace {

/// One contact event as read from a trace stream.
struct TraceRecord {
  Time time;
  NodeId a;
  NodeId b;
};

/// Trace file formats understood by the readers (see contact_trace.hpp for
/// the format descriptions).
enum class TraceFormat { kPlain, kCrawdad, kOneReport };

/// Parses `name` ("plain", "crawdad", "one"); throws std::invalid_argument
/// on anything else.
TraceFormat parse_trace_format(const std::string& name);

class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Pulls the next contact event into `out`. Returns false at end of
  /// stream. Throws std::invalid_argument with a "line N: ..." diagnostic
  /// on malformed input (identical messages to the legacy parsers).
  virtual bool next_record(TraceRecord& out) = 0;
};

/// `time a b` lines; '#' comments; blank lines skipped. Emits every parsed
/// record (no range filtering — ContactTrace / the ingester validate).
class PlainTraceReader final : public TraceReader {
 public:
  /// The stream must outlive the reader.
  explicit PlainTraceReader(std::istream& in) : in_(&in) {}
  bool next_record(TraceRecord& out) override;

 private:
  std::istream* in_;
  std::string line_;
  std::size_t line_no_ = 0;
};

/// CRAWDAD cambridge/haggle `id1 id2 start end` intervals, 1-based ids;
/// drops ids above node_count (external devices) and self-contacts.
class CrawdadTraceReader final : public TraceReader {
 public:
  CrawdadTraceReader(std::istream& in, std::size_t node_count)
      : in_(&in), node_count_(node_count) {}
  bool next_record(TraceRecord& out) override;

 private:
  std::istream* in_;
  std::size_t node_count_;
  std::string line_;
  std::size_t line_no_ = 0;
};

/// ONE simulator connection reports: `time CONN a b up|down`, 0-based ids;
/// emits "up" transitions, drops out-of-range ids and self-contacts.
class OneReportTraceReader final : public TraceReader {
 public:
  OneReportTraceReader(std::istream& in, std::size_t node_count)
      : in_(&in), node_count_(node_count) {}
  bool next_record(TraceRecord& out) override;

 private:
  std::istream* in_;
  std::size_t node_count_;
  std::string line_;
  std::size_t line_no_ = 0;
};

/// Reader over a caller-owned stream. The stream must outlive the reader.
std::unique_ptr<TraceReader> make_trace_reader(std::istream& in,
                                               TraceFormat format,
                                               std::size_t node_count);

/// Reader that owns the opened file. Throws std::runtime_error
/// ("open_trace_reader: cannot open <path>") on IO failure.
std::unique_ptr<TraceReader> open_trace_reader(const std::string& path,
                                               TraceFormat format,
                                               std::size_t node_count);

/// Result of one streaming training pass: the trace's envelope plus the
/// trained sparse contact-rate graph.
struct SparseTraceSummary {
  std::size_t node_count = 0;
  std::size_t event_count = 0;
  Time start_time = 0.0;
  Time end_time = 0.0;
  /// Wall-clock duration with silent gaps capped at max_idle_gap
  /// (== ContactTrace::active_duration); 0 when < 2 events or gap <= 0.
  Time active_duration = 0.0;
  graph::SparseContactGraph rates{2};  // replaced by ingest; min legal size
};

/// Trains contact rates in ONE pass over `reader`: counts contacts per
/// distinct pair in a hash map, tracks the time envelope, and emits the CSR
/// graph. With max_idle_gap > 0 the rates are active-time rescaled exactly
/// as ContactTrace::estimate_rates_active computes them (same two-step
/// count/wall * wall/active arithmetic, so the values are bit-identical);
/// with max_idle_gap <= 0 they are plain wall-clock MLE rates
/// (estimate_rates). Active-time training requires time-sorted input —
/// a decreasing timestamp throws std::invalid_argument.
///
/// Validation matches ContactTrace's constructor: node ids >= node_count
/// ("event references unknown node") and self-contacts ("self-contact
/// event") throw std::invalid_argument.
SparseTraceSummary ingest_sparse_trace(TraceReader& reader,
                                       std::size_t node_count,
                                       Time max_idle_gap);

/// Convenience: open + ingest. IO errors throw std::runtime_error; parse
/// and validation errors are re-thrown as "<path>: <original message>".
SparseTraceSummary ingest_sparse_trace_file(const std::string& path,
                                            TraceFormat format,
                                            std::size_t node_count,
                                            Time max_idle_gap);

}  // namespace odtn::trace
