#include "traffic/traffic.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn::traffic {

const char* arrival_name(Arrival arrival) {
  switch (arrival) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kDeterministic: return "deterministic";
    case Arrival::kMmpp: return "mmpp";
  }
  return "?";
}

Arrival parse_arrival(const std::string& name) {
  if (name == "poisson") return Arrival::kPoisson;
  if (name == "deterministic") return Arrival::kDeterministic;
  if (name == "mmpp") return Arrival::kMmpp;
  throw std::invalid_argument("traffic: unknown arrival process '" + name +
                              "' (poisson|deterministic|mmpp)");
}

double TrafficConfig::offered_rate() const {
  double total = 0.0;
  for (const auto& f : flows) total += f.rate;
  return total;
}

namespace {

// Resolved half-open endpoint range: [lo, hi) with the 0,0 = whole-network
// default applied.
struct Range {
  NodeId lo;
  NodeId hi;
  std::size_t size() const { return hi - lo; }
  bool contains(NodeId v) const { return v >= lo && v < hi; }
};

Range resolve(NodeId lo, NodeId hi, std::size_t nodes) {
  if (lo == 0 && hi == 0) return {0, static_cast<NodeId>(nodes)};
  return {lo, hi};
}

void validate_flow(const FlowConfig& f, std::size_t flow, std::size_t nodes) {
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("traffic: flow " + std::to_string(flow) +
                                ": " + what);
  };
  if (!(f.rate > 0.0)) fail("rate must be > 0");
  if (!(f.ttl > 0.0)) fail("ttl must be > 0");
  if (f.copies == 0) fail("copies must be >= 1");
  auto check_range = [&](NodeId lo, NodeId hi, const char* which) {
    if (lo == 0 && hi == 0) return;
    if (hi <= lo) fail(std::string(which) + " range is empty");
    if (hi > nodes) fail(std::string(which) + " range exceeds node count");
  };
  check_range(f.src_lo, f.src_hi, "src");
  check_range(f.dst_lo, f.dst_hi, "dst");
  Range src = resolve(f.src_lo, f.src_hi, nodes);
  Range dst = resolve(f.dst_lo, f.dst_hi, nodes);
  if (src.size() == 1 && dst.size() == 1 && src.lo == dst.lo) {
    fail("src and dst ranges pin the same single node");
  }
  if (f.arrival == Arrival::kMmpp) {
    if (!(f.mean_burst > 0.0) || !(f.mean_idle > 0.0)) {
      fail("mmpp dwell times must be > 0");
    }
    const double max_factor = (f.mean_burst + f.mean_idle) / f.mean_burst;
    if (f.burst_factor < 1.0 || f.burst_factor > max_factor) {
      fail("mmpp burst_factor must be in [1, (mean_burst+mean_idle)/"
           "mean_burst]");
    }
  }
}

// Draws a destination in `dst`, never equal to src. When src lies inside
// the range, draw from the range minus one slot and shift past src — one
// uniform draw, no rejection loop.
NodeId draw_dst(const Range& dst, NodeId src, util::Rng& rng) {
  if (dst.contains(src)) {
    NodeId d = dst.lo + static_cast<NodeId>(rng.below(dst.size() - 1));
    if (d >= src) ++d;
    return d;
  }
  return dst.lo + static_cast<NodeId>(rng.below(dst.size()));
}

// Emits one flow's arrivals on [0, horizon) into `out`.
void generate_flow(const FlowConfig& f, std::uint32_t flow, std::size_t nodes,
                   Time horizon, util::Rng& rng,
                   std::vector<TrafficMessage>& out) {
  const Range src = resolve(f.src_lo, f.src_hi, nodes);
  const Range dst = resolve(f.dst_lo, f.dst_hi, nodes);

  auto emit = [&](Time t) {
    TrafficMessage msg;
    msg.spec.src = src.lo + static_cast<NodeId>(rng.below(src.size()));
    msg.spec.dst = draw_dst(dst, msg.spec.src, rng);
    msg.spec.start = t;
    msg.spec.ttl = f.ttl;
    msg.spec.num_relays = f.num_relays;
    msg.spec.copies = f.copies;
    msg.priority = f.priority;
    msg.flow = flow;
    out.push_back(std::move(msg));
  };

  switch (f.arrival) {
    case Arrival::kPoisson: {
      Time t = rng.exponential(f.rate);
      while (t < horizon) {
        emit(t);
        t += rng.exponential(f.rate);
      }
      break;
    }
    case Arrival::kDeterministic: {
      // Paced: first arrival after one full interval, then fixed gaps.
      const Time gap = 1.0 / f.rate;
      for (Time t = gap; t < horizon; t += gap) emit(t);
      break;
    }
    case Arrival::kMmpp: {
      // 2-state MMPP. The ON rate is rate * burst_factor; the OFF rate is
      // whatever makes the dwell-weighted average equal `rate` (>= 0 by
      // the burst_factor validation above).
      const double on_rate = f.rate * f.burst_factor;
      const double off_rate =
          (f.rate * (f.mean_burst + f.mean_idle) - on_rate * f.mean_burst) /
          f.mean_idle;
      // Start in the stationary state distribution.
      bool on = rng.chance(f.mean_burst / (f.mean_burst + f.mean_idle));
      Time t = 0.0;
      while (t < horizon) {
        const Time dwell =
            rng.exponential(1.0 / (on ? f.mean_burst : f.mean_idle));
        const Time state_end = std::min(t + dwell, horizon);
        const double rate = on ? on_rate : off_rate;
        if (rate > 0.0) {
          Time a = t + rng.exponential(rate);
          while (a < state_end) {
            emit(a);
            a += rng.exponential(rate);
          }
        }
        t += dwell;
        on = !on;
      }
      break;
    }
  }
}

}  // namespace

void TrafficConfig::validate(std::size_t nodes) const {
  if (!enabled()) {
    if (horizon < 0.0) {
      throw std::invalid_argument("traffic: horizon must be >= 0");
    }
    if (horizon > 0.0 && flows.empty()) {
      throw std::invalid_argument("traffic: horizon set but no flows");
    }
    return;
  }
  if (nodes < 2) {
    throw std::invalid_argument("traffic: need >= 2 nodes");
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    validate_flow(flows[i], i, nodes);
  }
}

TrafficPlan::TrafficPlan(const TrafficConfig& config, std::size_t nodes,
                         std::uint64_t seed) {
  config.validate(nodes);
  if (!config.enabled()) return;
  for (std::size_t f = 0; f < config.flows.size(); ++f) {
    // Per-flow sub-stream: adding / reordering other flows never perturbs
    // this flow's arrivals.
    util::Rng rng(util::derive_seed(seed, f));
    generate_flow(config.flows[f], static_cast<std::uint32_t>(f), nodes,
                  config.horizon, rng, messages_);
  }
  // Merge flows into global arrival order. (start, flow, emission order)
  // is a strict total order, so stable_sort makes the merged plan unique.
  std::stable_sort(messages_.begin(), messages_.end(),
                   [](const TrafficMessage& a, const TrafficMessage& b) {
                     if (a.spec.start != b.spec.start) {
                       return a.spec.start < b.spec.start;
                     }
                     return a.flow < b.flow;
                   });
}

std::vector<routing::MessageSpec> TrafficPlan::specs() const {
  std::vector<routing::MessageSpec> out;
  out.reserve(messages_.size());
  for (const auto& m : messages_) out.push_back(m.spec);
  return out;
}

std::vector<std::uint8_t> TrafficPlan::priorities() const {
  std::vector<std::uint8_t> out;
  out.reserve(messages_.size());
  for (const auto& m : messages_) out.push_back(m.priority);
  return out;
}

}  // namespace odtn::traffic
