// odtn::traffic — deterministic open-loop workload generation.
//
// The paper (and the closed forms in src/analysis) injects one message per
// run. This subsystem generates *sustained* offered load so the simulator
// can answer deployment questions: how many msgs/sec does a deployment
// carry at a given delivery rate, what happens to p99 delay and to the
// anonymity set as load grows (bench/ablation_anonymity_vs_load)?
//
// A TrafficPlan expands a TrafficConfig into a time-ordered message list.
// Each flow draws from its own util::derive_seed(seed, flow) sub-stream,
// so a plan is a pure function of (config, nodes, seed): bit-identical at
// every --threads count, independent of how runs are sharded.
//
// Arrival processes per flow:
//   * kPoisson       — i.i.d. Exp(1/rate) gaps (M/·/· offered load).
//   * kDeterministic — fixed gaps of 1/rate (paced CBR traffic).
//   * kMmpp          — 2-state Markov-modulated Poisson process: an ON
//     state emitting at rate * burst_factor alternates with a silent OFF
//     state; dwell times are Exp(mean_burst) / Exp(mean_idle). The OFF/ON
//     split is chosen so the *long-run* average rate equals `rate`, which
//     makes the three processes comparable at equal offered load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/types.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace odtn::traffic {

enum class Arrival : std::uint8_t { kPoisson, kDeterministic, kMmpp };

/// "poisson", "deterministic", or "mmpp".
const char* arrival_name(Arrival arrival);
/// Inverse of arrival_name; throws std::invalid_argument on unknown names.
Arrival parse_arrival(const std::string& name);

/// One traffic flow: an arrival process plus the message template its
/// arrivals are stamped from. Endpoint ranges are half-open [lo, hi);
/// lo == hi == 0 means "the whole network".
struct FlowConfig {
  Arrival arrival = Arrival::kPoisson;
  /// Long-run mean arrival rate, messages per time unit (> 0).
  double rate = 0.0;
  /// kMmpp only: the ON-state rate is rate * burst_factor. Must satisfy
  /// 1 <= burst_factor <= (mean_burst + mean_idle) / mean_burst, or the
  /// OFF state would need a negative rate to average out to `rate`.
  double burst_factor = 4.0;
  /// kMmpp only: mean ON / OFF dwell times.
  double mean_burst = 60.0;
  double mean_idle = 180.0;
  /// Drainage class: 0 is the most urgent. Under contact bandwidth,
  /// transfers are served in (priority, arrival-order) order.
  std::uint8_t priority = 0;
  /// Source / destination node ranges, [lo, hi); 0,0 = all nodes.
  NodeId src_lo = 0;
  NodeId src_hi = 0;
  NodeId dst_lo = 0;
  NodeId dst_hi = 0;
  /// Per-flow onion parameters (routing::MessageSpec's K / L / TTL).
  std::size_t num_relays = 3;
  std::size_t copies = 1;
  Time ttl = 1800.0;
};

struct TrafficConfig {
  std::vector<FlowConfig> flows;
  /// Arrivals are generated on [0, horizon).
  Time horizon = 0.0;

  /// A default-constructed config disables the traffic path entirely
  /// (the zero-knob byte-identity contract).
  bool enabled() const { return horizon > 0.0 && !flows.empty(); }
  /// Sum of flow rates: the total offered load in msgs per time unit.
  double offered_rate() const;
  /// Throws std::invalid_argument (one-line message) on bad knobs.
  void validate(std::size_t nodes) const;
};

/// One generated message: the routing-layer spec plus the scheduling
/// attributes the simulator's drainage order needs.
struct TrafficMessage {
  routing::MessageSpec spec;
  std::uint8_t priority = 0;
  /// Index of the flow that emitted it (stable across thread counts).
  std::uint32_t flow = 0;
};

/// Expands a TrafficConfig into a time-ordered message list. Flow f draws
/// from Rng(derive_seed(seed, f)); the merged list is sorted by
/// (start, flow, per-flow sequence), so it is a pure function of the
/// arguments — no dependence on thread count or evaluation order.
class TrafficPlan {
 public:
  TrafficPlan(const TrafficConfig& config, std::size_t nodes,
              std::uint64_t seed);

  const std::vector<TrafficMessage>& messages() const { return messages_; }
  std::size_t size() const { return messages_.size(); }

  /// Split views for sim::run_network_sim: the specs and the parallel
  /// priority vector (same order as messages()).
  std::vector<routing::MessageSpec> specs() const;
  std::vector<std::uint8_t> priorities() const;

 private:
  std::vector<TrafficMessage> messages_;
};

}  // namespace odtn::traffic
