#include "util/args.hpp"

#include <charconv>
#include <stdexcept>

namespace odtn::util {

Args::Args(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Args::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  // Like strtoll, an unparsable value yields 0 (v stays as initialized) and
  // trailing garbage after a numeric prefix is ignored.
  const std::string& s = it->second;
  std::int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v, 10);
  return v;
}

double Args::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& s = it->second;
  double v = 0.0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

bool Args::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace odtn::util
