// Minimal command-line flag parsing for the bench/example binaries.
//
// Accepts flags of the form `--name=value` or `--name value`; anything else
// is collected as a positional argument. Benches use this so runs, seeds and
// sweep ranges can be overridden without recompiling:
//
//   fig04_delivery_vs_deadline_group --runs=500 --seed=7
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace odtn::util {

class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace odtn::util
