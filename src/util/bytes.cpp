#include "util/bytes.hpp"

#include <stdexcept>

namespace odtn::util {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(const Bytes& data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(const Bytes& data) {
  return std::string(data.begin(), data.end());
}

bool ct_equal(const Bytes& a, const Bytes& b) {
  return ct_equal_span(a, b);
}

bool ct_equal_span(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_zero(Bytes& data) {
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
}

void append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void put_u32le(Bytes& dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64le(Bytes& dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32le(const Bytes& src, std::size_t offset) {
  if (offset + 4 > src.size()) throw std::out_of_range("get_u32le");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{src[offset + i]} << (8 * i);
  return v;
}

std::uint64_t get_u64le(const Bytes& src, std::size_t offset) {
  if (offset + 8 > src.size()) throw std::out_of_range("get_u64le");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{src[offset + i]} << (8 * i);
  return v;
}

}  // namespace odtn::util
