// Byte-buffer helpers shared by the crypto and onion layers.
//
// A `Bytes` buffer is the unit of every wire-format operation in this
// library: onion packets, keys, nonces, and digests are all `Bytes`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace odtn::util {

using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hex ("deadbeef").
std::string to_hex(const Bytes& data);

/// Decodes a hex string (upper or lower case, even length).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes into a buffer (no terminator).
Bytes to_bytes(std::string_view s);

/// Interprets a buffer as text.
std::string to_string(const Bytes& data);

/// Constant-time equality; returns false on length mismatch without
/// inspecting contents. Use for MAC/tag comparison.
bool ct_equal(const Bytes& a, const Bytes& b);
bool ct_equal_span(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b);

/// Best-effort secure wipe (volatile writes so the compiler keeps them).
void secure_zero(Bytes& data);

/// Appends `src` to `dst`.
void append(Bytes& dst, const Bytes& src);

/// Little-endian encode/decode of fixed-width integers (wire format).
void put_u32le(Bytes& dst, std::uint32_t v);
void put_u64le(Bytes& dst, std::uint64_t v);
std::uint32_t get_u32le(const Bytes& src, std::size_t offset);
std::uint64_t get_u64le(const Bytes& src, std::size_t offset);

}  // namespace odtn::util
