// Core identifier and time types shared by every DTN subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace odtn {

/// Node identifier: nodes are numbered 0..n-1 within a network.
using NodeId = std::uint32_t;

/// Onion-group identifier: groups are numbered 0..ceil(n/g)-1.
using GroupId = std::uint32_t;

/// Simulation time. Unit-agnostic: the random-graph experiments use
/// minutes (as Table II of the paper), the trace experiments use seconds.
using Time = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

}  // namespace odtn
