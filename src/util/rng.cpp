#include "util/rng.hpp"

#include <cmath>

namespace odtn::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: bound must be > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("Rng::exponential: rate must be positive");
  }
  // Inverse CDF; 1 - uniform01() is in (0, 1] so log() is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

Rng Rng::split() {
  Rng child(0);
  SplitMix64 sm(next() ^ 0xd2b74407b1ce6e93ULL);
  for (auto& s : child.state_) s = sm.next();
  return child;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  // Partial Fisher–Yates over an index vector; O(n) setup, fine for the
  // network sizes this library targets (n <= a few thousand).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace odtn::util
