// Deterministic, seedable random number generation for simulations.
//
// Every stochastic component of the simulator (contact processes, relay
// selection, compromise sets) draws from an `Rng` handed down from the
// experiment seed, so each experiment run is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace odtn::util {

/// SplitMix64 — used to expand a 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of independent stream `stream` from a base seed: the
/// canonical SplitMix64 split, i.e. element `stream` of the SplitMix64
/// sequence started at `base`. The experiment engine seeds run `i` with
/// `derive_seed(config.seed, i)`, which makes every run's randomness a
/// function of (base seed, run index) alone — independent of thread count,
/// scheduling, and the outcome of other runs.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  SplitMix64 sm(base + 0x9e3779b97f4a7c15ULL * stream);
  return sm.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1db38cd3a2f6e1ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate).
  /// Throws std::invalid_argument for non-positive rate.
  double exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator (stream splitting); used to give
  /// each subsystem of a run its own stream without coupling draw orders.
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), uniformly at random,
  /// in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace odtn::util
