#include "util/run_length.hpp"

namespace odtn::util {

std::vector<std::size_t> runs_of_ones(const std::vector<bool>& bits) {
  std::vector<std::size_t> runs;
  std::size_t cur = 0;
  for (bool b : bits) {
    if (b) {
      ++cur;
    } else if (cur > 0) {
      runs.push_back(cur);
      cur = 0;
    }
  }
  if (cur > 0) runs.push_back(cur);
  return runs;
}

std::size_t sum_squared_runs(const std::vector<bool>& bits) {
  std::size_t sum = 0;
  std::size_t cur = 0;
  for (bool b : bits) {
    if (b) {
      ++cur;
    } else {
      sum += cur * cur;
      cur = 0;
    }
  }
  sum += cur * cur;
  return sum;
}

double traceable_rate(const std::vector<bool>& bits) {
  if (bits.empty()) return 0.0;
  double eta = static_cast<double>(bits.size());
  return static_cast<double>(sum_squared_runs(bits)) / (eta * eta);
}

}  // namespace odtn::util
