// Run-length tools for bit strings.
//
// The paper's traceable-rate analysis (Sec. IV-D) reduces "how much of a
// routing path is disclosed" to computing runs of 1s in the binary
// representation of a path: bit i is 1 iff the sender of hop i is
// compromised. These helpers are shared by the adversary measurement code
// and the analytical model.
#pragma once

#include <cstddef>
#include <vector>

namespace odtn::util {

/// Lengths of maximal runs of `true` in `bits`, in order of appearance.
/// Example: 0110111 -> {2, 3}.
std::vector<std::size_t> runs_of_ones(const std::vector<bool>& bits);

/// Sum of squared run lengths of `true` runs; the numerator of Eq. 1.
/// Example: 0110111 -> 2^2 + 3^2 = 13.
std::size_t sum_squared_runs(const std::vector<bool>& bits);

/// Traceable rate of a path bit string (Eq. 1):
///   P_trace = (1/eta^2) * sum_i (run_i)^2
/// where eta = bits.size() is the hop count. Returns 0 for empty input.
double traceable_rate(const std::vector<bool>& bits);

}  // namespace odtn::util
