#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odtn::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) /
                            static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  double pos = (x - lo_) / width_;
  std::size_t i;
  if (pos < 0) {
    i = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(pos);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return 0.5 * (bin_low(i) + bin_high(i));
  }
  return hi_;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace odtn::util
