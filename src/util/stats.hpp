// Streaming statistics for experiment aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace odtn::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 when n < 2.
  double stderr_mean() const;
  /// Half-width of the ~95% normal confidence interval on the mean.
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator (parallel aggregation).
  void merge(const RunningStats& other);

  /// Raw Welford state, for exact checkpoint round-trips: m2 must be
  /// stored as-is (reconstructing it from variance() would lose bits).
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const { return {n_, mean_, m2_, min_, max_}; }
  static RunningStats from_state(const State& s) {
    RunningStats r;
    r.n_ = s.n;
    r.mean_ = s.mean;
    r.m2_ = s.m2;
    r.min_ = s.min;
    r.max_ = s.max;
    return r;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used for delay distributions in the examples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Empirical quantile (0 <= q <= 1) from bin midpoints.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& v);

}  // namespace odtn::util
