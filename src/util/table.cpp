#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace odtn::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::new_row() { rows_.emplace_back(); }

void Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before new_row");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::cell: row overflow");
  }
  rows_.back().push_back(value);
}

void Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  cell(os.str());
}

void Table::cell(std::int64_t value) { cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << '\n';
  };
  emit(headers_);
  std::vector<std::string> rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

}  // namespace odtn::util
