// Aligned plain-text table printer used by the figure-reproduction benches
// to print "paper rows": one row per x-value, one column per curve.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace odtn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  void new_row();
  void cell(const std::string& value);
  void cell(double value, int precision = 4);
  void cell(std::int64_t value);

  /// Renders the table with aligned columns to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  /// Raw cell access (row-major), for tests.
  const std::string& at(std::size_t row, std::size_t col) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odtn::util
