#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace odtn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++stats_.submitted;
    stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  }
  work_cv_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  metrics::Registry* pool_metrics) {
  if (n == 0) return;
  if (threads == 0) threads = ThreadPool::hardware_threads();
  threads = std::min(threads, n);

  // Per-task wall latency, written into fixed slots so aggregation needs no
  // synchronization. Only sampled when the caller asked for pool metrics.
  std::vector<double> task_seconds;
  if (pool_metrics != nullptr) task_seconds.assign(n, 0.0);
  auto run_task = [&](std::size_t i) {
    if (pool_metrics == nullptr) {
      fn(i);
      return;
    }
    // odtn-lint: allow(banned-api) — kWall timer site: per-task wall times
    // feed only Stability::kWall pool metrics, excluded from deterministic
    // export.
    auto t0 = std::chrono::steady_clock::now();
    fn(i);
    // odtn-lint: allow(banned-api) — kWall timer site (same stopwatch).
    const auto t1 = std::chrono::steady_clock::now();
    task_seconds[i] = std::chrono::duration<double>(t1 - t0).count();
  };

  auto export_pool_metrics = [&](std::size_t workers,
                                 std::size_t peak_queue) {
    if (pool_metrics == nullptr) return;
    metrics::counter(pool_metrics, "pool.tasks", metrics::Stability::kWall)
        .inc(n);
    metrics::gauge(pool_metrics, "pool.workers", metrics::Stability::kWall)
        .set(static_cast<double>(workers));
    metrics::gauge(pool_metrics, "pool.queue_peak", metrics::Stability::kWall)
        .set_max(static_cast<double>(peak_queue));
    auto latency = metrics::timer(pool_metrics, "pool.task_seconds");
    for (double s : task_seconds) latency.observe(s);
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_task(i);
    export_pool_metrics(1, 0);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::once_flag error_once;
  auto drain = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        run_task(i);
      } catch (...) {
        std::call_once(error_once, [&] { error = std::current_exception(); });
      }
    }
  };

  ThreadPool pool(threads - 1);  // the calling thread is the extra worker
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.submit(drain);
  drain();
  pool.wait();
  export_pool_metrics(threads, pool.stats().peak_queue);
  if (error) std::rethrow_exception(error);
}

}  // namespace odtn::util
