#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace odtn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) threads = ThreadPool::hardware_threads();
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::once_flag error_once;
  auto drain = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::call_once(error_once, [&] { error = std::current_exception(); });
      }
    }
  };

  ThreadPool pool(threads - 1);  // the calling thread is the extra worker
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.submit(drain);
  drain();
  pool.wait();
  if (error) std::rethrow_exception(error);
}

}  // namespace odtn::util
