// A small fixed-size worker pool for embarrassingly parallel workloads.
//
// The experiment engine shards independent realizations across workers
// (core/experiment.cpp). Jobs are type-erased closures; `wait()` blocks
// until every submitted job has finished, so one pool can be reused across
// sweep points. `parallel_for` is the common case: run `fn(i)` for
// i in [0, n) on `threads` workers with dynamic (atomic-counter) scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace odtn::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a job. Jobs must not throw (wrap and capture exceptions on
  /// the caller's side; parallel_for does exactly that).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has completed.
  void wait();

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// return 0 on exotic platforms).
  static std::size_t hardware_threads();

  /// Scheduling statistics since construction (snapshot under the queue
  /// lock). Scheduling-dependent by nature — export only as
  /// metrics::Stability::kWall.
  struct Stats {
    std::size_t submitted = 0;
    std::size_t peak_queue = 0;
  };
  Stats stats() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  Stats stats_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // wait(): queue empty and nothing running
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for every i in [0, n), fanned out over up to `threads`
/// workers (`0` = ThreadPool::hardware_threads()). Indices are handed out
/// dynamically, so the mapping of index to worker is unspecified — bodies
/// must be independent. Runs inline on the calling thread when a single
/// worker suffices. The first exception thrown by any body is rethrown
/// here after all workers drain.
///
/// When `pool_metrics` is non-null, per-task wall latency ("pool.task
/// _seconds" timer), task count, worker count, and the pool's peak queue
/// depth are recorded — all Stability::kWall, so a default MetricsWriter
/// export stays deterministic.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  metrics::Registry* pool_metrics = nullptr);

}  // namespace odtn::util
