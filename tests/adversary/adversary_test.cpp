#include "adversary/adversary.hpp"

#include <gtest/gtest.h>

#include "analysis/anonymity.hpp"
#include "graph/contact_graph.hpp"
#include "analysis/traceable.hpp"
#include "util/stats.hpp"

namespace odtn::adversary {
namespace {

TEST(CompromiseModel, ExactCount) {
  util::Rng rng(1);
  CompromiseModel cm(100, 17, rng);
  std::size_t count = 0;
  for (NodeId v = 0; v < 100; ++v) count += cm.is_compromised(v);
  EXPECT_EQ(count, 17u);
  EXPECT_EQ(cm.compromised_count(), 17u);
  EXPECT_EQ(cm.node_count(), 100u);
}

TEST(CompromiseModel, FromFractionRounds) {
  util::Rng rng(2);
  EXPECT_EQ(CompromiseModel::from_fraction(100, 0.1, rng).compromised_count(),
            10u);
  EXPECT_EQ(CompromiseModel::from_fraction(41, 0.1, rng).compromised_count(),
            4u);
  EXPECT_EQ(CompromiseModel::from_fraction(12, 0.5, rng).compromised_count(),
            6u);
}

TEST(CompromiseModel, ExtremesAndValidation) {
  util::Rng rng(3);
  CompromiseModel none(10, 0, rng);
  for (NodeId v = 0; v < 10; ++v) EXPECT_FALSE(none.is_compromised(v));
  CompromiseModel all(10, 10, rng);
  for (NodeId v = 0; v < 10; ++v) EXPECT_TRUE(all.is_compromised(v));
  EXPECT_THROW(CompromiseModel(10, 11, rng), std::invalid_argument);
  EXPECT_THROW(CompromiseModel::from_fraction(10, 1.5, rng),
               std::invalid_argument);
}

TEST(CompromiseModel, UniformSelection) {
  util::Rng rng(4);
  std::vector<int> hits(20, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    CompromiseModel cm(20, 5, rng);
    for (NodeId v = 0; v < 20; ++v) hits[v] += cm.is_compromised(v);
  }
  for (int h : hits) EXPECT_NEAR(h, trials / 4, 250);
}

TEST(CompromiseModel, TargetedPicksHighestRateNodes) {
  graph::ContactGraph g(5);
  g.set_rate(0, 1, 0.1);
  g.set_rate(2, 3, 1.0);
  g.set_rate(2, 4, 1.0);
  g.set_rate(3, 4, 0.5);
  // Total rates: 0:0.1 1:0.1 2:2.0 3:1.5 4:1.5
  auto cm = CompromiseModel::targeted(g, 2);
  EXPECT_TRUE(cm.is_compromised(2));
  EXPECT_TRUE(cm.is_compromised(3));  // tie with 4 broken by id
  EXPECT_FALSE(cm.is_compromised(4));
  EXPECT_FALSE(cm.is_compromised(0));
  EXPECT_EQ(cm.compromised_count(), 2u);
}

TEST(CompromiseModel, TargetedExtremes) {
  util::Rng rng(20);
  auto g = graph::random_contact_graph(10, rng);
  auto none = CompromiseModel::targeted(g, 0);
  for (NodeId v = 0; v < 10; ++v) EXPECT_FALSE(none.is_compromised(v));
  auto all = CompromiseModel::targeted(g, 10);
  for (NodeId v = 0; v < 10; ++v) EXPECT_TRUE(all.is_compromised(v));
  EXPECT_THROW(CompromiseModel::targeted(g, 11), std::invalid_argument);
}

TEST(CompromiseModel, TargetedIsDeterministic) {
  util::Rng rng(21);
  auto g = graph::random_contact_graph(20, rng);
  auto a = CompromiseModel::targeted(g, 5);
  auto b = CompromiseModel::targeted(g, 5);
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(a.is_compromised(v), b.is_compromised(v));
  }
}

TEST(PathBits, SenderOrder) {
  util::Rng rng(5);
  CompromiseModel cm(10, 0, rng);
  // Manually build: no one compromised -> all bits 0; length = relays + 1.
  auto bits = path_bits(0, {1, 2, 3}, cm);
  EXPECT_EQ(bits.size(), 4u);
  for (bool b : bits) EXPECT_FALSE(b);
}

TEST(MeasuredTraceable, PaperExample) {
  // Path v1..v5 (src=v1, relays v2,v3,v4, dst=v5): compromising v1,v2,v4
  // gives 1101 -> 0.3125; v2,v3,v4 gives 0111 -> 0.5625. Construct the
  // exact sets with a deterministic trick: choose compromised ids directly.
  util::Rng rng(6);
  // Build a model with all 5 nodes and mark by rejection sampling runs: we
  // instead exploit CompromiseModel(n, n, rng) complement tricks — simpler
  // to just probe with crafted paths against a fixed compromise set.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    CompromiseModel cm(5, 3, rng);
    bool c0 = cm.is_compromised(0), c1 = cm.is_compromised(1),
         c2 = cm.is_compromised(2), c3 = cm.is_compromised(3);
    if (c0 && c1 && !c2 && c3) {
      EXPECT_DOUBLE_EQ(measured_traceable_rate(0, {1, 2, 3}, cm), 0.3125);
      return;
    }
  }
  FAIL() << "never sampled the target compromise set";
}

TEST(MeasuredTraceable, AllAndNothing) {
  util::Rng rng(7);
  CompromiseModel none(10, 0, rng);
  CompromiseModel all(10, 10, rng);
  EXPECT_EQ(measured_traceable_rate(0, {1, 2, 3}, none), 0.0);
  EXPECT_EQ(measured_traceable_rate(0, {1, 2, 3}, all), 1.0);
}

TEST(MeasuredTraceable, ConvergesToExactModel) {
  // Monte Carlo over compromise sets on random relay paths converges to
  // analysis::traceable_rate_exact (sampling without replacement makes the
  // match approximate at small n; use n = 200 to tighten it).
  util::Rng rng(8);
  std::size_t n = 200, c = 40, eta = 4;
  util::RunningStats mc;
  for (int trial = 0; trial < 30000; ++trial) {
    CompromiseModel cm(n, c, rng);
    // Path: src=0, relays 1..eta-1 (distinct nodes).
    std::vector<NodeId> relays;
    for (NodeId v = 1; v < eta; ++v) relays.push_back(v);
    mc.add(measured_traceable_rate(0, relays, cm));
  }
  double exact = analysis::traceable_rate_exact(eta, 0.2);
  EXPECT_NEAR(mc.mean(), exact, 0.012);
}

TEST(CompromisedPositions, SingleCopyCounting) {
  util::Rng rng(9);
  for (int attempt = 0; attempt < 2000; ++attempt) {
    CompromiseModel cm(6, 2, rng);
    if (cm.is_compromised(0) && cm.is_compromised(3)) {
      // positions: src(0)=hit, hop relays {1},{2},{3}: only {3} hit.
      EXPECT_EQ(compromised_positions(0, {{1}, {2}, {3}}, cm), 2u);
      return;
    }
  }
  FAIL() << "never sampled the target compromise set";
}

TEST(CompromisedPositions, MultiCopyAnyRelayExposesGroup) {
  util::Rng rng(10);
  for (int attempt = 0; attempt < 5000; ++attempt) {
    CompromiseModel cm(8, 1, rng);
    if (cm.is_compromised(4)) {
      // hop 0 relays {1, 4}: exposed via 4; hop 1 relays {2, 3}: clean.
      EXPECT_EQ(compromised_positions(0, {{1, 4}, {2, 3}}, cm), 1u);
      // A position counts once even with two compromised relays.
      EXPECT_EQ(compromised_positions(0, {{4, 4}, {2}}, cm), 1u);
      return;
    }
  }
  FAIL() << "never sampled the target compromise set";
}

TEST(MeasuredAnonymity, MatchesFormulaAtObservedCo) {
  util::Rng rng(11);
  CompromiseModel cm(100, 30, rng);
  std::vector<std::vector<NodeId>> relays = {{1}, {2}, {3}};
  std::size_t c_o = compromised_positions(0, relays, cm);
  double expect =
      analysis::path_anonymity(4, static_cast<double>(c_o), 100, 5);
  EXPECT_DOUBLE_EQ(measured_path_anonymity(0, relays, cm, 100, 5), expect);
}

TEST(MeasuredAnonymity, ConvergesToModel) {
  // Mean measured anonymity over many compromise sets ~= Eq. 19 at E[c_o].
  // (D is linear in c_o, so the expectation passes through exactly.)
  util::Rng rng(12);
  std::size_t n = 100, c = 10;
  util::RunningStats mc;
  for (int trial = 0; trial < 20000; ++trial) {
    CompromiseModel cm(n, c, rng);
    NodeId src = static_cast<NodeId>(rng.below(n));
    std::vector<std::vector<NodeId>> relays;
    auto picks = rng.sample_without_replacement(n, 3);
    for (auto i : picks) relays.push_back({static_cast<NodeId>(i)});
    mc.add(measured_path_anonymity(src, relays, cm, n, 5));
  }
  double model = analysis::path_anonymity_model(4, 0.1, n, 5);
  EXPECT_NEAR(mc.mean(), model, 0.01);
}

}  // namespace
}  // namespace odtn::adversary
