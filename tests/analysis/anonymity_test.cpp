#include "analysis/anonymity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace odtn::analysis {
namespace {

TEST(ExpectedCompromised, SingleCopyIsEtaP) {
  EXPECT_DOUBLE_EQ(expected_compromised_on_path(4, 0.1), 0.4);
  EXPECT_DOUBLE_EQ(expected_compromised_on_path(4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_compromised_on_path(4, 1.0), 4.0);
}

TEST(ExpectedCompromised, MultiCopyFormula) {
  // Eq. 20: eta * (1 - (1-p)^L).
  double p = 0.1;
  EXPECT_NEAR(expected_compromised_on_path(4, p, 3),
              4.0 * (1 - std::pow(0.9, 3)), 1e-12);
  // L = 1 reduces to the single-copy expectation.
  EXPECT_DOUBLE_EQ(expected_compromised_on_path(4, p, 1),
                   expected_compromised_on_path(4, p));
}

TEST(ExpectedCompromised, MatchesBinomialSimulation) {
  // The closed form equals the Binomial expectation the paper writes.
  util::Rng rng(1);
  std::size_t eta = 5;
  double p = 0.25;
  std::size_t copies = 3;
  util::RunningStats mc;
  for (int trial = 0; trial < 60000; ++trial) {
    int count = 0;
    for (std::size_t pos = 0; pos < eta; ++pos) {
      bool exposed = false;
      for (std::size_t l = 0; l < copies && !exposed; ++l) {
        exposed = rng.chance(p);
      }
      count += exposed;
    }
    mc.add(count);
  }
  EXPECT_NEAR(mc.mean(), expected_compromised_on_path(eta, p, copies), 0.03);
}

TEST(ExpectedCompromised, MonotoneInCopies) {
  double prev = 0.0;
  for (std::size_t l = 1; l <= 6; ++l) {
    double v = expected_compromised_on_path(4, 0.2, l);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, 4.0);
}

TEST(PathAnonymity, NoCompromiseIsPerfect) {
  EXPECT_DOUBLE_EQ(path_anonymity(4, 0.0, 100, 5), 1.0);
  EXPECT_DOUBLE_EQ(path_anonymity_exact(4, 0.0, 100, 5), 1.0);
}

TEST(PathAnonymity, FullCompromiseFloor) {
  // All positions exposed: D = ln g / (ln n - 1).
  double expect = std::log(5.0) / (std::log(100.0) - 1.0);
  EXPECT_NEAR(path_anonymity(4, 4.0, 100, 5), expect, 1e-12);
}

TEST(PathAnonymity, GroupSizeOneFullCompromiseIsZero) {
  EXPECT_NEAR(path_anonymity(4, 4.0, 100, 1), 0.0, 1e-12);
}

TEST(PathAnonymity, DecreasesWithCompromise) {
  double prev = 2.0;
  for (double c_o = 0.0; c_o <= 4.0; c_o += 0.5) {
    double d = path_anonymity(4, c_o, 100, 5);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(PathAnonymity, IncreasesWithGroupSize) {
  // Fig. 9: larger groups hide the next hop better.
  double prev = -1.0;
  for (std::size_t g : {1u, 2u, 5u, 10u, 20u}) {
    double d = path_anonymity(4, 2.0, 100, g);
    EXPECT_GT(d, prev) << "g=" << g;
    prev = d;
  }
}

TEST(PathAnonymity, StirlingCloseToExact) {
  // Eq. 19 is a Stirling approximation of the exact entropy ratio; for the
  // paper's n = 100 they should agree to a few percent.
  for (std::size_t eta : {4u, 6u, 11u}) {
    for (double c_o : {0.0, 1.0, 2.0, 4.0}) {
      if (c_o > eta) continue;
      double stirling = path_anonymity(eta, c_o, 100, 5);
      double exact = path_anonymity_exact(eta, c_o, 100, 5);
      // The ln(n!) ~ n ln n - n approximation carries a few percent of
      // error at n = 100; it grows with eta and c_o.
      EXPECT_NEAR(stirling, exact, 0.10) << "eta=" << eta << " c_o=" << c_o;
    }
  }
  // At the paper's operating point (eta = 4) the agreement is tight.
  EXPECT_NEAR(path_anonymity(4, 1.0, 100, 5),
              path_anonymity_exact(4, 1.0, 100, 5), 0.03);
}

TEST(PathAnonymityModel, MultiCopyReducesAnonymity) {
  // Fig. 12: more copies expose more groups.
  double prev = 2.0;
  for (std::size_t l : {1u, 2u, 3u, 5u}) {
    double d = path_anonymity_model(4, 0.1, 100, 5, l);
    EXPECT_LT(d, prev) << "L=" << l;
    prev = d;
  }
}

TEST(PathAnonymityModel, PaperOperatingPoint) {
  // Sanity-check Fig. 8's shape: g=5, K=3 (eta=4), n=100.
  // D(10%) should be high (>0.9), D(50%) noticeably lower.
  double d10 = path_anonymity_model(4, 0.1, 100, 5);
  double d50 = path_anonymity_model(4, 0.5, 100, 5);
  EXPECT_GT(d10, 0.9);
  EXPECT_LT(d50, d10);
  EXPECT_GT(d50, 0.5);
}

TEST(PathAnonymityDistinct, FullDiversityBracketsEq20) {
  // With d_k = L at every relay hop, the refined model differs from
  // Eq. 20 only in the source position: Eq. 20 applies the L-copy
  // exposure probability even there, while physically the source is a
  // single sender (exposure p). The refined value therefore sits at or
  // above Eq. 20 and below the single-copy model.
  std::size_t eta = 4, n = 100, g = 5, l = 3;
  double p = 0.2;
  std::vector<double> full(eta - 1, static_cast<double>(l));
  double refined = path_anonymity_model_distinct(eta, p, n, g, full);
  EXPECT_GE(refined, path_anonymity_model(eta, p, n, g, l) - 1e-12);
  EXPECT_LT(refined, path_anonymity_model(eta, p, n, g, 1));
  // Exact identity against the definitional expectation.
  double c_o = p + (eta - 1) * (1.0 - std::pow(1.0 - p, double(l)));
  EXPECT_NEAR(refined, path_anonymity(eta, c_o, n, g), 1e-12);
}

TEST(PathAnonymityDistinct, ReducesToSingleCopyAtOneRelayPerHop) {
  std::size_t eta = 4, n = 100, g = 5;
  double p = 0.3;
  std::vector<double> ones(eta - 1, 1.0);
  EXPECT_NEAR(path_anonymity_model_distinct(eta, p, n, g, ones),
              path_anonymity_model(eta, p, n, g, 1), 1e-9);
}

TEST(PathAnonymityDistinct, FewerDistinctRelaysRaiseAnonymity) {
  // The mechanism behind the paper's Fig. 19 gap: when copies reuse
  // relays, fewer positions are exposed and anonymity stays higher than
  // the independent-path model predicts.
  std::size_t eta = 4, n = 100, g = 5;
  double p = 0.3;
  std::vector<double> reused(eta - 1, 1.4);  // realized diversity << L = 5
  double refined = path_anonymity_model_distinct(eta, p, n, g, reused);
  double eq20 = path_anonymity_model(eta, p, n, g, 5);
  double single = path_anonymity_model(eta, p, n, g, 1);
  EXPECT_GT(refined, eq20);
  EXPECT_LT(refined, single);
}

TEST(PathAnonymityDistinct, Validation) {
  EXPECT_THROW(
      path_anonymity_model_distinct(4, 0.1, 100, 5, {1.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      path_anonymity_model_distinct(4, 0.1, 100, 5, {1.0, -1.0, 1.0}),
      std::invalid_argument);
}

TEST(PathAnonymity, Validation) {
  EXPECT_THROW(path_anonymity(0, 0.0, 100, 5), std::invalid_argument);
  EXPECT_THROW(path_anonymity(4, -0.1, 100, 5), std::invalid_argument);
  EXPECT_THROW(path_anonymity(4, 5.0, 100, 5), std::invalid_argument);
  EXPECT_THROW(path_anonymity(4, 1.0, 2, 1), std::invalid_argument);
  EXPECT_THROW(path_anonymity(4, 1.0, 100, 0), std::invalid_argument);
  EXPECT_THROW(path_anonymity(4, 1.0, 100, 101), std::invalid_argument);
  EXPECT_THROW(expected_compromised_on_path(4, 0.5, 0),
               std::invalid_argument);
  EXPECT_THROW(expected_compromised_on_path(4, 1.5), std::invalid_argument);
}

// Parameterized sweep over the paper's Fig. 8/9 grid.
struct AnonCase {
  std::size_t g;
  double p;
};

class AnonymitySweep : public ::testing::TestWithParam<AnonCase> {};

TEST_P(AnonymitySweep, InUnitIntervalAndOrdered) {
  auto [g, p] = GetParam();
  double d1 = path_anonymity_model(4, p, 100, g, 1);
  double d5 = path_anonymity_model(4, p, 100, g, 5);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
  EXPECT_LE(d5, d1 + 1e-12);  // more copies never increase anonymity
}

INSTANTIATE_TEST_SUITE_P(
    Fig8Grid, AnonymitySweep,
    ::testing::Values(AnonCase{1, 0.1}, AnonCase{1, 0.5}, AnonCase{5, 0.1},
                      AnonCase{5, 0.3}, AnonCase{5, 0.5}, AnonCase{10, 0.1},
                      AnonCase{10, 0.5}));

}  // namespace
}  // namespace odtn::analysis
