#include "analysis/cost.hpp"

#include <gtest/gtest.h>

namespace odtn::analysis {
namespace {

TEST(Cost, SingleCopyIsHops) {
  EXPECT_EQ(single_copy_cost(0), 1u);
  EXPECT_EQ(single_copy_cost(3), 4u);
  EXPECT_EQ(single_copy_cost(10), 11u);
}

TEST(Cost, MultiCopyBound) {
  EXPECT_EQ(multi_copy_cost_bound(3, 1), 5u);
  EXPECT_EQ(multi_copy_cost_bound(3, 5), 25u);
  EXPECT_EQ(multi_copy_cost_bound(10, 5), 60u);
}

TEST(Cost, NonAnonymousIs2L) {
  EXPECT_EQ(non_anonymous_cost(1), 2u);
  EXPECT_EQ(non_anonymous_cost(5), 10u);
}

TEST(Cost, AnonymityOverheadOrdering) {
  // The paper's claim: anonymity costs transmissions. For every K >= 1 and
  // L, onion routing costs strictly more than the non-anonymous bound.
  for (std::size_t k = 1; k <= 10; ++k) {
    for (std::size_t l = 1; l <= 5; ++l) {
      EXPECT_GT(multi_copy_cost_bound(k, l), non_anonymous_cost(l))
          << "K=" << k << " L=" << l;
    }
  }
}

TEST(Cost, SingleCopyConsistentWithMultiCopyAtL1) {
  // The L=1 bound (K+2) exceeds the exact single-copy cost (K+1) by the
  // spray slack only.
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_EQ(multi_copy_cost_bound(k, 1) - single_copy_cost(k), 1u);
  }
}

TEST(Cost, ZeroCopiesRejected) {
  EXPECT_THROW(multi_copy_cost_bound(3, 0), std::invalid_argument);
  EXPECT_THROW(non_anonymous_cost(0), std::invalid_argument);
}

}  // namespace
}  // namespace odtn::analysis
