#include "analysis/delivery.hpp"

#include <gtest/gtest.h>

#include <span>

#include "sim/contact_model.hpp"
#include "util/stats.hpp"

namespace odtn::analysis {
namespace {

TEST(OnionRates, FirstHopIsAnycastSum) {
  graph::ContactGraph g(10);
  groups::GroupDirectory dir(10, 2);  // groups {0,1},{2,3},...
  // src = 0, R_1 = group 1 = {2, 3}.
  g.set_rate(0, 2, 0.1);
  g.set_rate(0, 3, 0.3);
  g.set_rate(2, 9, 1.0);  // last hop material
  g.set_rate(3, 9, 2.0);
  auto rates = opportunistic_onion_rates(g, 0, 9, dir, {1});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0.4);       // sum into R_1
  EXPECT_DOUBLE_EQ(rates[1], 1.5);       // average out of R_1 to dst
}

TEST(OnionRates, MiddleHopIsMeanOfSums) {
  graph::ContactGraph g(12);
  groups::GroupDirectory dir(12, 2);
  // R_1 = group 1 = {2,3}, R_2 = group 2 = {4,5}.
  g.set_rate(0, 2, 0.5);
  g.set_rate(2, 4, 0.1);
  g.set_rate(2, 5, 0.2);
  g.set_rate(3, 4, 0.3);
  g.set_rate(3, 5, 0.4);
  g.set_rate(4, 11, 1.0);
  g.set_rate(5, 11, 1.0);
  auto rates = opportunistic_onion_rates(g, 0, 11, dir, {1, 2});
  ASSERT_EQ(rates.size(), 3u);
  // ((0.1+0.2) + (0.3+0.4)) / 2 = 0.5
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
}

TEST(OnionRates, EmptyGroupsRejected) {
  graph::ContactGraph g(4);
  groups::GroupDirectory dir(4, 2);
  EXPECT_THROW(opportunistic_onion_rates(g, 0, 3, dir, {}),
               std::invalid_argument);
}

TEST(DeliveryRate, ZeroHopRateMeansZeroDelivery) {
  EXPECT_EQ(delivery_rate({0.5, 0.0, 0.2}, 100.0), 0.0);
  EXPECT_EQ(delivery_rate({0.0}, 100.0, 3), 0.0);
}

TEST(DeliveryRate, IncreasesWithDeadline) {
  std::vector<double> rates = {0.1, 0.2, 0.15, 0.1};
  double prev = 0.0;
  for (double t : {10.0, 30.0, 60.0, 120.0, 600.0}) {
    double d = delivery_rate(rates, t);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(DeliveryRate, IncreasesWithCopies) {
  std::vector<double> rates = {0.05, 0.05, 0.05, 0.05};
  double prev = 0.0;
  for (std::size_t l = 1; l <= 5; ++l) {
    double d = delivery_rate(rates, 30.0, l);
    EXPECT_GT(d, prev) << "L=" << l;
    prev = d;
  }
}

TEST(DeliveryRate, CopiesScaleEquivalentToRateScale) {
  std::vector<double> rates = {0.1, 0.3};
  std::vector<double> tripled = {0.3, 0.9};
  EXPECT_NEAR(delivery_rate(rates, 12.0, 3), delivery_rate(tripled, 12.0),
              1e-9);
}

TEST(DeliveryRate, ZeroCopiesRejected) {
  EXPECT_THROW(delivery_rate({0.1}, 10.0, 0), std::invalid_argument);
}

TEST(ExpectedDelay, DividesByCopies) {
  std::vector<double> rates = {0.1, 0.2};  // mean 10 + 5 = 15
  EXPECT_DOUBLE_EQ(expected_delay(rates), 15.0);
  EXPECT_DOUBLE_EQ(expected_delay(rates, 3), 5.0);
  EXPECT_THROW(expected_delay(rates, 0), std::invalid_argument);
}

TEST(DeliveryModel, MatchesSimulationOnSingleRealization) {
  // End-to-end validation of Eq. 6: fix a graph, endpoints and groups, then
  // compare the model CDF with a Monte-Carlo per-hop anycast simulation
  // using the contact model (not the routing stack — that cross-check
  // lives in tests/core).
  util::Rng rng(5);
  graph::ContactGraph g = graph::random_contact_graph(30, rng, 10.0, 120.0);
  groups::GroupDirectory dir(30, 5);
  std::vector<GroupId> groups = {1, 3, 4};
  NodeId src = 0, dst = 29;
  auto rates = opportunistic_onion_rates(g, src, dst, dir, groups);

  sim::PoissonContactModel contacts(g, rng);
  for (double deadline : {30.0, 90.0, 240.0}) {
    int delivered = 0;
    const int runs = 4000;
    for (int r = 0; r < runs; ++r) {
      Time now = 0.0;
      NodeId holder = src;
      bool ok = true;
      for (std::size_t hop = 0; hop < groups.size() + 1 && ok; ++hop) {
        std::vector<NodeId> targets;
        if (hop < groups.size()) {
          for (NodeId m : dir.members(groups[hop])) {
            if (m != holder) targets.push_back(m);
          }
        } else {
          targets.push_back(dst);
        }
        auto c = contacts.first_cross_contact(
            std::span<const NodeId>(&holder, 1), targets, now, deadline);
        if (!c.has_value()) {
          ok = false;
        } else {
          now = c->time;
          holder = c->b;
        }
      }
      delivered += ok;
    }
    double sim = static_cast<double>(delivered) / runs;
    double model = delivery_rate(rates, deadline);
    // The model averages the inter-group rate over senders; the sim tracks
    // the realized holder, so a modest gap is expected (the paper sees the
    // same in Figs. 4-5). Require agreement within 8 points.
    EXPECT_NEAR(sim, model, 0.08) << "deadline=" << deadline;
  }
}

}  // namespace
}  // namespace odtn::analysis
