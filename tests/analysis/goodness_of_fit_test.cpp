#include "analysis/goodness_of_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/delivery.hpp"
#include "analysis/hypoexp.hpp"
#include "routing/onion_routing.hpp"
#include "util/rng.hpp"

namespace odtn::analysis {
namespace {

TEST(KsStatistic, PerfectFitIsSmall) {
  // Uniform samples against the uniform CDF.
  util::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.uniform01());
  double d = ks_statistic(samples, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_LT(d, ks_critical_value(samples.size(), 0.05));
}

TEST(KsStatistic, DetectsWrongDistribution) {
  // Exponential(1) samples against a uniform[0,1] model: strongly rejected.
  util::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.exponential(1.0));
  double d = ks_statistic(samples, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_GT(d, ks_critical_value(samples.size(), 0.01));
}

TEST(KsStatistic, ExponentialSamplesMatchExponentialCdf) {
  util::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.exponential(0.25));
  EXPECT_TRUE(ks_test_passes(samples, [](double x) {
    return x <= 0 ? 0.0 : 1.0 - std::exp(-0.25 * x);
  }));
}

TEST(KsStatistic, HypoexpSamplesMatchHypoexpCdf) {
  // Sum of exponential stages vs the uniformization CDF — validates both.
  util::Rng rng(4);
  std::vector<double> rates = {0.1, 0.3, 0.2};
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    double sum = 0;
    for (double r : rates) sum += rng.exponential(r);
    samples.push_back(sum);
  }
  EXPECT_TRUE(ks_test_passes(
      samples, [&](double t) { return hypoexp_cdf(rates, t); }));
}

TEST(KsStatistic, Validation) {
  EXPECT_THROW(ks_statistic({}, [](double) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(ks_statistic({1.0}, [](double) { return 1.5; }),
               std::invalid_argument);
  EXPECT_THROW(ks_critical_value(0, 0.05), std::invalid_argument);
  EXPECT_THROW(ks_critical_value(10, 0.5), std::invalid_argument);
}

TEST(KsCritical, ShrinksWithSampleSize) {
  EXPECT_GT(ks_critical_value(100, 0.05), ks_critical_value(10000, 0.05));
  EXPECT_GT(ks_critical_value(100, 0.01), ks_critical_value(100, 0.05));
  EXPECT_GT(ks_critical_value(100, 0.05), ks_critical_value(100, 0.10));
}

// The distributional validation of the paper's central model: with g = 1
// every onion group is a single node, Eq. 4 is exact, and the end-to-end
// delivery delay must be *exactly* hypoexponential.
TEST(DelayDistribution, ExactlyHypoexponentialForGroupSizeOne) {
  util::Rng rng(5);
  auto graph = graph::random_contact_graph(12, rng, 10.0, 120.0);
  groups::GroupDirectory dir(12, 1);
  groups::KeyManager keys(dir, 5);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(graph, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::SingleCopyOnionRouting protocol(ctx);

  std::vector<GroupId> route = {2, 5, 8};
  NodeId src = 0, dst = 11;
  auto rates = opportunistic_onion_rates(graph, src, dst, dir, route);

  std::vector<double> delays;
  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.ttl = 1e9;
  spec.num_relays = 3;
  for (int i = 0; i < 3000; ++i) {
    auto r = protocol.route(contacts, spec, rng, &route);
    ASSERT_TRUE(r.delivered);
    delays.push_back(r.delay);
  }
  EXPECT_TRUE(ks_test_passes(
      delays, [&](double t) { return hypoexp_cdf(rates, t); }, 0.01));
}

// For g > 1 the averaged inter-group rate is an approximation; KS should
// measure a visible but bounded distance (documenting the model error the
// paper's figures show as the analysis/simulation gap).
TEST(DelayDistribution, ApproximateForLargerGroups) {
  util::Rng rng(6);
  auto graph = graph::random_contact_graph(40, rng, 10.0, 120.0);
  groups::GroupDirectory dir(40, 5);
  groups::KeyManager keys(dir, 6);
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts(graph, rng);
  routing::OnionContext ctx{&dir, &keys, &codec, routing::CryptoMode::kNone};
  routing::SingleCopyOnionRouting protocol(ctx);

  std::vector<GroupId> route = {1, 3, 5};
  NodeId src = 0, dst = 39;
  auto rates = opportunistic_onion_rates(graph, src, dst, dir, route);

  std::vector<double> delays;
  routing::MessageSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.ttl = 1e9;
  spec.num_relays = 3;
  for (int i = 0; i < 2000; ++i) {
    auto r = protocol.route(contacts, spec, rng, &route);
    ASSERT_TRUE(r.delivered);
    delays.push_back(r.delay);
  }
  double d = ks_statistic(delays, [&](double t) {
    return hypoexp_cdf(rates, t);
  });
  // Not a perfect fit, but within a usable approximation band.
  EXPECT_LT(d, 0.15);
}

}  // namespace
}  // namespace odtn::analysis
