#include "analysis/hypoexp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace odtn::analysis {
namespace {

TEST(Hypoexp, SingleStageIsExponential) {
  for (double t : {0.5, 1.0, 10.0}) {
    EXPECT_NEAR(hypoexp_cdf({0.2}, t), 1.0 - std::exp(-0.2 * t), 1e-12);
  }
}

TEST(Hypoexp, ZeroAndNegativeTime) {
  EXPECT_EQ(hypoexp_cdf({1.0, 2.0}, 0.0), 0.0);
  EXPECT_EQ(hypoexp_cdf({1.0, 2.0}, -5.0), 0.0);
}

TEST(Hypoexp, TwoStageClosedForm) {
  // For distinct rates a, b: F(t) = 1 - (b e^{-at} - a e^{-bt}) / (b - a).
  double a = 0.3, b = 0.7, t = 2.5;
  double expect =
      1.0 - (b * std::exp(-a * t) - a * std::exp(-b * t)) / (b - a);
  EXPECT_NEAR(hypoexp_cdf({a, b}, t), expect, 1e-12);
}

TEST(Hypoexp, CoefficientsSumToOne) {
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::size_t n = 2 + rng.below(6);
    std::vector<double> rates;
    for (std::size_t i = 0; i < n; ++i) rates.push_back(rng.uniform(0.01, 2.0));
    auto coeff = hypoexp_coefficients(rates);
    double sum = 0;
    for (double c : coeff) sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Hypoexp, CdfPropertiesRandomRates) {
  // Property sweep: valid CDF — within [0,1], nondecreasing, -> 1.
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng.below(8);
    std::vector<double> rates;
    for (std::size_t i = 0; i < n; ++i) rates.push_back(rng.uniform(0.05, 1.0));
    double prev = 0.0;
    for (double t = 0.0; t <= 200.0; t += 2.0) {
      double f = hypoexp_cdf(rates, t);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
      EXPECT_GE(f, prev - 1e-9) << "CDF decreased at t=" << t;
      prev = f;
    }
    EXPECT_GT(hypoexp_cdf(rates, 1e5), 0.999);
  }
}

TEST(Hypoexp, EqualRatesAreErlang) {
  // The degenerate case the paper's Eq. 5 cannot express directly: equal
  // rates. Erlang-2 CDF: 1 - e^{-rt}(1 + rt).
  double r = 0.5, t = 3.0;
  double erlang2 = 1.0 - std::exp(-r * t) * (1.0 + r * t);
  EXPECT_NEAR(hypoexp_cdf({r, r}, t), erlang2, 1e-4);
}

TEST(Hypoexp, ManyEqualRatesStillValid) {
  std::vector<double> rates(6, 0.25);
  double prev = 0.0;
  for (double t = 0.0; t < 100.0; t += 1.0) {
    double f = hypoexp_cdf(rates, t);
    EXPECT_GE(f, prev - 1e-9);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  // Erlang-6 mean = 24; median slightly below. CDF(24) should be ~0.55.
  EXPECT_NEAR(hypoexp_cdf(rates, 24.0), 0.55, 0.05);
}

TEST(Hypoexp, NearEqualRatesNoBlowup) {
  std::vector<double> rates = {0.2, 0.2 * (1 + 1e-13), 0.5};
  double f = hypoexp_cdf(rates, 10.0);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  // Compare against the well-separated approximation.
  double ref = hypoexp_cdf({0.2, 0.2000001, 0.5}, 10.0);
  EXPECT_NEAR(f, ref, 1e-3);
}

TEST(Hypoexp, CoefficientsRejectDuplicates) {
  EXPECT_THROW(hypoexp_coefficients({0.2, 0.2}), std::invalid_argument);
}

TEST(Hypoexp, CdfMatchesCoefficientFormForDistinctRates) {
  // For well-separated rates, uniformization must reproduce Eq. 5/6.
  std::vector<double> rates = {0.1, 0.3, 0.55, 0.9};
  auto a = hypoexp_coefficients(rates);
  for (double t : {1.0, 5.0, 20.0, 80.0}) {
    double closed = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
      closed += a[k] * (1.0 - std::exp(-rates[k] * t));
    }
    EXPECT_NEAR(hypoexp_cdf(rates, t), closed, 1e-9) << "t=" << t;
  }
}

TEST(Hypoexp, LargeTimeHorizonStable) {
  // x = max_rate * t >> 700 exercises the log-space Poisson weights.
  std::vector<double> rates = {2.0, 0.01, 0.5};
  double f = hypoexp_cdf(rates, 2000.0);
  EXPECT_GT(f, 0.999);
  EXPECT_LE(f, 1.0);
}

TEST(Hypoexp, MonteCarloAgreement) {
  // The CDF must match the empirical distribution of a sum of exponentials.
  std::vector<double> rates = {0.1, 0.25, 0.5, 0.08};
  util::Rng rng(3);
  const int n = 50000;
  for (double t : {10.0, 30.0, 60.0}) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      double sum = 0;
      for (double r : rates) sum += rng.exponential(r);
      if (sum <= t) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, hypoexp_cdf(rates, t), 0.01)
        << "t=" << t;
  }
}

TEST(HypoexpQuantile, InvertsCdf) {
  std::vector<double> rates = {0.1, 0.3, 0.07};
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    double t = hypoexp_quantile(rates, q);
    EXPECT_NEAR(hypoexp_cdf(rates, t), q, 1e-6) << "q=" << q;
  }
}

TEST(HypoexpQuantile, ExponentialClosedForm) {
  // Single stage: quantile = -ln(1-q)/rate.
  double rate = 0.25;
  for (double q : {0.25, 0.5, 0.95}) {
    EXPECT_NEAR(hypoexp_quantile({rate}, q), -std::log(1.0 - q) / rate,
                1e-6);
  }
}

TEST(HypoexpQuantile, MonotoneInQ) {
  std::vector<double> rates = {0.2, 0.2, 0.5};
  double prev = -1.0;
  for (double q = 0.0; q < 0.999; q += 0.05) {
    double t = hypoexp_quantile(rates, q);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(HypoexpQuantile, ZeroAndValidation) {
  EXPECT_EQ(hypoexp_quantile({0.5}, 0.0), 0.0);
  EXPECT_THROW(hypoexp_quantile({0.5}, 1.0), std::invalid_argument);
  EXPECT_THROW(hypoexp_quantile({0.5}, -0.1), std::invalid_argument);
}

TEST(Hypoexp, MeanIsSumOfInverseRates) {
  EXPECT_DOUBLE_EQ(hypoexp_mean({0.5, 0.25}), 6.0);
  EXPECT_THROW(hypoexp_mean({0.5, 0.0}), std::invalid_argument);
}

TEST(Hypoexp, Validation) {
  EXPECT_THROW(hypoexp_cdf({}, 1.0), std::invalid_argument);
  EXPECT_THROW(hypoexp_cdf({0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(hypoexp_cdf({1.0, -0.5}, 1.0), std::invalid_argument);
}

// Parameterized sweep over stage counts: monotone in rates.
class HypoexpStageSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HypoexpStageSweep, FasterRatesGiveHigherCdf) {
  std::size_t stages = GetParam();
  std::vector<double> slow(stages, 0.1), fast(stages, 0.2);
  for (double t : {5.0, 20.0, 50.0}) {
    EXPECT_GE(hypoexp_cdf(fast, t), hypoexp_cdf(slow, t));
  }
}

TEST_P(HypoexpStageSweep, MoreStagesGiveLowerCdf) {
  std::size_t stages = GetParam();
  std::vector<double> base(stages, 0.15), more(stages + 1, 0.15);
  for (double t : {5.0, 20.0, 50.0}) {
    EXPECT_GE(hypoexp_cdf(base, t), hypoexp_cdf(more, t) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, HypoexpStageSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 11));

}  // namespace
}  // namespace odtn::analysis
