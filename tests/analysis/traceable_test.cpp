#include "analysis/traceable.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/run_length.hpp"
#include "util/stats.hpp"

namespace odtn::analysis {
namespace {

TEST(TraceableExact, DegenerateCases) {
  EXPECT_EQ(traceable_rate_exact(0, 0.5), 0.0);
  EXPECT_EQ(traceable_rate_exact(4, 0.0), 0.0);
  EXPECT_EQ(traceable_rate_exact(4, 1.0), 1.0);
}

TEST(TraceableExact, SingleHopIsP) {
  // eta = 1: E[sum run^2] = p * 1.
  for (double p : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(traceable_rate_exact(1, p), p, 1e-12);
  }
}

TEST(TraceableExact, TwoHopClosedForm) {
  // eta = 2, bits b1 b2: E = p^2*4 + 2*p(1-p)*1, over eta^2 = 4.
  for (double p : {0.1, 0.25, 0.5}) {
    double expect = (4 * p * p + 2 * p * (1 - p)) / 4.0;
    EXPECT_NEAR(traceable_rate_exact(2, p), expect, 1e-12);
  }
}

TEST(TraceableExact, MatchesMonteCarlo) {
  util::Rng rng(1);
  for (std::size_t eta : {3u, 4u, 6u, 11u}) {
    for (double p : {0.1, 0.3, 0.5}) {
      util::RunningStats mc;
      for (int trial = 0; trial < 40000; ++trial) {
        std::vector<bool> bits(eta);
        for (std::size_t i = 0; i < eta; ++i) bits[i] = rng.chance(p);
        mc.add(util::traceable_rate(bits));
      }
      EXPECT_NEAR(mc.mean(), traceable_rate_exact(eta, p), 0.01)
          << "eta=" << eta << " p=" << p;
    }
  }
}

TEST(TraceableExact, IncreasesWithP) {
  for (std::size_t eta : {4u, 6u, 11u}) {
    double prev = 0.0;
    for (double p = 0.05; p <= 0.95; p += 0.05) {
      double v = traceable_rate_exact(eta, p);
      EXPECT_GT(v, prev);
      prev = v;
    }
  }
}

TEST(TraceableExact, DecreasesWithPathLength) {
  // Fig. 7: more onion relays dilute the compromised fraction of the path.
  for (double p : {0.1, 0.2, 0.3}) {
    double prev = 1.0;
    for (std::size_t eta = 2; eta <= 11; ++eta) {
      double v = traceable_rate_exact(eta, p);
      EXPECT_LT(v, prev) << "eta=" << eta << " p=" << p;
      prev = v;
    }
  }
}

TEST(TraceablePaper, WithinModelErrorOfExact) {
  // The paper's approximation should track the exact value in the small-p
  // regime it assumes (c << n).
  for (std::size_t eta : {4u, 6u, 11u}) {
    for (double p : {0.05, 0.1, 0.2, 0.3}) {
      double paper = traceable_rate_paper(eta, p);
      double exact = traceable_rate_exact(eta, p);
      EXPECT_NEAR(paper, exact, 0.55 * exact + 0.01)
          << "eta=" << eta << " p=" << p;
    }
  }
}

TEST(TraceablePaper, MonotoneAndBoundedInSmallPRegime) {
  // The approximation assumes c << n; within that regime it is monotone.
  for (std::size_t eta : {2u, 4u, 8u}) {
    double prev = -1.0;
    for (double p = 0.0; p <= 0.5; p += 0.05) {
      double v = traceable_rate_paper(eta, p);
      EXPECT_GE(v, prev - 1e-12);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      prev = v;
    }
  }
}

TEST(TraceablePaper, KnownToDegradeOutsideSmallPRegime) {
  // Documented limitation (the paper assumes c much smaller than n): the
  // truncated geometric series loses probability mass as p -> 1, so the
  // approximation *under*-estimates there while the exact value reaches 1.
  EXPECT_LT(traceable_rate_paper(4, 0.95), traceable_rate_exact(4, 0.95));
  EXPECT_NEAR(traceable_rate_exact(4, 0.999), 1.0, 0.01);
}

TEST(TraceablePaper, ZeroEta) { EXPECT_EQ(traceable_rate_paper(0, 0.5), 0.0); }

TEST(GeometricMoment, TruncatedSeriesValue) {
  // sum_{k=1}^{2} k^2 p^k (1-p) at p=0.5: (1*0.5 + 4*0.25) * 0.5 = 0.75.
  EXPECT_NEAR(geometric_run_second_moment(2, 0.5), 0.75, 1e-12);
}

TEST(GeometricMoment, ConvergesForLargeEta) {
  // Untruncated sum = p(1+p)/(1-p)^2.
  double p = 0.2;
  double closed = p * (1 + p) / ((1 - p) * (1 - p));
  EXPECT_NEAR(geometric_run_second_moment(60, p), closed, 1e-9);
}

TEST(Traceable, InvalidPRejected) {
  EXPECT_THROW(traceable_rate_exact(4, -0.1), std::invalid_argument);
  EXPECT_THROW(traceable_rate_exact(4, 1.1), std::invalid_argument);
  EXPECT_THROW(traceable_rate_paper(4, 2.0), std::invalid_argument);
  EXPECT_THROW(geometric_run_second_moment(4, -1.0), std::invalid_argument);
}

// Parameterized property sweep across the paper's parameter space.
struct TraceableCase {
  std::size_t eta;
  double p;
};

class TraceableSweep : public ::testing::TestWithParam<TraceableCase> {};

TEST_P(TraceableSweep, ExactBoundedByAllCompromised) {
  auto [eta, p] = GetParam();
  double v = traceable_rate_exact(eta, p);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
  // Lower bound: expected squared runs >= expected number of ones / eta^2.
  EXPECT_GE(v, p / static_cast<double>(eta) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraceableSweep,
    ::testing::Values(TraceableCase{2, 0.1}, TraceableCase{4, 0.1},
                      TraceableCase{4, 0.3}, TraceableCase{4, 0.5},
                      TraceableCase{6, 0.2}, TraceableCase{11, 0.1},
                      TraceableCase{11, 0.5}));

}  // namespace
}  // namespace odtn::analysis
