#include "bundle/bundle.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace odtn::bundle {
namespace {

Bundle sample_bundle() {
  Bundle b;
  b.source = 3;
  b.destination = 9;
  b.creation_time = 1234.5;
  b.sequence = 42;
  b.lifetime = 1800.0;
  b.hops_remaining = 10;
  b.payload = util::to_bytes("bundle payload bytes");
  return b;
}

TEST(Bundle, EncodeDecodeRoundTrip) {
  Bundle b = sample_bundle();
  auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
}

TEST(Bundle, RoundTripWithEmptyPayload) {
  Bundle b = sample_bundle();
  b.payload.clear();
  auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
}

TEST(Bundle, AnonymousSourceEid) {
  Bundle b = sample_bundle();
  b.source = kNullEid;  // "dtn:none" — source withheld
  auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, kNullEid);
}

TEST(Bundle, ExpiryAgainstClock) {
  Bundle b = sample_bundle();
  EXPECT_FALSE(b.expired(1234.5));
  EXPECT_FALSE(b.expired(1234.5 + 1800.0));
  EXPECT_TRUE(b.expired(1234.5 + 1800.1));
}

TEST(Bundle, HopBudget) {
  Bundle b = sample_bundle();
  b.hops_remaining = 2;
  EXPECT_TRUE(b.age());
  EXPECT_TRUE(b.age());
  EXPECT_FALSE(b.age());
  EXPECT_EQ(b.hops_remaining, 0u);
}

TEST(BundleDecode, RejectsMalformed) {
  Bundle b = sample_bundle();
  auto wire = encode(b);

  EXPECT_FALSE(decode({}).has_value());
  util::Bytes truncated(wire.begin(), wire.begin() + 10);
  EXPECT_FALSE(decode(truncated).has_value());

  util::Bytes bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(decode(bad_magic).has_value());

  util::Bytes bad_version = wire;
  bad_version[4] = 99;
  EXPECT_FALSE(decode(bad_version).has_value());

  util::Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(decode(trailing).has_value());

  util::Bytes cut_payload(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(decode(cut_payload).has_value());
}

TEST(BundleDecode, RejectsInconsistentFragmentFields) {
  Bundle b = sample_bundle();
  b.is_fragment = true;
  b.fragment_offset = 100;
  b.total_length = 50;  // offset beyond total
  EXPECT_FALSE(decode(encode(b)).has_value());

  Bundle c = sample_bundle();
  c.is_fragment = false;
  c.fragment_offset = 7;  // non-fragment with an offset
  EXPECT_FALSE(decode(encode(c)).has_value());
}

TEST(BundleDecode, FuzzNeverCrashes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 3000; ++trial) {
    util::Bytes garbage(rng.below(120));
    for (auto& x : garbage) x = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(garbage);
  }
  // Bitflip sweep over a valid encoding.
  auto wire = encode(sample_bundle());
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = wire;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    (void)decode(mutated);  // must not crash; may or may not parse
  }
}

TEST(Fragment, SmallPayloadPassesThrough) {
  Bundle b = sample_bundle();
  auto frags = fragment(b, 1000);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], b);
  EXPECT_FALSE(frags[0].is_fragment);
}

TEST(Fragment, SplitsAndCoversPayload) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(100, 0);
  for (std::size_t i = 0; i < 100; ++i) {
    b.payload[i] = static_cast<std::uint8_t>(i);
  }
  auto frags = fragment(b, 33);
  ASSERT_EQ(frags.size(), 4u);  // 33+33+33+1
  std::size_t covered = 0;
  for (const auto& f : frags) {
    EXPECT_TRUE(f.is_fragment);
    EXPECT_EQ(f.total_length, 100u);
    EXPECT_LE(f.payload.size(), 33u);
    covered += f.payload.size();
  }
  EXPECT_EQ(covered, 100u);
}

TEST(Fragment, Validation) {
  Bundle b = sample_bundle();
  EXPECT_THROW(fragment(b, 0), std::invalid_argument);
  auto frags = fragment(b, 4);
  EXPECT_THROW(fragment(frags[0], 2), std::invalid_argument);
}

TEST(Reassemble, InOrder) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(70, 0xab);
  auto whole = reassemble(fragment(b, 16));
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, b.payload);
  EXPECT_FALSE(whole->is_fragment);
  EXPECT_EQ(whole->source, b.source);
}

TEST(Reassemble, AnyOrderAndDuplicates) {
  util::Rng rng(2);
  Bundle b = sample_bundle();
  b.payload.resize(200);
  for (std::size_t i = 0; i < b.payload.size(); ++i) {
    b.payload[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  auto frags = fragment(b, 23);
  frags.push_back(frags[2]);  // duplicate
  rng.shuffle(frags);
  auto whole = reassemble(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, b.payload);
}

TEST(Reassemble, MissingFragmentReturnsNullopt) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(100, 1);
  auto frags = fragment(b, 30);
  frags.erase(frags.begin() + 1);
  EXPECT_FALSE(reassemble(frags).has_value());
}

TEST(Reassemble, MixedBundlesRejected) {
  Bundle b1 = sample_bundle();
  b1.payload = util::Bytes(50, 1);
  Bundle b2 = sample_bundle();
  b2.sequence = 43;  // different bundle id
  b2.payload = util::Bytes(50, 2);
  auto f1 = fragment(b1, 20);
  auto f2 = fragment(b2, 20);
  f1.push_back(f2[0]);
  EXPECT_FALSE(reassemble(f1).has_value());
}

TEST(Reassemble, ConflictingDuplicateRejected) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(40, 7);
  auto frags = fragment(b, 10);
  Bundle corrupt = frags[1];
  corrupt.payload[0] ^= 0xff;
  frags.push_back(corrupt);
  EXPECT_FALSE(reassemble(frags).has_value());
}

TEST(Reassemble, HopBudgetIsMinimumOfFragments) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(40, 7);
  auto frags = fragment(b, 10);
  frags[2].hops_remaining = 3;
  auto whole = reassemble(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->hops_remaining, 3u);
}

TEST(Reassemble, SingleUnfragmentedBundle) {
  Bundle b = sample_bundle();
  auto whole = reassemble({b});
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, b);
  EXPECT_FALSE(reassemble({}).has_value());
}

TEST(Fragment, FragmentsSurviveWireRoundTrip) {
  Bundle b = sample_bundle();
  b.payload = util::Bytes(128, 0x5a);
  std::vector<Bundle> recovered;
  for (const auto& f : fragment(b, 50)) {
    auto d = decode(encode(f));
    ASSERT_TRUE(d.has_value());
    recovered.push_back(*d);
  }
  auto whole = reassemble(recovered);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, b.payload);
}

}  // namespace
}  // namespace odtn::bundle
