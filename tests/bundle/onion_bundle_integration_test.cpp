// Integration: onion packets ride the Bundle layer, as the paper situates
// anonymous routing "in the Bundle layer" (Sec. I). An onion wire packet
// is carried as a bundle payload with an anonymous (dtn:none) source,
// fragmented across small contacts, reassembled, and peeled intact.
#include <gtest/gtest.h>

#include "bundle/bundle.hpp"
#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

struct Fixture {
  groups::GroupDirectory dir{20, 5};
  groups::KeyManager keys{dir, 11};
  onion::OnionCodec codec;
  crypto::Drbg drbg{std::uint64_t{3}};
};

TEST(OnionOverBundle, AnonymousBundleCarriesOnion) {
  Fixture f;
  util::Bytes wire = f.codec.build(util::to_bytes("carried in a bundle"), 19,
                                   {1, 2}, f.keys, f.drbg);

  bundle::Bundle b;
  b.source = bundle::kNullEid;  // sender identity withheld on the wire
  b.destination = 1;            // next onion group, not the true endpoint
  b.creation_time = 100.0;
  b.lifetime = 1800.0;
  b.payload = wire;

  auto received = bundle::decode(bundle::encode(b));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->source, bundle::kNullEid);

  auto peeled = f.codec.peel(received->payload, f.keys.group_key(1), f.drbg);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_EQ(peeled->type, onion::Peeled::Type::kRelay);
  EXPECT_EQ(peeled->next_group, 2u);
}

TEST(OnionOverBundle, FragmentedOnionSurvivesReassembly) {
  Fixture f;
  util::Bytes wire = f.codec.build(util::to_bytes("fragmented onion"), 19,
                                   {1, 2, 3}, f.keys, f.drbg);

  bundle::Bundle b;
  b.source = bundle::kNullEid;
  b.destination = 1;
  b.creation_time = 0.0;
  b.lifetime = 3600.0;
  b.payload = wire;

  // Small contact transfer budget: the onion (several hundred bytes) must
  // cross in 120-byte fragments.
  auto frags = bundle::fragment(b, 120);
  ASSERT_GT(frags.size(), 3u);

  util::Rng rng(4);
  rng.shuffle(frags);
  auto whole = bundle::reassemble(frags);
  ASSERT_TRUE(whole.has_value());

  auto l1 = f.codec.peel(whole->payload, f.keys.group_key(1), f.drbg);
  ASSERT_TRUE(l1.has_value());
  auto l2 = f.codec.peel(l1->next_wire, f.keys.group_key(2), f.drbg);
  ASSERT_TRUE(l2.has_value());
  auto l3 = f.codec.peel(l2->next_wire, f.keys.group_key(3), f.drbg);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->dest, 19u);
}

TEST(OnionOverBundle, TamperedFragmentBreaksOnionAuthentication) {
  Fixture f;
  util::Bytes wire = f.codec.build(util::to_bytes("integrity"), 19, {1},
                                   f.keys, f.drbg);
  bundle::Bundle b;
  b.payload = wire;
  b.lifetime = 10.0;
  auto frags = bundle::fragment(b, 100);
  frags[0].payload[5] ^= 0x01;  // in-flight corruption of fragment content
  auto whole = bundle::reassemble(frags);
  ASSERT_TRUE(whole.has_value());  // bundle layer reassembles fine...
  // ...but the onion AEAD rejects the altered packet.
  EXPECT_FALSE(
      f.codec.peel(whole->payload, f.keys.group_key(1), f.drbg).has_value());
}

}  // namespace
}  // namespace odtn
