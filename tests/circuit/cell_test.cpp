// Cell framing tests: every cell is exactly cell_size bytes regardless of
// payload, round-trips under the right key, and any tamper — header, body,
// or truncation — is rejected through the AEAD tag (or the header
// pre-checks the tag also covers).
#include "circuit/cell.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace odtn::circuit {
namespace {

struct Fixture {
  CellCodec cells{kDefaultCellSize};
  crypto::Drbg drbg{std::uint64_t{7}};
  util::Bytes key = util::Bytes(32, 0x21);
};

util::Bytes payload_of(std::size_t n) { return util::Bytes(n, 0x5a); }

TEST(Cell, RoundTripPreservesEverything) {
  Fixture f;
  auto payload = payload_of(100);
  auto cell = f.cells.seal(0xdeadbeef, CellCommand::kRelay, payload, f.key,
                           f.drbg);
  auto out = f.cells.open(cell, f.key);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->circuit_id, 0xdeadbeefu);
  EXPECT_EQ(out->command, CellCommand::kRelay);
  EXPECT_EQ(out->payload, payload);
}

TEST(Cell, ConstantSizeForEveryPayloadLength) {
  Fixture f;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{100},
                        f.cells.max_payload()}) {
    auto cell =
        f.cells.seal(1, CellCommand::kRelay, payload_of(n), f.key, f.drbg);
    EXPECT_EQ(cell.size(), f.cells.cell_size()) << "payload " << n;
    auto out = f.cells.open(cell, f.key);
    ASSERT_TRUE(out.has_value()) << "payload " << n;
    EXPECT_EQ(out->payload.size(), n);
  }
}

TEST(Cell, CellsForCountsPartialCells) {
  Fixture f;
  const std::size_t cap = f.cells.max_payload();
  EXPECT_EQ(f.cells.cells_for(0), 1u);  // empty packets still cost a cell
  EXPECT_EQ(f.cells.cells_for(1), 1u);
  EXPECT_EQ(f.cells.cells_for(cap), 1u);
  EXPECT_EQ(f.cells.cells_for(cap + 1), 2u);
  EXPECT_EQ(f.cells.cells_for(3 * cap), 3u);
}

TEST(Cell, OversizedPayloadThrows) {
  Fixture f;
  EXPECT_THROW(f.cells.seal(1, CellCommand::kRelay,
                            payload_of(f.cells.max_payload() + 1), f.key,
                            f.drbg),
               std::invalid_argument);
}

TEST(Cell, CodecRejectsOutOfRangeCellSize) {
  EXPECT_THROW(CellCodec(kMinCellSize - 1), std::invalid_argument);
  EXPECT_THROW(CellCodec(kMaxCellSize + 1), std::invalid_argument);
  EXPECT_NO_THROW(CellCodec{kMinCellSize});
  EXPECT_NO_THROW(CellCodec{kMaxCellSize});
}

TEST(Cell, HeaderTamperFailsAuthentication) {
  Fixture f;
  auto cell =
      f.cells.seal(42, CellCommand::kExtend, payload_of(64), f.key, f.drbg);
  // The header is plaintext but bound into the AEAD as associated data:
  // flipping any header byte (here a circuit-id byte) must fail the open.
  for (std::size_t i = 1; i < kCellHeaderSize - 1; ++i) {
    auto tampered = cell;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(f.cells.open(tampered, f.key).has_value()) << "byte " << i;
  }
}

TEST(Cell, BodyAndTagTamperFailAuthentication) {
  Fixture f;
  auto cell =
      f.cells.seal(42, CellCommand::kRelay, payload_of(64), f.key, f.drbg);
  for (std::size_t i : {kCellHeaderSize + crypto::kAeadNonceSize,
                        cell.size() / 2, cell.size() - 1}) {
    auto tampered = cell;
    tampered[i] ^= 0x80;
    EXPECT_FALSE(f.cells.open(tampered, f.key).has_value()) << "byte " << i;
  }
}

TEST(Cell, TruncationRejected) {
  Fixture f;
  auto cell =
      f.cells.seal(42, CellCommand::kRelay, payload_of(64), f.key, f.drbg);
  for (std::size_t n : {cell.size() - 1, cell.size() / 2, std::size_t{0}}) {
    auto truncated = cell;
    truncated.resize(n);
    EXPECT_FALSE(f.cells.open(truncated, f.key).has_value()) << "size " << n;
  }
}

TEST(Cell, WrongVersionAndUnknownCommandRejected) {
  Fixture f;
  auto cell =
      f.cells.seal(42, CellCommand::kRelay, payload_of(64), f.key, f.drbg);
  auto bad_version = cell;
  bad_version[0] = kCellVersion + 1;
  EXPECT_FALSE(f.cells.open(bad_version, f.key).has_value());
  auto bad_command = cell;
  bad_command[5] = 0;  // below kCreate
  EXPECT_FALSE(f.cells.open(bad_command, f.key).has_value());
  bad_command[5] = 99;  // above kPadding
  EXPECT_FALSE(f.cells.open(bad_command, f.key).has_value());
}

TEST(Cell, WrongKeyRejected) {
  Fixture f;
  auto cell =
      f.cells.seal(42, CellCommand::kRelay, payload_of(64), f.key, f.drbg);
  util::Bytes other(32, 0x22);
  EXPECT_FALSE(f.cells.open(cell, other).has_value());
}

TEST(Cell, OpenIntoMatchesOpen) {
  Fixture f;
  auto payload = payload_of(200);
  auto cell =
      f.cells.seal(7, CellCommand::kCreate, payload, f.key, f.drbg);
  auto expected = f.cells.open(cell, f.key);
  ASSERT_TRUE(expected.has_value());

  Cell out;
  CellScratch scratch;
  ASSERT_TRUE(f.cells.open_into(cell, f.key, out, scratch));
  EXPECT_EQ(out.circuit_id, expected->circuit_id);
  EXPECT_EQ(out.command, expected->command);
  EXPECT_EQ(out.payload, expected->payload);

  // Reusing the same scratch/out for a second cell must not leak state.
  auto cell2 =
      f.cells.seal(8, CellCommand::kDestroy, payload_of(3), f.key, f.drbg);
  ASSERT_TRUE(f.cells.open_into(cell2, f.key, out, scratch));
  EXPECT_EQ(out.circuit_id, 8u);
  EXPECT_EQ(out.command, CellCommand::kDestroy);
  EXPECT_EQ(out.payload.size(), 3u);
}

TEST(Cell, MinimumCellStillRoundTrips) {
  CellCodec tiny(kMinCellSize);
  crypto::Drbg drbg{std::uint64_t{3}};
  util::Bytes key(32, 1);
  EXPECT_EQ(tiny.max_payload(), 1u);
  auto cell = tiny.seal(1, CellCommand::kPadding, payload_of(1), key, drbg);
  EXPECT_EQ(cell.size(), kMinCellSize);
  auto out = tiny.open(cell, key);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, payload_of(1));
}

TEST(Cell, CommandNamesAreStable) {
  EXPECT_STREQ(cell_command_name(CellCommand::kCreate), "create");
  EXPECT_STREQ(cell_command_name(CellCommand::kRelay), "relay");
  EXPECT_STREQ(cell_command_name(CellCommand::kPadding), "padding");
}

}  // namespace
}  // namespace odtn::circuit
