// CircuitManager tests: the one audited build/peel/forward implementation
// both onion protocols are policies over. Covers the wire-mode end-to-end
// lifecycle, cell-stream tamper detection, Expect mismatches, the kNone
// zero-knob contract (no RNG draws, no crypto), and truncate semantics.
#include "circuit/circuit_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "groups/group_directory.hpp"
#include "groups/key_manager.hpp"
#include "onion/onion.hpp"
#include "util/rng.hpp"

namespace odtn::circuit {
namespace {

using Expect = CircuitManager::Expect;

struct Fixture {
  explicit Fixture(bool wire, bool crypto = true)
      : dir(100, 5), keys(dir, 1), rng(13) {
    cctx.keys = &keys;
    cctx.codec = &codec;
    cctx.crypto = crypto;
    cctx.wire = wire;
  }

  CircuitManager make() { return CircuitManager(cctx, rng); }

  groups::GroupDirectory dir;
  groups::KeyManager keys;
  onion::OnionCodec codec;
  util::Rng rng;
  CircuitContext cctx;
  util::Bytes payload = util::Bytes(200, 0x11);
  std::vector<GroupId> route = {1, 2, 3};
};

// Walks one circuit source(0) -> 5 -> 9 -> 20 -> dest(99) through the
// manager, the same shape the single-copy policy drives.
bool walk(CircuitManager& cm, Fixture& f, CircuitId id) {
  if (!cm.extend(id, 0, 5, f.keys.group_key(1), Expect::relay_to(2))) {
    return false;
  }
  if (!cm.extend(id, 5, 9, f.keys.group_key(2), Expect::relay_to(3))) {
    return false;
  }
  if (!cm.extend(id, 9, 20, f.keys.group_key(3), Expect::deliver_to(99))) {
    return false;
  }
  return cm.deliver(id, 20, 99, f.payload);
}

TEST(CircuitManager, WireModeEndToEndVerifies) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  EXPECT_EQ(cm.status(id), CircuitStatus::kCreate);
  EXPECT_TRUE(walk(cm, f, id));
  EXPECT_EQ(cm.status(id), CircuitStatus::kEstablished);
  EXPECT_EQ(cm.hops(id), 3u);
  EXPECT_TRUE(cm.link_ok());
  EXPECT_TRUE(cm.circuit_ok(id));
  EXPECT_TRUE(cm.verified(id));
}

TEST(CircuitManager, BlobModeEndToEndVerifies) {
  Fixture f(/*wire=*/false);
  auto cm = f.make();
  EXPECT_FALSE(cm.wire_enabled());
  CircuitId id = cm.open(f.payload, 99, f.route);
  EXPECT_TRUE(walk(cm, f, id));
  EXPECT_TRUE(cm.verified(id));
  // No cells cross contacts outside wire mode.
  EXPECT_EQ(cm.wire_cells(), 0u);
  EXPECT_EQ(cm.wire_bytes(), 0u);
}

TEST(CircuitManager, WireAccountingMatchesCrossings) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  ASSERT_TRUE(walk(cm, f, id));
  // 3 extends + 1 deliver = 4 contact crossings; the onion packet is
  // constant-size, so each costs exactly cells_per_packet() cells.
  const std::uint64_t expected = 4 * cm.cells_per_packet();
  EXPECT_EQ(cm.wire_cells(), expected);
  EXPECT_EQ(cm.wire_bytes(), expected * cm.cell_codec().cell_size());
}

TEST(CircuitManager, CellTapSeesEveryCellAtConstantSize) {
  Fixture f(/*wire=*/true);
  std::vector<CellEvent> events;
  f.cctx.tap = [&events](const CellEvent& e) { events.push_back(e); };
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  ASSERT_TRUE(walk(cm, f, id));

  ASSERT_EQ(events.size(), cm.wire_cells());
  for (const auto& e : events) {
    // The observable unit is the constant cell size — never packet shape.
    EXPECT_EQ(e.bytes, cm.cell_codec().cell_size());
    EXPECT_EQ(e.circuit_id, id);
  }
  // First crossing opens the circuit; later hops extend; delivery relays.
  EXPECT_EQ(events.front().command, CellCommand::kCreate);
  EXPECT_EQ(events.back().command, CellCommand::kRelay);
  EXPECT_EQ(events.front().sender, 0u);
  EXPECT_EQ(events.front().receiver, 5u);
  EXPECT_EQ(events.back().sender, 20u);
  EXPECT_EQ(events.back().receiver, 99u);
}

TEST(CircuitManager, TamperedCellBreaksTheLink) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  const util::Bytes& key = f.keys.group_key(1);
  auto cell = cm.cell_codec().seal(0, CellCommand::kRelay, f.payload, key,
                                   cm.drbg());
  ASSERT_TRUE(cm.on_cell(key, cell));

  auto tampered = cm.cell_codec().seal(0, CellCommand::kRelay, f.payload,
                                       key, cm.drbg());
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_FALSE(cm.on_cell(key, tampered));

  auto truncated = cm.cell_codec().seal(0, CellCommand::kRelay, f.payload,
                                        key, cm.drbg());
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(cm.on_cell(key, truncated));
}

TEST(CircuitManager, ReassemblyReproducesThePayloadStream) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  const util::Bytes& key = f.keys.group_key(2);
  const auto& cells = cm.cell_codec();
  // Fragment a multi-cell packet by hand and feed the cells in order.
  util::Bytes packet(2 * cells.max_payload() + 17, 0x3c);
  const std::size_t n = cells.cells_for(packet.size());
  EXPECT_EQ(n, 3u);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t off = i * cells.max_payload();
    const std::size_t len =
        std::min(cells.max_payload(), packet.size() - off);
    auto cell = cells.seal(
        1, CellCommand::kRelay,
        std::span<const std::uint8_t>(packet.data() + off, len), key,
        cm.drbg());
    ASSERT_TRUE(cm.on_cell(key, cell)) << "cell " << i;
  }
  EXPECT_EQ(cm.reassembled(), packet);
}

TEST(CircuitManager, ExpectMismatchMarksCircuitNotVerified) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  // Right key, wrong expectation: the peel opens but names group 2, not 4.
  EXPECT_FALSE(cm.extend(id, 0, 5, f.keys.group_key(1), Expect::relay_to(4)));
  EXPECT_FALSE(cm.circuit_ok(id));
  EXPECT_FALSE(cm.verified(id));
  EXPECT_TRUE(cm.link_ok());  // the link itself was fine
}

TEST(CircuitManager, WrongKeyPeelFailsAndLeavesPacketIntact) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  const util::Bytes before = cm.wire(id);
  EXPECT_FALSE(cm.extend(id, 0, 5, f.keys.group_key(4), Expect::any()));
  EXPECT_EQ(cm.wire(id), before);  // policy may keep walking with the packet
  EXPECT_FALSE(cm.verified(id));
}

TEST(CircuitManager, ExpectAnyAcceptsAnyLayerThatOpens) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  // A sprayed copy's mid-path peer cannot predict its layer type.
  EXPECT_TRUE(cm.extend(id, 0, 5, f.keys.group_key(1), Expect::any()));
  EXPECT_TRUE(cm.circuit_ok(id));
}

TEST(CircuitManager, CloneSharesThePacketAndStartsFresh) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  CircuitId copy = cm.clone(id);
  EXPECT_NE(copy, id);
  EXPECT_EQ(cm.status(copy), CircuitStatus::kCreate);
  EXPECT_EQ(cm.wire(copy), cm.wire(id));
  // Both copies can be walked independently.
  EXPECT_TRUE(walk(cm, f, id));
  EXPECT_TRUE(walk(cm, f, copy));
  EXPECT_TRUE(cm.verified(id));
  EXPECT_TRUE(cm.verified(copy));
}

TEST(CircuitManager, TruncateFollowsTheStateMachine) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  // From kCreate, kTruncated is illegal -> falls through to kDestroyed.
  CircuitId fresh = cm.open(f.payload, 99, f.route);
  cm.truncate(fresh);
  EXPECT_EQ(cm.status(fresh), CircuitStatus::kDestroyed);

  // After a hop the circuit is in flight -> kTruncated, and may rebuild.
  CircuitId walked = cm.open(f.payload, 99, f.route);
  ASSERT_TRUE(cm.extend(walked, 0, 5, f.keys.group_key(1),
                        Expect::relay_to(2)));
  cm.truncate(walked);
  EXPECT_EQ(cm.status(walked), CircuitStatus::kTruncated);
  EXPECT_TRUE(cm.advance(walked, CircuitStatus::kExtend));
}

TEST(CircuitManager, RealModeDrawsExactlyOneSeed) {
  Fixture f(/*wire=*/false);
  util::Rng reference(13);
  CircuitManager cm(f.cctx, f.rng);
  // The constructor consumed exactly one draw (the legacy DRBG-seed
  // position); the streams must re-align after skipping one.
  reference.next();
  EXPECT_EQ(f.rng.next(), reference.next());
}

TEST(CircuitManager, NoCryptoModeDrawsNothingAndSkipsCrypto) {
  Fixture f(/*wire=*/false, /*crypto=*/false);
  util::Rng reference(13);
  auto cm = f.make();
  EXPECT_EQ(f.rng.next(), reference.next());  // zero constructor draws

  EXPECT_FALSE(cm.crypto_enabled());
  CircuitId id = cm.open(f.payload, 99, f.route);
  EXPECT_TRUE(cm.wire(id).empty());  // no onion is built
  // The state machine still advances; peels succeed vacuously.
  util::Bytes no_key;
  EXPECT_TRUE(cm.extend(id, 0, 5, no_key, Expect::relay_to(2)));
  EXPECT_EQ(cm.status(id), CircuitStatus::kCreated);
  EXPECT_TRUE(cm.deliver(id, 5, 99, f.payload));
  EXPECT_EQ(cm.status(id), CircuitStatus::kEstablished);
  // ... but nothing is "verified" without crypto.
  EXPECT_FALSE(cm.verified(id));
  EXPECT_EQ(cm.wire_cells(), 0u);
}

TEST(CircuitManager, WireRequiresCrypto) {
  Fixture f(/*wire=*/true, /*crypto=*/false);
  auto cm = f.make();
  EXPECT_FALSE(cm.wire_enabled());  // wire is meaningless without crypto
}

TEST(CircuitManager, NullKeysOrCodecThrows) {
  Fixture f(/*wire=*/false);
  CircuitContext bad = f.cctx;
  bad.keys = nullptr;
  EXPECT_THROW(CircuitManager(bad, f.rng), std::invalid_argument);
  bad = f.cctx;
  bad.codec = nullptr;
  EXPECT_THROW(CircuitManager(bad, f.rng), std::invalid_argument);
  bad = f.cctx;
  bad.wire = true;
  bad.cell_size = kMinCellSize - 1;
  EXPECT_THROW(CircuitManager(bad, f.rng), std::invalid_argument);
}

TEST(CircuitManager, SendCrossesWithoutPeeling) {
  Fixture f(/*wire=*/true);
  auto cm = f.make();
  CircuitId id = cm.open(f.payload, 99, f.route);
  const util::Bytes before = cm.wire(id);
  cm.send(id, 0, 7);  // plain carrier handoff
  EXPECT_EQ(cm.status(id), CircuitStatus::kCreated);
  EXPECT_EQ(cm.hops(id), 0u);
  EXPECT_EQ(cm.wire(id), before);
  EXPECT_TRUE(cm.link_ok());
  EXPECT_EQ(cm.wire_cells(), cm.cells_per_packet());
}

}  // namespace
}  // namespace odtn::circuit
