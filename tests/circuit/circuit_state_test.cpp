// The per-circuit state machine: the full 6x6 transition matrix is pinned
// here so any change to circuit.cpp's legal_transition table is a
// deliberate, reviewed edit.
#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include <array>

namespace odtn::circuit {
namespace {

constexpr std::array<CircuitStatus, 6> kAll = {
    CircuitStatus::kCreate,      CircuitStatus::kCreated,
    CircuitStatus::kExtend,      CircuitStatus::kEstablished,
    CircuitStatus::kTruncated,   CircuitStatus::kDestroyed,
};

// Expected matrix, row = from, column = to (enum order). Mirrors the
// diagram in circuit.hpp: kExtend is the only legal self-transition (each
// additional hop re-enters it), kTruncated may rebuild (kExtend),
// kDestroyed is terminal.
constexpr bool kLegal[6][6] = {
    // to:  Create Created Extend Estab  Trunc  Destr     from:
    {false, true, false, false, false, true},   // kCreate
    {false, false, true, true, true, true},     // kCreated
    {false, false, true, true, true, true},     // kExtend
    {false, false, false, false, true, true},   // kEstablished
    {false, false, true, false, false, true},   // kTruncated
    {false, false, false, false, false, false}, // kDestroyed
};

TEST(CircuitState, TransitionMatrixIsExact) {
  for (auto from : kAll) {
    for (auto to : kAll) {
      EXPECT_EQ(legal_transition(from, to),
                kLegal[static_cast<int>(from)][static_cast<int>(to)])
          << circuit_status_name(from) << " -> " << circuit_status_name(to);
    }
  }
}

TEST(CircuitState, AdvanceAppliesLegalTransitions) {
  Circuit c;
  EXPECT_EQ(c.status, CircuitStatus::kCreate);
  EXPECT_TRUE(c.advance(CircuitStatus::kCreated));
  EXPECT_TRUE(c.advance(CircuitStatus::kExtend));
  EXPECT_TRUE(c.advance(CircuitStatus::kExtend));  // self-loop: more hops
  EXPECT_TRUE(c.advance(CircuitStatus::kEstablished));
  EXPECT_TRUE(c.advance(CircuitStatus::kTruncated));
  EXPECT_TRUE(c.advance(CircuitStatus::kExtend));  // rebuild
  EXPECT_TRUE(c.advance(CircuitStatus::kDestroyed));
  EXPECT_EQ(c.status, CircuitStatus::kDestroyed);
}

TEST(CircuitState, AdvanceRejectsIllegalLeavingStateUnchanged) {
  for (auto from : kAll) {
    for (auto to : kAll) {
      if (kLegal[static_cast<int>(from)][static_cast<int>(to)]) continue;
      Circuit c;
      c.status = from;
      EXPECT_FALSE(c.advance(to))
          << circuit_status_name(from) << " -> " << circuit_status_name(to);
      EXPECT_EQ(c.status, from) << "state mutated on rejected transition";
    }
  }
}

TEST(CircuitState, DestroyedIsTerminal) {
  Circuit c;
  c.status = CircuitStatus::kDestroyed;
  for (auto to : kAll) {
    EXPECT_FALSE(c.advance(to)) << circuit_status_name(to);
  }
}

TEST(CircuitState, StatusNamesAreStable) {
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kCreate), "create");
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kCreated), "created");
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kExtend), "extend");
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kEstablished),
               "established");
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kTruncated), "truncated");
  EXPECT_STREQ(circuit_status_name(CircuitStatus::kDestroyed), "destroyed");
}

}  // namespace
}  // namespace odtn::circuit
