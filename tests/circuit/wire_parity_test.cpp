// The wire-accurate layer's observational-equivalence contract: turning
// cell framing on changes what an on-path observer sees (cells, bytes) but
// not what the protocols do — same deliveries, same delays, same paths,
// same transmissions. And wire-mode sweeps keep the engine's determinism
// guarantees: bit-identical across thread counts and across a checkpoint
// kill/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "metrics/writer.hpp"
#include "routing/onion_routing.hpp"

namespace odtn {
namespace {

// -- Protocol-level parity ------------------------------------------------

struct Fixture {
  explicit Fixture(bool wire, std::uint64_t seed = 1)
      : rng(seed),
        graph(graph::random_contact_graph(30, rng, 10.0, 60.0)),
        dir(30, 5),
        keys(dir, seed),
        contacts(graph, rng) {
    ctx.directory = &dir;
    ctx.keys = &keys;
    ctx.codec = &codec;
    ctx.crypto = routing::CryptoMode::kReal;
    ctx.wire_cells = wire;
  }

  util::Rng rng;
  graph::ContactGraph graph;
  groups::GroupDirectory dir;
  groups::KeyManager keys;
  onion::OnionCodec codec;
  sim::PoissonContactModel contacts;
  routing::OnionContext ctx;
};

routing::MessageSpec spec_for(NodeId src, NodeId dst, std::size_t copies) {
  routing::MessageSpec s;
  s.src = src;
  s.dst = dst;
  s.ttl = 1e7;
  s.num_relays = 3;
  s.copies = copies;
  return s;
}

void expect_same_routing(const routing::DeliveryResult& off,
                         const routing::DeliveryResult& on) {
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(off.delay, on.delay);
  EXPECT_EQ(off.transmissions, on.transmissions);
  EXPECT_EQ(off.relay_path, on.relay_path);
  EXPECT_EQ(off.relay_groups, on.relay_groups);
  EXPECT_EQ(off.relays_per_hop, on.relays_per_hop);
  EXPECT_EQ(off.crypto_verified, on.crypto_verified);
}

TEST(WireParity, SingleCopyIsObservationallyEquivalent) {
  Fixture off(false), on(true);
  routing::SingleCopyOnionRouting p_off(off.ctx), p_on(on.ctx);
  for (int trial = 0; trial < 5; ++trial) {
    auto r_off = p_off.route(off.contacts, spec_for(0, 29, 1), off.rng);
    auto r_on = p_on.route(on.contacts, spec_for(0, 29, 1), on.rng);
    expect_same_routing(r_off, r_on);
    ASSERT_TRUE(r_on.delivered);
    EXPECT_TRUE(r_on.crypto_verified);
    // Only the wire accounting differs: off sees no cells at all, on pays
    // cells_per_packet cells per contact crossing.
    EXPECT_EQ(r_off.wire_cells, 0u);
    EXPECT_EQ(r_off.wire_bytes, 0u);
    EXPECT_GT(r_on.wire_cells, 0u);
    EXPECT_EQ(r_on.wire_bytes,
              r_on.wire_cells * circuit::kDefaultCellSize);
    EXPECT_EQ(r_on.wire_cells % r_on.transmissions, 0u)
        << "constant-size packets: cells must be a multiple of crossings";
  }
}

TEST(WireParity, MultiCopyIsObservationallyEquivalent) {
  Fixture off(false), on(true);
  routing::MultiCopyOnionRouting p_off(off.ctx), p_on(on.ctx);
  for (int trial = 0; trial < 5; ++trial) {
    auto r_off = p_off.route(off.contacts, spec_for(0, 29, 4), off.rng);
    auto r_on = p_on.route(on.contacts, spec_for(0, 29, 4), on.rng);
    expect_same_routing(r_off, r_on);
    ASSERT_TRUE(r_on.delivered);
    EXPECT_GT(r_on.wire_cells, 0u);
    EXPECT_EQ(r_on.wire_bytes,
              r_on.wire_cells * circuit::kDefaultCellSize);
  }
}

TEST(WireParity, CustomCellSizeScalesAccountingOnly) {
  Fixture base(true), big(true);
  big.ctx.cell_size = 4096;
  routing::SingleCopyOnionRouting p_base(base.ctx), p_big(big.ctx);
  auto r_base = p_base.route(base.contacts, spec_for(0, 29, 1), base.rng);
  auto r_big = p_big.route(big.contacts, spec_for(0, 29, 1), big.rng);
  expect_same_routing(r_base, r_big);
  // Bigger cells -> fewer cells, but never fewer than one per crossing.
  EXPECT_LT(r_big.wire_cells, r_base.wire_cells);
  EXPECT_GE(r_big.wire_cells, r_big.transmissions);
  EXPECT_EQ(r_big.wire_bytes, r_big.wire_cells * 4096u);
}

// -- Experiment/engine-level determinism ----------------------------------

namespace core_tests {

using core::Experiment;
using core::ExperimentConfig;
using core::ExperimentResult;
using core::RandomGraphScenario;

ExperimentConfig wire_config() {
  ExperimentConfig cfg;
  cfg.nodes = 30;
  cfg.runs = 24;
  cfg.seed = 7;
  cfg.ttl = 400.0;
  cfg.crypto = routing::CryptoMode::kReal;
  cfg.wire_cells = true;
  return cfg;
}

ExperimentResult run_random(const ExperimentConfig& cfg) {
  return Experiment(cfg).run(RandomGraphScenario{});
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.delivered_runs, b.delivered_runs);
  auto eq = [](const util::RunningStats& x, const util::RunningStats& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.mean(), y.mean());
    EXPECT_EQ(x.variance(), y.variance());
    EXPECT_EQ(x.min(), y.min());
    EXPECT_EQ(x.max(), y.max());
  };
  eq(a.sim_delivered, b.sim_delivered);
  eq(a.sim_delay, b.sim_delay);
  eq(a.sim_transmissions, b.sim_transmissions);
  eq(a.sim_traceable, b.sim_traceable);
  eq(a.sim_anonymity, b.sim_anonymity);
  ASSERT_EQ(a.failed_runs.size(), b.failed_runs.size());
  EXPECT_EQ(metrics::to_jsonl(a.metrics), metrics::to_jsonl(b.metrics));
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(WireExperiment, StatsMatchWireOffExactly) {
  auto on = wire_config();
  auto off = on;
  off.wire_cells = false;
  auto r_on = run_random(on);
  auto r_off = run_random(off);
  // The wire layer may add wire-accounting exports, but every shared
  // statistic is bitwise equal.
  EXPECT_EQ(r_on.delivered_runs, r_off.delivered_runs);
  EXPECT_EQ(r_on.sim_delivered.mean(), r_off.sim_delivered.mean());
  EXPECT_EQ(r_on.sim_delay.mean(), r_off.sim_delay.mean());
  EXPECT_EQ(r_on.sim_transmissions.mean(), r_off.sim_transmissions.mean());
  EXPECT_EQ(r_on.sim_anonymity.mean(), r_off.sim_anonymity.mean());
}

TEST(WireExperiment, BitIdenticalAcrossThreadCounts) {
  auto cfg = wire_config();
  cfg.collect_metrics = true;
  auto serial = run_random(cfg);
  auto parallel = cfg;
  parallel.threads = 4;
  expect_identical(serial, run_random(parallel));
}

TEST(WireExperiment, KillAndResumeIsByteIdentical) {
  // Uninterrupted reference sweep with circuits (and their wire
  // accounting) in flight.
  auto cfg = wire_config();
  cfg.runs = 20;
  cfg.collect_metrics = true;
  auto expected = run_random(cfg);

  // "Killed" sweep: only the first 9 runs happen, checkpointed every 4.
  auto first = cfg;
  first.runs = 9;
  first.checkpoint_path = temp_path("odtn_checkpoint_wire");
  first.checkpoint_interval = 4;
  run_random(first);

  // Resume to the full 20 — different thread count on purpose.
  auto second = cfg;
  second.checkpoint_path = first.checkpoint_path;
  second.checkpoint_interval = 4;
  second.resume = true;
  second.threads = 4;
  auto resumed = run_random(second);
  expect_identical(expected, resumed);
  std::remove(first.checkpoint_path.c_str());
}

TEST(WireExperiment, WireConfigHashIsDistinct) {
  // A wire-on checkpoint must not resume a wire-off sweep (and vice
  // versa): the config hash separates them, while wire-off configs keep
  // their historical hashes.
  auto on = wire_config();
  auto off = on;
  off.wire_cells = false;
  EXPECT_NE(core::checkpoint_config_hash(on, "random_graph"),
            core::checkpoint_config_hash(off, "random_graph"));
  auto bigger = on;
  bigger.cell_size = 4096;
  EXPECT_NE(core::checkpoint_config_hash(on, "random_graph"),
            core::checkpoint_config_hash(bigger, "random_graph"));
}

TEST(WireExperiment, WireWithoutRealCryptoIsRejected) {
  auto cfg = wire_config();
  cfg.crypto = routing::CryptoMode::kNone;
  EXPECT_THROW(run_random(cfg), std::invalid_argument);
  cfg.crypto = routing::CryptoMode::kReal;
  cfg.cell_size = 16;  // below kMinCellSize
  EXPECT_THROW(run_random(cfg), std::invalid_argument);
}

}  // namespace core_tests
}  // namespace
}  // namespace odtn
