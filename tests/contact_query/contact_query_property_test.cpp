// Property tests for the prepared contact-query plans: on random graphs and
// synthetic traces, prepare() + first_cross_contact() must agree exactly
// with a naive per-pair reference that replays the pre-plan algorithm
// (first-occurrence dedup, from-major enumeration, one Exp(total) draw, one
// categorical pick by linear scan). The reference and the model consume
// twin RNG streams, so any divergence in draw order or pair order fails.
#include "sim/contact_model.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <unordered_set>
#include <vector>

#include "trace/contact_trace.hpp"
#include "util/rng.hpp"

// TU-wide allocation counter backing the zero-allocation assertion.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace odtn::sim {
namespace {

// The pre-plan Poisson algorithm, verbatim: enumerate from x to, dedup
// unordered pairs at first occurrence, accumulate positive rates, draw the
// aggregate exponential, then pick the pair by linear cumulative scan.
std::optional<CrossContact> naive_poisson(const graph::ContactGraph& g,
                                          util::Rng& rng,
                                          const std::vector<NodeId>& from,
                                          const std::vector<NodeId>& to,
                                          Time after, Time horizon) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<NodeId> pa, pb;
  std::vector<double> rates;
  double total = 0.0;
  for (NodeId a : from) {
    for (NodeId b : to) {
      if (a == b) continue;
      const NodeId lo = a < b ? a : b;
      const NodeId hi = a < b ? b : a;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(lo) << 32) | hi;
      if (!seen.insert(key).second) continue;
      const double r = g.rate(a, b);
      if (r > 0.0) {
        pa.push_back(a);
        pb.push_back(b);
        rates.push_back(r);
        total += r;
      }
    }
  }
  if (!(horizon > after)) return std::nullopt;
  if (rates.empty()) return std::nullopt;
  const Time t = after + rng.exponential(total);
  if (t >= horizon) return std::nullopt;
  const double pick = rng.uniform01() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    cum += rates[i];
    if (pick < cum) return CrossContact{t, pa[i], pb[i]};
  }
  return CrossContact{t, pa.back(), pb.back()};
}

// The pre-plan trace algorithm: linear scan of the time window, from-side
// orientation checked before the reverse.
std::optional<CrossContact> naive_trace(const trace::ContactTrace& trace,
                                        const std::vector<NodeId>& from,
                                        const std::vector<NodeId>& to,
                                        Time after, Time horizon) {
  auto in = [](const std::vector<NodeId>& set, NodeId v) {
    for (NodeId s : set) {
      if (s == v) return true;
    }
    return false;
  };
  for (const auto& e : trace.events()) {
    if (e.time < after) continue;
    if (e.time >= horizon) break;
    if (e.a == e.b) continue;
    if (in(from, e.a) && in(to, e.b)) return CrossContact{e.time, e.a, e.b};
    if (in(from, e.b) && in(to, e.a)) return CrossContact{e.time, e.b, e.a};
  }
  return std::nullopt;
}

// Random node set of size 1..max_len, duplicates and overlaps allowed.
std::vector<NodeId> random_set(util::Rng& rng, std::size_t n,
                               std::size_t max_len) {
  std::vector<NodeId> out(1 + rng.below(max_len));
  for (NodeId& v : out) v = static_cast<NodeId>(rng.below(n));
  return out;
}

TEST(ContactQueryProperty, PoissonMatchesNaiveScanOnRandomGraphs) {
  util::Rng meta(2024);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 4 + meta.below(12);
    util::Rng graph_rng(meta.next());
    graph::ContactGraph g = graph::random_contact_graph(n, graph_rng);

    const std::uint64_t seed = meta.next();
    util::Rng model_rng(seed), ref_rng(seed);
    PoissonContactModel model(g, model_rng);

    const auto from = random_set(meta, n, 6);
    const auto to = random_set(meta, n, 6);
    ContactQuery plan;
    model.prepare(plan, from, to);

    for (int q = 0; q < 50; ++q) {
      const Time after = 3.0 * q;
      const Time horizon = after + (q % 7 == 0 ? 0.0 : 25.0);
      auto got = model.first_cross_contact(plan, after, horizon);
      auto want = naive_poisson(g, ref_rng, from, to, after, horizon);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "round " << round << " query " << q;
      if (got.has_value()) {
        EXPECT_EQ(got->time, want->time);
        EXPECT_EQ(got->a, want->a);
        EXPECT_EQ(got->b, want->b);
      }
    }
  }
}

TEST(ContactQueryProperty, TraceMatchesNaiveScanOnSyntheticTraces) {
  util::Rng meta(77);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 3 + meta.below(10);
    std::vector<trace::ContactEvent> events;
    const std::size_t count = 5 + meta.below(60);
    for (std::size_t i = 0; i < count; ++i) {
      NodeId a = static_cast<NodeId>(meta.below(n));
      NodeId b = static_cast<NodeId>(meta.below(n - 1));
      if (b >= a) ++b;
      events.push_back({meta.uniform(0.0, 500.0), a, b});
    }
    trace::ContactTrace trace(n, std::move(events));
    TraceContactModel model(trace);

    const auto from = random_set(meta, n, 5);
    const auto to = random_set(meta, n, 5);
    ContactQuery plan;
    model.prepare(plan, from, to);

    for (int q = 0; q < 40; ++q) {
      const Time after = 15.0 * q - 30.0;
      const Time horizon = after + 80.0;
      auto got = model.first_cross_contact(plan, after, horizon);
      auto want = naive_trace(trace, from, to, after, horizon);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "round " << round << " query " << q;
      if (got.has_value()) {
        EXPECT_EQ(got->time, want->time);
        EXPECT_EQ(got->a, want->a);
        EXPECT_EQ(got->b, want->b);
      }
    }
  }
}

TEST(ContactQueryProperty, SteadyStateQueriesDoNotAllocate) {
  util::Rng rng(5);
  graph::ContactGraph g = graph::random_contact_graph(50, rng);
  PoissonContactModel model(g, rng);
  std::vector<NodeId> from = {0, 1, 2, 3, 4};
  std::vector<NodeId> to = {10, 11, 12, 13, 14, 15};
  ContactQuery plan;
  model.prepare(plan, from, to);

  // Warm the one-shot scratch plan too, then count across both surfaces.
  (void)model.first_cross_contact(from, to, 0.0, 1.0);

  double sink = 0.0;
  const std::uint64_t before = g_alloc_count.load();
  for (int q = 0; q < 1000; ++q) {
    auto c = model.first_cross_contact(plan, static_cast<Time>(q), 1e9);
    if (c.has_value()) sink += c->time;
    model.prepare(plan, from, to);  // re-prepare reuses the buffers
    auto d = model.first_cross_contact(from, to, static_cast<Time>(q), 1e9);
    if (d.has_value()) sink += d->time;
  }
  const std::uint64_t allocs = g_alloc_count.load() - before;
  EXPECT_EQ(allocs, 0u) << "sink=" << sink;
}

}  // namespace
}  // namespace odtn::sim
