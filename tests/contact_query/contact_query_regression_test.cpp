// Byte-identity regression for the contact-query redesign: Figure 6 at
// --runs=40 --seed=7 must reproduce the committed golden table and metrics
// export exactly, at --threads=1 and --threads=4. The goldens in data/
// were generated before the prepared-plan API existed, so any drift in
// pair enumeration order, prefix sums, or RNG draw sequence shows up here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Drops the timing/environment lines the goldens exclude: wall time, the
// metrics-path echo, and the runs/seed/threads banner line.
std::string stable_lines(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# wall_time_s", 0) == 0) continue;
    if (line.rfind("# metrics:", 0) == 0) continue;
    if (line.find("threads:") != std::string::npos) continue;
    out << line << "\n";
  }
  return out.str();
}

void run_fig06_and_compare(int threads) {
  const std::string out_path =
      ::testing::TempDir() + "fig06_t" + std::to_string(threads) + ".txt";
  const std::string metrics_path =
      ::testing::TempDir() + "fig06_t" + std::to_string(threads) + ".jsonl";
  const std::string cmd = std::string(ODTN_FIG06_BIN) +
                          " --runs=40 --seed=7 --threads=" +
                          std::to_string(threads) +
                          " --metrics-out=" + metrics_path + " > " + out_path +
                          " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  const std::string golden_table =
      read_file(std::string(ODTN_CQ_DATA_DIR) + "/fig06_stable.txt");
  const std::string golden_metrics =
      read_file(std::string(ODTN_CQ_DATA_DIR) + "/fig06_metrics.jsonl");
  EXPECT_EQ(stable_lines(read_file(out_path)), golden_table)
      << "figure table drifted at --threads=" << threads;
  EXPECT_EQ(read_file(metrics_path), golden_metrics)
      << "metrics export drifted at --threads=" << threads;
}

TEST(ContactQueryRegression, Fig06ByteIdenticalSingleThread) {
  run_fig06_and_compare(1);
}

TEST(ContactQueryRegression, Fig06ByteIdenticalFourThreads) {
  run_fig06_and_compare(4);
}

}  // namespace
