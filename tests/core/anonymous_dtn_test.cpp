#include "core/anonymous_dtn.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace odtn::core {
namespace {

TEST(AnonymousDtn, QuickstartFlow) {
  auto net = AnonymousDtn::over_random_graph(50, 5, /*seed=*/1);
  EXPECT_EQ(net.node_count(), 50u);

  SendOptions opts;
  opts.ttl = 1e7;
  auto r = net.send(0, 49, util::to_bytes("hello dtn"), opts);
  ASSERT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
  EXPECT_EQ(r.transmissions, opts.num_relays + 1);
}

TEST(AnonymousDtn, MultiCopySend) {
  auto net = AnonymousDtn::over_random_graph(50, 5, 2);
  SendOptions opts;
  opts.copies = 3;
  opts.ttl = 1e7;
  auto r = net.send(0, 49, util::to_bytes("replicated"), opts);
  ASSERT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
  EXPECT_LE(r.transmissions, (opts.num_relays + 2) * opts.copies);
}

TEST(AnonymousDtn, OverExplicitGraph) {
  util::Rng rng(3);
  auto g = graph::random_contact_graph(30, rng, 5.0, 50.0);
  auto net = AnonymousDtn::over_graph(std::move(g), 5, 3);
  SendOptions patient;
  patient.ttl = 1e7;
  auto r = net.send(1, 20, util::to_bytes("x"), patient);
  EXPECT_TRUE(r.delivered);
}

TEST(AnonymousDtn, OverTrace) {
  auto net =
      AnonymousDtn::over_trace(trace::make_cambridge_like(5), /*g=*/1, 5);
  EXPECT_EQ(net.node_count(), 12u);
  // Start during the first business day; allow a generous deadline.
  SendOptions opts;
  opts.start = 9.5 * 3600.0;
  opts.ttl = 8 * 3600.0;
  auto r = net.send(0, 11, util::to_bytes("trace msg"), opts);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
}

TEST(AnonymousDtn, OverRandomWaypointMobility) {
  mobility::RandomWaypointParams p;
  p.nodes = 15;
  p.width = 300.0;
  p.height = 300.0;
  p.range = 60.0;
  p.duration = 8000.0;
  p.max_pause = 10.0;
  auto net = core::AnonymousDtn::over_random_waypoint(p, /*g=*/3, 11);
  EXPECT_EQ(net.node_count(), 15u);
  core::SendOptions opts;
  opts.num_relays = 2;
  opts.ttl = 8000.0;
  auto r = net.send(0, 14, util::to_bytes("from geometry"), opts);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
}

TEST(AnonymousDtn, ThresholdPivotSend) {
  auto net = core::AnonymousDtn::over_random_graph(40, 5, 12);
  auto r = net.send_threshold_pivot(0, 39, util::to_bytes("pivot me"), 1e7);
  ASSERT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
  EXPECT_NE(r.pivot, 0u);
  EXPECT_NE(r.pivot, 39u);
}

TEST(AnonymousDtn, BaselinesRunOnSameNetwork) {
  auto net = AnonymousDtn::over_random_graph(30, 5, 6);
  auto sw = net.send_spray_and_wait(0, 29, 4, 1e7);
  EXPECT_TRUE(sw.delivered);
  EXPECT_LE(sw.transmissions, 7u);
  auto ep = net.send_epidemic(0, 29, 1e7);
  EXPECT_TRUE(ep.delivered);
}

TEST(AnonymousDtn, TraceRatesEstimated) {
  auto net = AnonymousDtn::over_trace(trace::make_cambridge_like(7), 1, 7);
  // Dense synthetic trace: every pair has a positive estimated rate.
  const auto& rates = net.contact_rates();
  EXPECT_GT(rates.rate(0, 1), 0.0);
  EXPECT_GT(rates.rate(5, 9), 0.0);
}

TEST(AnonymousDtn, DirectoryConsistentWithNodeCount) {
  auto net = AnonymousDtn::over_random_graph(23, 5, 8);
  EXPECT_EQ(net.directory().node_count(), 23u);
  EXPECT_EQ(net.directory().group_count(), 5u);  // ceil(23/5)
  EXPECT_EQ(net.keys().node_count(), 23u);
}

TEST(AnonymousDtn, SprayModeOptionHonored) {
  auto net = core::AnonymousDtn::over_random_graph(40, 5, 13);
  core::SendOptions opts;
  opts.copies = 3;
  opts.ttl = 1e7;
  opts.spray = routing::SprayMode::kDirectToFirstGroup;
  auto r = net.send(0, 39, util::to_bytes("direct spray"), opts);
  ASSERT_TRUE(r.delivered);
  // Direct-to-first-group never uses carrier hops: cost <= (K+1)L.
  EXPECT_LE(r.transmissions, (opts.num_relays + 1) * opts.copies);
  EXPECT_TRUE(r.crypto_verified);
}

TEST(AnonymousDtn, DestinationGroupDeliveryViaFacade) {
  auto net = core::AnonymousDtn::over_random_graph(40, 5, 14);
  routing::OnionContext ctx;  // unused; facade has its own
  (void)ctx;
  core::SendOptions opts;
  opts.ttl = 1e7;
  // The facade routes single-copy when copies == 1; destination-group
  // delivery is a MessageSpec flag, so exercise it through the underlying
  // protocol with the facade's keys/directory.
  routing::MessageSpec spec;
  spec.src = 0;
  spec.dst = 39;
  spec.ttl = 1e7;
  spec.num_relays = 3;
  spec.destination_group_delivery = true;
  spec.payload = util::to_bytes("group-addressed");
  onion::OnionCodec codec;
  routing::OnionContext real_ctx{&net.directory(), &net.keys(), &codec,
                                 routing::CryptoMode::kReal};
  routing::SingleCopyOnionRouting protocol(real_ctx);
  util::Rng rng(3);
  graph::ContactGraph graph_copy = net.contact_rates();
  sim::PoissonContactModel contacts(graph_copy, rng);
  auto r = protocol.route(contacts, spec, rng);
  ASSERT_TRUE(r.delivered);
  EXPECT_TRUE(r.crypto_verified);
}

TEST(AnonymousDtn, UndeliveredWithinTinyTtl) {
  auto net = AnonymousDtn::over_random_graph(30, 5, 9);
  SendOptions hopeless;
  hopeless.ttl = 1e-9;
  auto r = net.send(0, 29, util::to_bytes("x"), hopeless);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.crypto_verified);
}

}  // namespace
}  // namespace odtn::core
