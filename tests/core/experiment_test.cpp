// Integration tests: the experiment engine must reproduce the paper's
// analysis-vs-simulation agreement on a small scale, and the parallel
// engine must be bit-identical to the serial one.
#include "core/experiment.hpp"

#include "adversary/adversary.hpp"
#include "analysis/anonymity.hpp"
#include "routing/onion_routing.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace odtn::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.nodes = 40;
  cfg.runs = 120;
  cfg.seed = 7;
  return cfg;
}

ExperimentResult run_random(const ExperimentConfig& cfg) {
  return Experiment(cfg).run(RandomGraphScenario{});
}

ExperimentResult run_on_trace(const ExperimentConfig& cfg,
                              const trace::ContactTrace& trace) {
  return Experiment(cfg).run(TraceScenario{&trace});
}

// Every metric accumulator equal, bitwise.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.delivered_runs, b.delivered_runs);
  auto eq = [](const util::RunningStats& x, const util::RunningStats& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.mean(), y.mean());
    EXPECT_EQ(x.variance(), y.variance());
    EXPECT_EQ(x.min(), y.min());
    EXPECT_EQ(x.max(), y.max());
  };
  eq(a.sim_delivered, b.sim_delivered);
  eq(a.sim_delay, b.sim_delay);
  eq(a.sim_transmissions, b.sim_transmissions);
  eq(a.sim_traceable, b.sim_traceable);
  eq(a.sim_anonymity, b.sim_anonymity);
  eq(a.ana_delivery, b.ana_delivery);
  eq(a.ana_traceable_paper, b.ana_traceable_paper);
  eq(a.ana_traceable_exact, b.ana_traceable_exact);
  eq(a.ana_anonymity, b.ana_anonymity);
  eq(a.ana_cost_bound, b.ana_cost_bound);
  eq(a.ana_cost_non_anonymous, b.ana_cost_non_anonymous);
}

TEST(Experiment, DeterministicPerSeed) {
  auto a = run_random(small_config());
  auto b = run_random(small_config());
  expect_identical(a, b);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto a = run_random(small_config());
  auto cfg = small_config();
  cfg.seed = 8;
  auto b = run_random(cfg);
  EXPECT_NE(a.sim_delay.mean(), b.sim_delay.mean());
}

TEST(Experiment, ThreadCountDoesNotChangeRandomGraphResults) {
  // The tentpole invariant: run i is seeded from (seed, i) and outcomes
  // fold in run order, so any thread count yields bit-identical metrics.
  auto cfg = small_config();
  cfg.runs = 64;
  cfg.ttl = 400.0;
  cfg.threads = 1;
  auto serial = run_random(cfg);
  for (std::size_t threads : {2u, 8u}) {
    cfg.threads = threads;
    auto parallel = run_random(cfg);
    expect_identical(serial, parallel);
  }
}

TEST(Experiment, ThreadCountDoesNotChangeTraceResults) {
  auto trace = trace::make_cambridge_like(3);
  ExperimentConfig cfg;
  cfg.group_size = 1;
  cfg.ttl = 3600.0;
  cfg.runs = 48;
  cfg.seed = 5;
  cfg.threads = 1;
  auto serial = run_on_trace(cfg, trace);
  cfg.threads = 8;
  auto parallel = run_on_trace(cfg, trace);
  expect_identical(serial, parallel);
}

TEST(Experiment, AutoThreadsMatchesSerial) {
  auto cfg = small_config();
  cfg.runs = 32;
  cfg.threads = 1;
  auto serial = run_random(cfg);
  cfg.threads = 0;  // all hardware threads
  auto automatic = run_random(cfg);
  expect_identical(serial, automatic);
}

TEST(Experiment, MultiCopyParallelIdenticalToSerial) {
  auto cfg = small_config();
  cfg.runs = 40;
  cfg.copies = 3;
  cfg.ttl = 400.0;
  cfg.threads = 1;
  auto serial = run_random(cfg);
  cfg.threads = 4;
  auto parallel = run_random(cfg);
  expect_identical(serial, parallel);
}

TEST(Experiment, ScenarioVariantDispatches) {
  auto cfg = small_config();
  cfg.runs = 30;
  Experiment exp(cfg);
  Scenario random = RandomGraphScenario{};
  auto r = exp.run(random);
  EXPECT_EQ(r.sim_delivered.count(), 30u);

  auto trace = trace::make_cambridge_like(3);
  ExperimentConfig tc;
  tc.group_size = 1;
  tc.runs = 20;
  Scenario on_trace = TraceScenario{&trace};
  auto t = Experiment(tc).run(on_trace);
  EXPECT_EQ(t.sim_delivered.count(), 20u);
}

TEST(Experiment, NullTraceRejected) {
  EXPECT_THROW(Experiment(small_config()).run(TraceScenario{nullptr}),
               std::invalid_argument);
}

TEST(Experiment, WallTimeRecorded) {
  auto cfg = small_config();
  cfg.runs = 10;
  auto r = run_random(cfg);
  EXPECT_GT(r.wall_time_s, 0.0);
}

TEST(Experiment, ResultMergeCombinesShards) {
  // Two disjoint halves of a run series merge into exactly the accumulator
  // counts of the whole; means agree to floating-point accuracy.
  auto cfg = small_config();
  cfg.runs = 60;
  auto whole = run_random(cfg);

  auto first = cfg;
  first.runs = 30;
  auto a = Experiment(first).run(RandomGraphScenario{});
  auto second = cfg;
  second.runs = 30;
  second.seed = 999;  // a different series; merging only needs mergeability
  auto b = Experiment(second).run(RandomGraphScenario{});

  auto merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.sim_delivered.count(), whole.sim_delivered.count());
  EXPECT_EQ(merged.ana_delivery.count(), whole.ana_delivery.count());
  EXPECT_EQ(merged.ana_cost_bound.count(), 60u);
  EXPECT_EQ(merged.delivered_runs, a.delivered_runs + b.delivered_runs);
}

TEST(Experiment, AnalysisTracksSimulationDeliveryRate) {
  // The core claim of the paper (Figs. 4-5): Eq. 6 approximates the
  // simulated delivery rate.
  for (double ttl : {120.0, 480.0, 1800.0}) {
    auto cfg = small_config();
    cfg.runs = 400;
    cfg.ttl = ttl;
    auto r = run_random(cfg);
    // The paper's Figs. 4-5 show gaps of up to ~0.1 between analysis and
    // simulation at mid deadlines; the trend, not equality, is the claim.
    EXPECT_NEAR(r.sim_delivered.mean(), r.ana_delivery.mean(), 0.12)
        << "ttl=" << ttl;
  }
}

TEST(Experiment, AnalysisTracksSimulationTraceableRate) {
  auto cfg = small_config();
  cfg.runs = 600;
  cfg.ttl = 1e6;  // ensure plenty of delivered paths to measure
  cfg.compromise_fraction = 0.2;
  auto r = run_random(cfg);
  ASSERT_GT(r.delivered_runs, 500u);
  EXPECT_NEAR(r.sim_traceable.mean(), r.ana_traceable_exact.mean(), 0.03);
}

TEST(Experiment, AnalysisTracksSimulationAnonymity) {
  auto cfg = small_config();
  cfg.runs = 600;
  cfg.ttl = 1e6;
  cfg.compromise_fraction = 0.2;
  auto r = run_random(cfg);
  EXPECT_NEAR(r.sim_anonymity.mean(), r.ana_anonymity.mean(), 0.03);
}

TEST(Experiment, MultiCopyImprovesDeliveryAndCostsMore) {
  auto cfg = small_config();
  cfg.ttl = 120.0;
  cfg.runs = 300;
  auto single = run_random(cfg);
  cfg.copies = 3;
  auto multi = run_random(cfg);
  EXPECT_GT(multi.sim_delivered.mean(), single.sim_delivered.mean());
  EXPECT_GT(multi.sim_transmissions.mean(), single.sim_transmissions.mean());
}

TEST(Experiment, CostWithinBound) {
  auto cfg = small_config();
  cfg.copies = 3;
  cfg.ttl = 1e6;
  auto r = run_random(cfg);
  EXPECT_LE(r.sim_transmissions.max(), r.ana_cost_bound.mean());
  EXPECT_EQ(r.ana_cost_bound.mean(), 15.0);          // (K+2)L = 5*3
  EXPECT_EQ(r.ana_cost_non_anonymous.mean(), 6.0);   // 2L
  // Analysis accumulators carry one sample per run.
  EXPECT_EQ(r.ana_cost_bound.count(), cfg.runs);
  EXPECT_EQ(r.ana_cost_bound.variance(), 0.0);
}

TEST(Experiment, SingleCopyCostIsExactlyKPlus1WhenDelivered) {
  auto cfg = small_config();
  cfg.ttl = 1e6;
  auto r = run_random(cfg);
  ASSERT_EQ(r.delivered_runs, cfg.runs);
  EXPECT_DOUBLE_EQ(r.sim_transmissions.mean(), 4.0);
}

TEST(Experiment, RealCryptoModeAgreesWithFastMode) {
  // Same seed, crypto on/off: delivery statistics must be very close (the
  // crypto path must not alter forwarding decisions; RNG draws differ so
  // exact equality is not required).
  auto cfg = small_config();
  cfg.runs = 150;
  cfg.ttl = 400.0;
  auto fast = run_random(cfg);
  cfg.crypto = routing::CryptoMode::kReal;
  auto real = run_random(cfg);
  EXPECT_NEAR(fast.sim_delivered.mean(), real.sim_delivered.mean(), 0.1);
}

TEST(Experiment, TraceExperimentRuns) {
  auto trace = trace::make_cambridge_like(3);
  ExperimentConfig cfg;
  cfg.group_size = 1;
  cfg.num_relays = 3;
  cfg.ttl = 4 * 3600.0;
  cfg.runs = 60;
  cfg.seed = 5;
  auto r = run_on_trace(cfg, trace);
  EXPECT_GT(r.sim_delivered.mean(), 0.3);
  EXPECT_GT(r.ana_delivery.mean(), 0.3);
  // Dense trace: model and sim in the same ballpark (Fig. 14's claim).
  EXPECT_NEAR(r.sim_delivered.mean(), r.ana_delivery.mean(), 0.25);
}

TEST(Experiment, TraceDeadlineMonotonicity) {
  auto trace = trace::make_cambridge_like(4);
  ExperimentConfig cfg;
  cfg.group_size = 1;
  cfg.runs = 80;
  double prev = -1.0;
  for (double ttl : {600.0, 3600.0, 6 * 3600.0}) {
    cfg.ttl = ttl;
    auto r = run_on_trace(cfg, trace);
    EXPECT_GE(r.sim_delivered.mean(), prev - 0.05) << "ttl=" << ttl;
    prev = r.sim_delivered.mean();
  }
}

TEST(Experiment, RefinedMultiCopyAnonymityModelBeatsEq20) {
  // Reproduce the paper's Fig. 12 drift at high compromise rates, then
  // show the relay-diversity-aware model (path_anonymity_model_distinct)
  // closes the gap: measure the realized distinct-relay counts from the
  // same runs and plug them in.
  util::Rng rng(21);
  std::size_t n = 100, g = 5, k = 3, l = 5;
  double p = 0.4;

  util::RunningStats sim_anon;
  std::vector<util::RunningStats> distinct(k);
  for (int run = 0; run < 250; ++run) {
    auto graph = graph::random_contact_graph(n, rng, 10.0, 360.0);
    sim::PoissonContactModel contacts(graph, rng);
    groups::GroupDirectory dir(n, g, &rng);
    groups::KeyManager keys(dir, rng.next());
    onion::OnionCodec codec;
    routing::OnionContext ctx{&dir, &keys, &codec,
                              routing::CryptoMode::kNone};
    routing::MultiCopyOnionRouting protocol(ctx);

    routing::MessageSpec spec;
    spec.src = static_cast<NodeId>(rng.below(n));
    spec.dst = static_cast<NodeId>(rng.below(n - 1));
    if (spec.dst >= spec.src) ++spec.dst;
    spec.ttl = 1e6;
    spec.num_relays = k;
    spec.copies = l;
    auto r = protocol.route(contacts, spec, rng);
    if (!r.delivered) continue;

    adversary::CompromiseModel compromise =
        adversary::CompromiseModel::from_fraction(n, p, rng);
    sim_anon.add(adversary::measured_path_anonymity(
        spec.src, r.relays_per_hop, compromise, n, g));
    for (std::size_t hop = 0; hop < k; ++hop) {
      distinct[hop].add(static_cast<double>(r.relays_per_hop[hop].size()));
    }
  }

  std::vector<double> mean_distinct;
  for (const auto& s : distinct) mean_distinct.push_back(s.mean());
  double refined =
      analysis::path_anonymity_model_distinct(k + 1, p, n, g, mean_distinct);
  double eq20 = analysis::path_anonymity_model(k + 1, p, n, g, l);

  double gap_refined = std::abs(refined - sim_anon.mean());
  double gap_eq20 = std::abs(eq20 - sim_anon.mean());
  EXPECT_LT(gap_refined, gap_eq20);
  EXPECT_LT(gap_refined, 0.03);
}

TEST(Experiment, MoreThreadsThanRunsClamped) {
  auto cfg = small_config();
  cfg.runs = 3;
  cfg.threads = 16;
  auto r = run_random(cfg);
  EXPECT_EQ(r.sim_delivered.count(), 3u);
}

TEST(Experiment, ZeroRunsRejected) {
  ExperimentConfig cfg;
  cfg.runs = 0;
  EXPECT_THROW(Experiment(cfg).run(RandomGraphScenario{}),
               std::invalid_argument);
  auto trace = trace::make_cambridge_like(1);
  EXPECT_THROW(Experiment(cfg).run(TraceScenario{&trace}),
               std::invalid_argument);
}

}  // namespace
}  // namespace odtn::core
